# Convenience targets for the RPCValet reproduction.

PYTHON ?= python

.PHONY: install test bench figures figures-full validate examples trace clean

install:
	pip install -e .[dev] || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_PROFILE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure (quick profile, ~4 minutes).
figures:
	$(PYTHON) -m repro.experiments all --profile quick

# Publication-scale numbers (the EXPERIMENTS.md profile; slow).
figures-full:
	$(PYTHON) -m repro.experiments all --profile full

validate:
	$(PYTHON) -m repro.experiments validate

# Demo Perfetto trace (per-RPC bars + queue-depth counter tracks) from
# one telemetry-instrumented HERD point; open at https://ui.perfetto.dev
trace:
	$(PYTHON) -m repro.experiments.trace --out traces

examples:
	for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
		benchmarks/output .benchmarks traces
	find . -name __pycache__ -type d -exec rm -rf {} +
