"""Rack-size scaling across engine tiers (``ext-scale``)."""

from conftest import run_once

from repro.experiments.scale import run_scale


def test_scale(benchmark, profile, emit):
    result = run_once(benchmark, run_scale, profile=profile, seed=0)
    emit(result)
    data = result.data
    # The tentpole target: a 1000-node rack point in seconds.
    assert data["largest_nodes"] >= 1024
    assert data["largest_point_wall_s"] < 10.0
    # JSQ(2) still beats random spray at the largest rack.
    assert data["advantage_at_largest"] > 1.0
    # Fluid tier tracks the fast tier at the overlap size.
    for entry in data["overlap"].values():
        assert abs(entry["p99_delta"]) < 0.15
