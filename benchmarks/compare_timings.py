#!/usr/bin/env python
"""Print per-figure wall-clock deltas between the last two bench runs.

``benchmarks/conftest.py`` embeds the prior payload under ``previous``
in ``bench_timings.json``; this script renders the two side by side:

    $ python benchmarks/compare_timings.py
    figure            previous   current     delta
    run_headline       18.517s    1.892s    -89.8%  (9.79x faster)
    ...

Exits non-zero (``--fail-over PCT``) when any figure regressed by more
than the given percentage — usable as a cheap CI tripwire. Repeatable
``--budget NAME=SECONDS`` flags additionally enforce absolute wall
budgets on individual figures (e.g. ``--budget run_diurnal=1.0`` keeps
the fast-tier diurnal smoke under a second regardless of history).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_PATH = pathlib.Path(__file__).parent / "output" / "bench_timings.json"


def _parse_budget(spec: str):
    name, sep, seconds = spec.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected NAME=SECONDS, got {spec!r}"
        )
    try:
        limit = float(seconds)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"budget for {name!r} is not a number: {seconds!r}"
        ) from None
    if limit <= 0:
        raise argparse.ArgumentTypeError(f"budget for {name!r} must be > 0")
    return name, limit


def _speed_note(prev_s: float, cur_s: float) -> str:
    if cur_s <= 0 or prev_s <= 0:
        return ""
    ratio = prev_s / cur_s
    if ratio >= 1.05:
        return f"({ratio:.2f}x faster)"
    if ratio <= 0.95:
        return f"({1 / ratio:.2f}x slower)"
    return ""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        default=DEFAULT_PATH,
        type=pathlib.Path,
        help=f"timings file (default: {DEFAULT_PATH})",
    )
    parser.add_argument(
        "--fail-over",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 if any figure slowed down by more than PCT percent",
    )
    parser.add_argument(
        "--budget",
        action="append",
        type=_parse_budget,
        default=[],
        metavar="NAME=SECONDS",
        help=(
            "exit 1 if figure NAME's current wall clock exceeds SECONDS "
            "(repeatable); a missing figure also fails"
        ),
    )
    args = parser.parse_args(argv)

    try:
        current = json.loads(args.path.read_text())
    except OSError as error:
        print(f"cannot read {args.path}: {error}", file=sys.stderr)
        return 2
    previous = current.get("previous")
    if not isinstance(previous, dict):
        print(f"{args.path} has no embedded previous run; nothing to compare")
        return _check_budgets(args.budget, current.get("wall_clock_s", {}))

    def _meta(payload):
        return (
            f"profile={payload.get('profile')} workers={payload.get('workers')} "
            f"sha={payload.get('git_sha')} at={payload.get('timestamp')}"
        )

    print(f"previous: {_meta(previous)}")
    print(f"current:  {_meta(current)}")
    if previous.get("profile") != current.get("profile") or previous.get(
        "workers"
    ) != current.get("workers"):
        print("warning: profile/workers differ; deltas are not like-for-like")
    print()

    prev_times = previous.get("wall_clock_s", {})
    cur_times = current.get("wall_clock_s", {})
    names = sorted(set(prev_times) | set(cur_times))
    width = max((len(name) for name in names), default=6)
    print(f"{'figure':<{width}}  {'previous':>9}  {'current':>9}  {'delta':>8}")
    regressed = []
    for name in names:
        prev_s = prev_times.get(name)
        cur_s = cur_times.get(name)
        if prev_s is None or cur_s is None:
            status = "new" if prev_s is None else "removed"
            prev_cell = "-" if prev_s is None else f"{prev_s:.3f}s"
            cur_cell = "-" if cur_s is None else f"{cur_s:.3f}s"
            print(f"{name:<{width}}  {prev_cell:>9}  {cur_cell:>9}  {status:>8}")
            continue
        delta = (cur_s - prev_s) / prev_s * 100 if prev_s > 0 else 0.0
        note = _speed_note(prev_s, cur_s)
        print(
            f"{name:<{width}}  {prev_s:>8.3f}s  {cur_s:>8.3f}s  "
            f"{delta:>+7.1f}%  {note}".rstrip()
        )
        if args.fail_over is not None and delta > args.fail_over:
            regressed.append((name, delta))
    total_prev = sum(v for k, v in prev_times.items() if k in cur_times)
    total_cur = sum(v for k, v in cur_times.items() if k in prev_times)
    if total_prev > 0:
        print(
            f"\n{'total (common)':<{width}}  {total_prev:>8.3f}s  "
            f"{total_cur:>8.3f}s  "
            f"{(total_cur - total_prev) / total_prev * 100:>+7.1f}%"
        )
    failed = False
    if regressed:
        print(
            "\nregressions over "
            f"{args.fail_over:g}%: "
            + ", ".join(f"{name} ({delta:+.1f}%)" for name, delta in regressed),
            file=sys.stderr,
        )
        failed = True
    if _check_budgets(args.budget, cur_times):
        failed = True
    return 1 if failed else 0


def _check_budgets(budgets, cur_times) -> int:
    """Return 1 (and print to stderr) if any figure exceeds its budget."""
    over_budget = []
    for name, limit in budgets:
        cur_s = cur_times.get(name)
        if cur_s is None:
            over_budget.append(f"{name} (missing from current run)")
        elif cur_s > limit:
            over_budget.append(f"{name} ({cur_s:.3f}s > {limit:g}s)")
    if over_budget:
        print(
            "\nbudgets exceeded: " + ", ".join(over_budget),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
