"""Parallel sweep engine: bit-identical determinism and wall-clock speedup.

The determinism check always runs: a fig7-style multi-scheme sweep must
produce byte-for-byte identical curves at ``workers=1`` and
``workers=4`` (see :mod:`repro.runner`'s seeding contract). The speedup
check needs real cores and is skipped on boxes without them.
"""

import os
import time

import pytest

from conftest import PROFILE

from repro.core import make_system, sweep_many
from repro.experiments.common import get_profile
from repro.experiments.fig7 import HARDWARE_SCHEMES

#: A small fixed load grid (MRPS) spanning the HERD capacity range.
LOADS = [6.0, 12.0, 18.0, 24.0, 28.0]


def _systems(seed: int = 0):
    return {
        scheme: make_system(scheme, "herd", seed=seed)
        for scheme in HARDWARE_SCHEMES
    }


def _curves(sweeps):
    """Every float of every point, for exact (not approximate) equality."""
    return {
        name: [
            (point.offered_load, point.achieved_throughput,
             point.summary.mean, point.p99)
            for point in sweep.points
        ]
        for name, sweep in sweeps.items()
    }


def _run(workers: int, num_requests: int) -> dict:
    return sweep_many(
        _systems(),
        LOADS,
        num_requests=num_requests,
        workers=workers,
        experiment="bench-parallel",
    )


def test_parallel_bit_identical(benchmark):
    """Serial and 4-worker execution produce exactly equal curves."""
    num_requests = get_profile(PROFILE).arch_requests
    serial = _curves(
        benchmark.pedantic(_run, args=(1, num_requests), rounds=1, iterations=1)
    )
    parallel = _curves(_run(4, num_requests))
    assert serial == parallel
    for scheme in HARDWARE_SCHEMES:
        assert len(serial[scheme]) == len(LOADS)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="speedup needs at least 2 cores; determinism is covered above",
)
def test_parallel_speedup(benchmark):
    """Fanning the fig7 sweep across 4 workers beats serial wall-clock.

    ISSUE acceptance: >= 2x on a 4-core box. On 2-3 cores the bound is
    relaxed to 'meaningfully faster' since the pool can't reach 4-wide.
    """
    num_requests = get_profile(PROFILE).arch_requests
    _run(1, 500)  # warm caches/imports out of the measured runs

    started = time.perf_counter()
    _run(1, num_requests)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    benchmark.pedantic(_run, args=(4, num_requests), rounds=1, iterations=1)
    parallel_s = time.perf_counter() - started

    speedup = serial_s / parallel_s
    print(f"serial {serial_s:.2f}s, 4 workers {parallel_s:.2f}s -> {speedup:.2f}x")
    required = 2.0 if (os.cpu_count() or 1) >= 4 else 1.2
    assert speedup >= required, (
        f"expected >= {required}x speedup on {os.cpu_count()} cores, "
        f"got {speedup:.2f}x"
    )
