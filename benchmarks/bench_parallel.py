"""Parallel sweep engine: determinism, speedup, caching, and scheduling.

The determinism check always runs: a fig7-style multi-scheme sweep must
produce byte-for-byte identical curves at ``workers=1`` and
``workers=4`` (see :mod:`repro.runner`'s seeding contract). The speedup
check needs real cores and is skipped on boxes without them. The cache
and scheduling benchmarks always run (a warm cache hit and a sleeping
pool worker need no spare cores) and persist their wall-clocks into
``benchmarks/output/bench_timings.json`` alongside the figure timings.
"""

import os
import time

import pytest

from conftest import PROFILE, _TIMINGS

from repro.cache import set_cache
from repro.core import make_system, sweep_many
from repro.experiments.common import get_profile
from repro.experiments.fig7 import HARDWARE_SCHEMES
from repro.runner import map_points

#: A small fixed load grid (MRPS) spanning the HERD capacity range.
LOADS = [6.0, 12.0, 18.0, 24.0, 28.0]


def _systems(seed: int = 0):
    return {
        scheme: make_system(scheme, "herd", seed=seed)
        for scheme in HARDWARE_SCHEMES
    }


def _curves(sweeps):
    """Every float of every point, for exact (not approximate) equality."""
    return {
        name: [
            (point.offered_load, point.achieved_throughput,
             point.summary.mean, point.p99)
            for point in sweep.points
        ]
        for name, sweep in sweeps.items()
    }


def _run(workers: int, num_requests: int) -> dict:
    return sweep_many(
        _systems(),
        LOADS,
        num_requests=num_requests,
        workers=workers,
        experiment="bench-parallel",
    )


def test_parallel_bit_identical(benchmark):
    """Serial and 4-worker execution produce exactly equal curves."""
    num_requests = get_profile(PROFILE).arch_requests
    serial = _curves(
        benchmark.pedantic(_run, args=(1, num_requests), rounds=1, iterations=1)
    )
    parallel = _curves(_run(4, num_requests))
    assert serial == parallel
    for scheme in HARDWARE_SCHEMES:
        assert len(serial[scheme]) == len(LOADS)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="speedup needs at least 2 cores; determinism is covered above",
)
def test_parallel_speedup(benchmark):
    """Fanning the fig7 sweep across 4 workers beats serial wall-clock.

    ISSUE acceptance: >= 2x on a 4-core box. On 2-3 cores the bound is
    relaxed to 'meaningfully faster' since the pool can't reach 4-wide.
    """
    num_requests = get_profile(PROFILE).arch_requests
    _run(1, 500)  # warm caches/imports out of the measured runs

    started = time.perf_counter()
    _run(1, num_requests)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    benchmark.pedantic(_run, args=(4, num_requests), rounds=1, iterations=1)
    parallel_s = time.perf_counter() - started

    speedup = serial_s / parallel_s
    print(f"serial {serial_s:.2f}s, 4 workers {parallel_s:.2f}s -> {speedup:.2f}x")
    required = 2.0 if (os.cpu_count() or 1) >= 4 else 1.2
    assert speedup >= required, (
        f"expected >= {required}x speedup on {os.cpu_count()} cores, "
        f"got {speedup:.2f}x"
    )


def test_cache_cold_vs_warm(tmp_path):
    """A warm result cache replays a sweep orders of magnitude faster.

    Runs the same single-scheme sweep twice against a fresh cache
    directory: the first (cold) run computes and stores every point,
    the second (warm) run must hit on all of them, return identical
    curves, and finish well under the cold wall-clock.
    """

    def run():
        return sweep_many(
            {"1x16": make_system("1x16", "herd", seed=0)},
            LOADS[:3],
            num_requests=get_profile(PROFILE).arch_requests,
            workers=1,
            experiment="bench-cache",
        )

    set_cache(True, tmp_path / "cache")
    try:
        started = time.perf_counter()
        cold = run()
        cold_s = time.perf_counter() - started

        started = time.perf_counter()
        warm = run()
        warm_s = time.perf_counter() - started
    finally:
        set_cache(None, None)

    _TIMINGS["cache_cold"] = round(cold_s, 3)
    _TIMINGS["cache_warm"] = round(warm_s, 3)
    speedup = cold_s / max(warm_s, 1e-9)
    print(f"cold {cold_s:.3f}s, warm {warm_s:.3f}s -> {speedup:.1f}x")
    assert _curves(cold) == _curves(warm)
    assert warm_s < cold_s / 3, (
        f"warm cache run should be >=3x faster, got cold {cold_s:.3f}s "
        f"vs warm {warm_s:.3f}s"
    )


def _sleep_task(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


#: One long straggler plus a tail of short tasks (seconds of sleep).
_SCHED_TASKS = [0.6] + [0.1] * 8


def _makespan(cost_hints) -> float:
    started = time.perf_counter()
    outcome = map_points(
        _sleep_task,
        _SCHED_TASKS,
        workers=2,
        progress=False,
        cost_hints=cost_hints,
    )
    assert outcome.results == _SCHED_TASKS
    return time.perf_counter() - started


def test_makespan_scheduling():
    """Longest-expected-first submission beats a worst-case order.

    Sleep-based tasks parallelize even on a single-core box, so this
    measures pure scheduling: with 2 workers, submitting the 0.6s
    straggler first overlaps it with the 0.1s tail (~0.7s makespan)
    while submitting it last serializes it after the tail (~1.0s).
    """
    # cost_hints drive the submission order; inverted hints emulate the
    # naive shortest-first schedule the longest-first policy replaces.
    longest_first_s = _makespan(cost_hints=_SCHED_TASKS)
    shortest_first_s = _makespan(cost_hints=[-s for s in _SCHED_TASKS])

    _TIMINGS["sched_longest_first"] = round(longest_first_s, 3)
    _TIMINGS["sched_shortest_first"] = round(shortest_first_s, 3)
    print(
        f"longest-first {longest_first_s:.3f}s, "
        f"shortest-first {shortest_first_s:.3f}s"
    )
    assert longest_first_s < shortest_first_s, (
        f"longest-first {longest_first_s:.3f}s should beat "
        f"shortest-first {shortest_first_s:.3f}s"
    )
