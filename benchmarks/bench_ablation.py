"""Ablations of RPCValet's design choices (DESIGN.md §4)."""

import pytest

from conftest import run_once

from repro.experiments import (
    run_indirection_ablation,
    run_outstanding_ablation,
    run_policy_ablation,
    run_slots_ablation,
)


def test_outstanding(benchmark, profile, emit):
    result = run_once(benchmark, run_outstanding_ablation, profile=profile, seed=0)
    emit(result)
    by_limit = result.data["by_limit"]
    # All thresholds sustain the offered load (differences are tails).
    throughputs = [stats["tput_mrps"] for stats in by_limit.values()]
    assert max(throughputs) / min(throughputs) < 1.1


def test_policy(benchmark, profile, emit):
    result = run_once(benchmark, run_policy_ablation, profile=profile, seed=0)
    emit(result)
    p99s = result.data["p99_by_policy"]
    # Policy is second-order under hold semantics: within 2x of each other.
    assert max(p99s.values()) / min(p99s.values()) < 2.0


def test_indirection(benchmark, profile, emit):
    result = run_once(benchmark, run_indirection_ablation, profile=profile, seed=0)
    emit(result)
    p99s = result.data["p99_by_scale"]
    # §4.3: at realistic (1x-4x) hop latencies the indirection is
    # negligible; the extreme 16x point must show clear degradation —
    # that is the PCIe-attached regime §3.2 argues against.
    assert p99s[4] < 2.0 * p99s[1]
    assert p99s[16] > p99s[4]


def test_slots(benchmark, profile, emit):
    result = run_once(benchmark, run_slots_ablation, profile=profile, seed=0)
    emit(result)
    by_slots = result.data["by_slots"]
    # S=1 shows sender-side stalls before larger provisions do.
    assert by_slots[1]["stall_fraction"] >= by_slots[32]["stall_fraction"]
    assert by_slots[32]["stall_fraction"] == 0.0


def test_scalability(benchmark, profile, emit):
    from repro.experiments import run_scalability_ablation

    result = run_once(benchmark, run_scalability_ablation, profile=profile, seed=0)
    emit(result)
    by_cores = result.data["by_cores"]
    # Dispatcher busy fraction grows ~linearly but never saturates.
    assert by_cores[64]["dispatcher_busy"] < 0.5
    # Tails stay flat across core counts at equal relative load.
    assert by_cores[64]["p99_ns"] < 3 * by_cores[16]["p99_ns"]


def test_rss_spray(benchmark, profile, emit):
    from repro.experiments import run_rss_spray

    result = run_once(benchmark, run_rss_spray, profile=profile, seed=0)
    emit(result)
    by_config = result.data["by_config"]
    rss_skewed = by_config["16x1 per-source (RSS)/skew=1.2"]
    valet_skewed = by_config["1x16 (RPCValet)/skew=1.2"]
    assert rss_skewed["p99_ns"] > 3 * valet_skewed["p99_ns"]


def test_straggler(benchmark, profile, emit):
    from repro.experiments import run_straggler_ablation

    result = run_once(benchmark, run_straggler_ablation, profile=profile, seed=0)
    emit(result)
    by_config = result.data["by_config"]
    # §3.2: the static hash suffers from the degraded core far more
    # than NI-driven dynamic dispatch does.
    assert (
        by_config["16x1/1 straggler core"]["p99_ns"]
        > 4 * by_config["1x16/1 straggler core"]["p99_ns"]
    )
    # RPCValet's throughput is untouched by one degraded core.
    assert by_config["1x16/1 straggler core"]["tput_mrps"] == pytest.approx(
        by_config["1x16/healthy"]["tput_mrps"], rel=0.05
    )
