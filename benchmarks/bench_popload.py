"""Population-driven load bench: ext-diurnal (popload subsystem)."""

from conftest import run_once

from repro.experiments import run_diurnal


def test_diurnal(benchmark, profile, emit):
    result = run_once(benchmark, run_diurnal, profile=profile, seed=0)
    emit(result)
    capacity = result.data["capacity"]
    for scheme in ("1x16", "16x1"):
        constant = capacity[scheme]["constant"]
        # Equal-average shaped load costs both policies real SLO
        # capacity — the peak, not the mean, sets provisioning.
        assert capacity[scheme]["diurnal"] < 0.8 * constant, scheme
        assert capacity[scheme]["flash"] < 0.8 * constant, scheme
    # Under constant load the NI-driven single queue keeps its edge.
    assert capacity["1x16"]["constant"] > capacity["16x1"]["constant"]
