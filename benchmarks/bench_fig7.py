"""Figure 7: hardware queuing systems on the architectural simulator."""

from conftest import run_once

from repro.experiments import run_fig7a, run_fig7b, run_fig7c


def test_fig7a(benchmark, profile, emit):
    result = run_once(benchmark, run_fig7a, profile=profile, seed=0)
    emit(result)
    sweeps = result.data["sweeps"]
    slo = result.data["slo_ns"]
    single = sweeps["1x16"].throughput_under_slo(slo)
    grouped = sweeps["4x4"].throughput_under_slo(slo)
    partitioned = sweeps["16x1"].throughput_under_slo(slo)
    # Paper: 1x16 delivers 29 MRPS, 1.16x/1.18x over 4x4/16x1.
    assert single >= grouped >= partitioned
    assert single > 20.0  # MRPS — the right ballpark for S̄≈550ns


def test_fig7b(benchmark, profile, emit):
    result = run_once(benchmark, run_fig7b, profile=profile, seed=0)
    emit(result)
    sweeps = result.data["sweeps"]
    slo = result.data["slo_ns"]
    single = sweeps["1x16"].throughput_under_slo(slo)
    partitioned = sweeps["16x1"].throughput_under_slo(slo)
    # Paper: 16x1 cannot meet the 12.5µs SLO at any load; 1x16 ≈ 4.1 MRPS.
    assert partitioned == 0.0
    assert single > 2.0


def test_fig7c(benchmark, profile, emit):
    result = run_once(benchmark, run_fig7c, profile=profile, seed=0)
    emit(result)
    for kind in ("fixed", "gev"):
        sweeps = result.data["sweeps"][kind]
        slo = result.data[f"slo_ns_{kind}"]
        single = sweeps[f"1x16_{kind}"].throughput_under_slo(slo)
        partitioned = sweeps[f"16x1_{kind}"].throughput_under_slo(slo)
        assert single >= partitioned, kind
    # The GEV gap exceeds the fixed gap (variance amplifies imbalance).
    data = result.data
    gap = {}
    for kind in ("fixed", "gev"):
        sweeps = data["sweeps"][kind]
        slo = data[f"slo_ns_{kind}"]
        partitioned = sweeps[f"16x1_{kind}"].throughput_under_slo(slo)
        single = sweeps[f"1x16_{kind}"].throughput_under_slo(slo)
        gap[kind] = single / partitioned if partitioned else float("inf")
    assert gap["gev"] >= gap["fixed"] * 0.95
