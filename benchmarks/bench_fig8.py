"""Figure 8: hardware vs software single-queue (MCS lock) balancing."""

from conftest import run_once

from repro.experiments import run_fig8


def test_fig8(benchmark, profile, emit):
    result = run_once(benchmark, run_fig8, profile=profile, seed=0)
    emit(result)
    ratios = result.data["ratios"]
    # Paper: hardware delivers 2.3-2.7x more throughput under SLO.
    # Coarse grids overestimate the gap slightly; assert the claim's
    # direction and magnitude band generously.
    for kind, ratio in ratios.items():
        assert 1.8 <= ratio <= 6.0, (kind, ratio)
