"""Extension benches: preemption (§7), hedging (§7), dynamic slots (§4.2)."""

from conftest import run_once

from repro.experiments import run_dynamic_slots, run_hedging, run_preemption


def test_preemption(benchmark, profile, emit):
    result = run_once(benchmark, run_preemption, profile=profile, seed=0)
    emit(result)
    baseline = result.data["run_to_completion_get_p99_us"]
    best = min(
        result.data[f"quantum_{q}us_get_p99_us"] for q in ("5", "10", "15")
    )
    # Preemption never *hurts* the get tail materially on this mixture.
    assert best <= baseline * 1.05


def test_hedging(benchmark, profile, emit):
    result = run_once(benchmark, run_hedging, profile=profile, seed=0)
    emit(result)
    # At every load the single queue beats hedged duplication, and
    # hedging pays significant wasted work — §7's argument.
    for load_key, row in result.data.items():
        assert row["single_queue_p99"] <= row["hedged_p99"], load_key
        assert row["waste_fraction"] > 0.1, load_key
    # Hedging helps vs plain random at moderate load but backfires at 0.8.
    assert result.data["load_0.4"]["hedged_p99"] < result.data["load_0.4"]["random_p99"]
    assert result.data["load_0.8"]["hedged_p99"] > result.data["load_0.8"]["random_p99"]


def test_dynamic_slots(benchmark, profile, emit):
    result = run_once(benchmark, run_dynamic_slots, profile=profile, seed=0)
    emit(result)
    static = result.data["static"]
    pooled = result.data["dynamic_512"]
    # Same throughput and tail at a >10x memory reduction.
    assert pooled["tput_mrps"] >= 0.98 * static["tput_mrps"]
    assert pooled["p99_ns"] <= 1.1 * static["p99_ns"]
    assert pooled["recv_footprint_mib"] < static["recv_footprint_mib"] / 10


def test_cluster(benchmark, profile, emit):
    from repro.experiments import run_cluster

    result = run_once(benchmark, run_cluster, profile=profile, seed=0)
    emit(result)
    single = result.data["1x16/node"]
    partitioned = result.data["16x1/node"]
    assert single["p99_ns"] < partitioned["p99_ns"]


def test_rack(benchmark, profile, emit):
    from repro.experiments import run_rack

    result = run_once(benchmark, run_rack, profile=profile, seed=0)
    emit(result)
    ladder = result.data["ladder"]
    # Fresh signals: JSQ(2) beats random spray on cluster-wide p99...
    assert ladder[0]["advantage"] > 1.0
    # ...and the advantage decays monotonically with signal staleness.
    advantages = [entry["advantage"] for entry in ladder]
    assert advantages == sorted(advantages, reverse=True)


def test_validate(benchmark, profile, emit):
    from repro.experiments import run_validate

    result = run_once(benchmark, run_validate, profile=profile, seed=0)
    emit(result)
    assert result.data["worst_error"] < 0.15


def test_bursts(benchmark, profile, emit):
    from repro.experiments import run_bursts

    result = run_once(benchmark, run_bursts, profile=profile, seed=0)
    emit(result)
    stationary = result.data["stationary 0.6"]["ratio"]
    sub_capacity = result.data["bursts to 0.95x capacity"]["ratio"]
    assert sub_capacity > stationary
