"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure via its experiment
driver, records the wall-clock cost with pytest-benchmark, prints the
same rows/series the paper plots, and persists the rendered table under
``benchmarks/output/``.

Profile selection: set ``REPRO_BENCH_PROFILE`` to ``smoke`` (default,
seconds per figure), ``quick``, or ``full`` (publication-scale, used to
produce the numbers in EXPERIMENTS.md).

Every :func:`run_once` invocation also records its wall-clock seconds;
the session writes them to ``benchmarks/output/bench_timings.json`` so
figure-regeneration cost can be tracked across commits.
"""

import datetime
import json
import os
import pathlib
import subprocess
import time
from typing import Dict, Optional

import pytest

#: Directory where rendered tables are persisted.
OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "smoke")

#: Per-driver wall-clock seconds collected by :func:`run_once`.
_TIMINGS: Dict[str, float] = {}


@pytest.fixture(scope="session")
def profile():
    return PROFILE


@pytest.fixture(scope="session")
def emit():
    """Persist and print an ExperimentResult's tables."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(result):
        text = result.table()
        (OUTPUT_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)
        return text

    return _emit


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    started = time.perf_counter()
    result = benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
    name = getattr(func, "__name__", str(func))
    _TIMINGS[name] = round(time.perf_counter() - started, 3)
    return result


def _git_sha() -> Optional[str]:
    """Current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def pytest_sessionfinish(session, exitstatus):
    """Persist per-figure wall-clock timings for cross-commit tracking.

    Alongside the timings each payload records its provenance —
    timestamp, git SHA, profile, workers — and embeds the prior
    payload (one level only) under ``previous`` so
    ``benchmarks/compare_timings.py`` can print per-figure deltas
    without any external history.
    """
    if not _TIMINGS:
        return
    from repro.runner import resolve_workers

    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "bench_timings.json"
    previous = None
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = None
        if isinstance(previous, dict):
            # One generation of history is enough for a delta report;
            # unbounded nesting would grow the file every run.
            previous.pop("previous", None)
    payload = {
        "profile": PROFILE,
        # The resolved integer (REPRO_WORKERS, else 1 = serial), not the
        # raw env string — "" used to land here when the var was unset.
        "workers": resolve_workers(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_sha": _git_sha(),
        "wall_clock_s": dict(sorted(_TIMINGS.items())),
    }
    if previous is not None:
        payload["previous"] = previous
    path.write_text(json.dumps(payload, indent=2) + "\n")
