"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure via its experiment
driver, records the wall-clock cost with pytest-benchmark, prints the
same rows/series the paper plots, and persists the rendered table under
``benchmarks/output/``.

Profile selection: set ``REPRO_BENCH_PROFILE`` to ``smoke`` (default,
seconds per figure), ``quick``, or ``full`` (publication-scale, used to
produce the numbers in EXPERIMENTS.md).
"""

import os
import pathlib

import pytest

#: Directory where rendered tables are persisted.
OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "smoke")


@pytest.fixture(scope="session")
def profile():
    return PROFILE


@pytest.fixture(scope="session")
def emit():
    """Persist and print an ExperimentResult's tables."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(result):
        text = result.table()
        (OUTPUT_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)
        return text

    return _emit


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
