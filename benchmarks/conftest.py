"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure via its experiment
driver, records the wall-clock cost with pytest-benchmark, prints the
same rows/series the paper plots, and persists the rendered table under
``benchmarks/output/``.

Profile selection: set ``REPRO_BENCH_PROFILE`` to ``smoke`` (default,
seconds per figure), ``quick``, or ``full`` (publication-scale, used to
produce the numbers in EXPERIMENTS.md).

Every :func:`run_once` invocation also records its wall-clock seconds;
the session writes them to ``benchmarks/output/bench_timings.json`` so
figure-regeneration cost can be tracked across commits.
"""

import json
import os
import pathlib
import time
from typing import Dict

import pytest

#: Directory where rendered tables are persisted.
OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "smoke")

#: Per-driver wall-clock seconds collected by :func:`run_once`.
_TIMINGS: Dict[str, float] = {}


@pytest.fixture(scope="session")
def profile():
    return PROFILE


@pytest.fixture(scope="session")
def emit():
    """Persist and print an ExperimentResult's tables."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(result):
        text = result.table()
        (OUTPUT_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)
        return text

    return _emit


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    started = time.perf_counter()
    result = benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
    name = getattr(func, "__name__", str(func))
    _TIMINGS[name] = round(time.perf_counter() - started, 3)
    return result


def pytest_sessionfinish(session, exitstatus):
    """Persist per-figure wall-clock timings for cross-commit tracking."""
    if not _TIMINGS:
        return
    from repro.runner import resolve_workers

    OUTPUT_DIR.mkdir(exist_ok=True)
    payload = {
        "profile": PROFILE,
        # The resolved integer (REPRO_WORKERS, else 1 = serial), not the
        # raw env string — "" used to land here when the var was unset.
        "workers": resolve_workers(),
        "wall_clock_s": dict(sorted(_TIMINGS.items())),
    }
    path = OUTPUT_DIR / "bench_timings.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
