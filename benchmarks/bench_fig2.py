"""Figure 2: theoretical queueing models (§2.2).

Regenerates the three panels and asserts the paper's qualitative
findings: p99 improves with U, and tail grows with service variance.
"""

from conftest import run_once

from repro.experiments import run_fig2a, run_fig2b, run_fig2c


def test_fig2a(benchmark, profile, emit):
    result = run_once(benchmark, run_fig2a, profile=profile, seed=0)
    emit(result)
    p99s = result.data["high_load_p99"]
    assert p99s["1x16"] < p99s["2x8"] < p99s["4x4"]
    assert p99s["4x4"] < p99s["8x2"] < p99s["16x1"]


def test_fig2b(benchmark, profile, emit):
    result = run_once(benchmark, run_fig2b, profile=profile, seed=0)
    emit(result)
    p99s = result.data["pre_saturation_p99"]
    assert p99s["fixed"] <= p99s["uniform"] <= p99s["exponential"] <= p99s["gev"]


def test_fig2c(benchmark, profile, emit):
    result = run_once(benchmark, run_fig2c, profile=profile, seed=0)
    emit(result)
    p99s = result.data["pre_saturation_p99"]
    assert p99s["fixed"] <= p99s["uniform"] <= p99s["exponential"] <= p99s["gev"]
