"""Figure 9: RPCValet implementation vs theoretical 1×16 model (§6.3)."""

from conftest import run_once

from repro.experiments import run_fig9


def test_fig9(benchmark, profile, emit):
    result = run_once(benchmark, run_fig9, profile=profile, seed=0)
    emit(result)
    # Paper: within 3% (fixed) to 15% (GEV) of the model. Allow slack
    # for the reduced-sample profiles; the full profile lands inside
    # ~15% (see EXPERIMENTS.md).
    for kind in ("fixed", "uniform", "exponential", "gev"):
        gap = result.data[kind]["worst_gap"]
        assert gap < 0.35, (kind, gap)
