"""Headline claims (§1/abstract) in one table."""

from conftest import run_once

from repro.experiments import run_headline


def test_headline(benchmark, profile, emit):
    result = run_once(benchmark, run_headline, profile=profile, seed=0)
    emit(result)
    data = result.data
    # 1x16 over 16x1 under SLO: paper up to 1.4x (GEV).
    assert data["tput_ratio_vs_16x1_gev"] >= 1.0
    # Tail reduction before saturation: paper "up to 4x".
    assert data["tail_ratio_before_saturation"] > 1.5
    # Software gap: paper 2.3-2.7x.
    assert data["sw_ratio_min"] >= 1.8
    # Model gap: paper 3-15%.
    assert data["model_gap_fixed"] < 0.35
    assert data["model_gap_gev"] < 0.35
