"""Rack-of-racks in-network scheduling bench (``ext-datacenter``)."""

from conftest import run_once

from repro.experiments import run_datacenter


def test_datacenter(benchmark, profile, emit):
    result = run_once(benchmark, run_datacenter, profile=profile, seed=0)
    emit(result)
    data = result.data
    # A load-aware spine must beat random rack placement under skew.
    assert data["spine_advantage"] > 2.0
    # The nanopu NI-bypass profile cuts the median.
    assert data["nanopu_p50_ratio"] > 1.2
    # Correlated rack outages conserve work on every hierarchy.
    for entry in data["faults"].values():
        assert entry["conserved"]
        assert entry["lost"] > 0
    # Fast tier stays inside the DES cross-check band (quick/full).
    if "des_check" in data:
        assert data["des_check"]["worst_abs_delta"] < 0.15
