"""Figure 6: the modeled processing-time distributions (§5)."""

import pytest
from conftest import run_once

from repro.experiments import run_fig6


def test_fig6(benchmark, profile, emit):
    result = run_once(benchmark, run_fig6, profile=profile, seed=0)
    emit(result)
    data = result.data
    # Paper anchors: 600ns synthetic, 330ns HERD, 1.25µs Masstree gets.
    for kind in ("fixed", "uniform", "exponential", "gev"):
        assert data[kind]["mean_analytic"] == pytest.approx(600.0, rel=0.01)
    assert data["herd"]["mean_analytic"] == pytest.approx(330.0)
    assert data["masstree_get"]["mean_analytic"] == pytest.approx(1250.0)
    # Scans clip the Fig. 6c axis: 60-120µs.
    assert data["masstree_scan"]["mean_analytic"] == pytest.approx(90_000.0)
