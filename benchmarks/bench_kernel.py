"""Micro-benchmarks of the simulation substrates themselves.

These track the cost of the building blocks (events/second in the DES
kernel, requests/second in the queueing fast path, RPCs/second in the
architectural simulator) so performance regressions in the simulator
are visible independently of the figure-level benchmarks.
"""

import numpy as np

from repro import make_system
from repro.queueing import poisson_arrivals, simulate_fifo_queue
from repro.sim import Environment, Store


def test_kernel_timeout_throughput(benchmark):
    """Schedule and process a chain of timeouts."""

    def run():
        env = Environment()

        def chain():
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(chain())
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 10_000.0


def test_kernel_store_handoff_throughput(benchmark):
    """Producer/consumer hand-offs through a Store."""

    def run():
        env = Environment()
        store = Store(env)
        received = [0]

        def producer():
            for index in range(5_000):
                yield store.put(index)
                yield env.timeout(1.0)

        def consumer():
            while received[0] < 5_000:
                yield store.get()
                received[0] += 1

        env.process(producer())
        env.process(consumer())
        env.run()
        return received[0]

    assert benchmark(run) == 5_000


def test_fastsim_throughput(benchmark):
    """The Fig. 2/9 inner loop: G/G/16 FIFO on 200k requests."""
    rng = np.random.default_rng(0)
    n = 200_000
    arrivals = poisson_arrivals(rng, rate=12.8, count=n)
    services = rng.exponential(1.0, n)

    def run():
        return simulate_fifo_queue(arrivals, services, 16)

    departures = benchmark(run)
    assert departures.shape == (n,)


def test_arch_sim_throughput(benchmark):
    """End-to-end RPCs/second through the architectural simulator."""

    def run():
        system = make_system("1x16", "herd", seed=0)
        return system.run_point(offered_mrps=20.0, num_requests=4_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.completed == 4_000
