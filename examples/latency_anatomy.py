#!/usr/bin/env python3
"""Where do the nanoseconds go? Per-stage latency anatomy.

Runs RPCValet at three load levels, keeps every per-request record, and
decomposes the mean end-to-end latency (§5's metric: NI reception →
replenish posted) into the Fig. 5 pipeline stages. This makes the
paper's core claim visible stage by stage: as load grows, *only* the
``dispatch_wait`` stage (queueing in the shared CQ) grows — the NI
machinery itself stays flat at tens of ns.

Also contrasts the static §4.2 buffer provisioning against the
dynamic shared-pool extension at identical load.

Run:  python examples/latency_anatomy.py
"""

from repro import MicrobenchCosts, RpcValetSystem, SingleQueue
from repro.metrics import breakdown_from_messages
from repro.workloads import HerdWorkload

REQUESTS = 15_000


def anatomy_at(offered_mrps: float) -> None:
    system = RpcValetSystem(
        SingleQueue(), HerdWorkload(), costs=MicrobenchCosts.lean(), seed=5
    )
    result = system.run_point(
        offered_mrps=offered_mrps, num_requests=REQUESTS, keep_messages=True
    )
    breakdown = breakdown_from_messages(result.messages)
    utilization = offered_mrps / (16.0 / (result.mean_service_ns / 1e3))
    print(f"--- {offered_mrps:.0f} MRPS offered (~{utilization * 100:.0f}% load) ---")
    print(breakdown.table())


def provisioning_comparison(offered_mrps: float = 26.0) -> None:
    print("--- §4.2 provisioning: static N×S vs dynamic shared pool ---")
    for policy, pool in (("static", None), ("dynamic", 256)):
        system = RpcValetSystem(
            SingleQueue(),
            HerdWorkload(),
            costs=MicrobenchCosts.lean(),
            seed=5,
            slot_policy=policy,
            pool_size=pool,
        )
        result = system.run_point(offered_mrps=offered_mrps, num_requests=REQUESTS)
        label = "static N*S=6368 slots" if policy == "static" else f"dynamic pool={pool}"
        print(
            f"  {label:<24} p99 = {result.p99:7.1f}ns  "
            f"tput = {result.point.achieved_throughput:.2f} MRPS  "
            f"stalls = {result.stall_fraction:.3f}"
        )


def main() -> None:
    for offered in (6.0, 20.0, 27.0):
        anatomy_at(offered)
    provisioning_comparison()


if __name__ == "__main__":
    main()
