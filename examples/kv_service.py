#!/usr/bin/env python3
"""Execution-driven ordered KV service (the paper's Masstree scenario).

Instead of replaying a service-time distribution, this example runs a
*real* skip-list ordered store inside the simulation: every simulated
RPC performs an actual get or 100-key scan against the store, and its
processing time is derived from the work the data structure did
(pointer chases, levels, items copied) through a cost model.

It then reproduces the paper's §6.1 Masstree finding: rare long scans
occupying cores destroy the get tail under RSS-style 16×1 partitioning,
while RPCValet's single-queue dispatch absorbs them.

Run:  python examples/kv_service.py
"""

from repro import MicrobenchCosts, RpcValetSystem
from repro.balancing import Partitioned, SingleQueue
from repro.store import TimedKVStore
from repro.workloads import MasstreeWorkload

NUM_KEYS = 100_000
OFFERED_MRPS = 3.0
NUM_REQUESTS = 20_000
GET_SLO_NS = 12_500.0  # the paper's 10x get service time


def herd_panel() -> None:
    """Execution-driven HERD: a real hash table under the simulator."""
    from repro.store import TimedHashKV

    print(f"\npopulating chained hash table with {NUM_KEYS} keys ...")
    store = TimedHashKV(num_keys=NUM_KEYS, seed=7)
    print(
        f"  measured mean get cost: {store.expected_get_ns:.0f}ns "
        f"(paper's HERD: 330ns); load factor "
        f"{store.table.load_factor:.1f}"
    )
    from repro.workloads import HerdWorkload

    workload = HerdWorkload(store=store)
    system = RpcValetSystem(
        SingleQueue(), workload, costs=MicrobenchCosts.lean(), seed=7
    )
    result = system.run_point(offered_mrps=24.0, num_requests=NUM_REQUESTS)
    print(
        f"  1x16 at 24 MRPS: p99 = {result.p99:.0f}ns, "
        f"S̄ = {result.mean_service_ns:.0f}ns "
        "(every RPC ran a real hash lookup)"
    )


def main() -> None:
    print(f"populating skip-list store with {NUM_KEYS} keys ...")
    store = TimedKVStore(num_keys=NUM_KEYS, seed=7)
    print(
        f"  measured mean get cost: {store.expected_get_ns:.0f}ns "
        f"(paper's Masstree: 1250ns)"
    )
    print(
        f"  expected 100-key scan cost: "
        f"{store.expected_scan_ns(100) / 1e3:.0f}µs (paper: 60-120µs)"
    )

    for scheme, name in ((Partitioned(), "16x1 (RSS-style)"),
                         (SingleQueue(), "1x16 (RPCValet)")):
        workload = MasstreeWorkload(store=store)
        system = RpcValetSystem(
            scheme, workload, costs=MicrobenchCosts.lean(), seed=7
        )
        result = system.run_point(
            offered_mrps=OFFERED_MRPS, num_requests=NUM_REQUESTS
        )
        summary = result.point.summary  # gets only
        verdict = "MEETS" if summary.p99 <= GET_SLO_NS else "VIOLATES"
        print()
        print(f"{name} at {OFFERED_MRPS} MRPS (99% gets, 1% scans):")
        print(f"  gets p50 / p99:  {summary.p50 / 1e3:6.1f}µs / {summary.p99 / 1e3:6.1f}µs")
        print(f"  achieved tput:   {result.point.achieved_throughput:.2f} MRPS")
        print(f"  {verdict} the {GET_SLO_NS / 1e3:.1f}µs get SLO")
    herd_panel()


if __name__ == "__main__":
    main()
