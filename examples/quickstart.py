#!/usr/bin/env python3
"""Quickstart: simulate RPCValet vs RSS-style partitioning in ~30 lines.

Builds a 16-core soNUMA server under two NI load-balancing schemes,
drives it with the paper's GEV-distributed µs-scale RPCs, and prints
throughput vs p99 tail latency — the paper's Fig. 7c in miniature.

Run:  python examples/quickstart.py
"""

from repro import make_system
from repro.metrics import sweep_table

OFFERED_MRPS = [3.0, 6.0, 9.0, 11.0, 12.5]
REQUESTS_PER_POINT = 15_000


def main() -> None:
    sweeps = []
    for scheme in ("16x1", "1x16"):
        system = make_system(scheme, "synthetic-gev", seed=42)
        print(
            f"sweeping {scheme}: S̄ ≈ {system.expected_service_ns:.0f}ns, "
            f"{len(OFFERED_MRPS)} load points × {REQUESTS_PER_POINT} RPCs"
        )
        sweeps.append(
            system.sweep(OFFERED_MRPS, num_requests=REQUESTS_PER_POINT, label=scheme)
        )

    print()
    print(
        sweep_table(
            sweeps,
            load_label="offered MRPS",
            title="GEV service times: p99 latency (ns) vs achieved throughput (MRPS)",
        )
    )

    slo_ns = 10 * 1200.0  # 10x the mean service time, as in the paper
    for sweep in sweeps:
        print(
            f"{sweep.label}: throughput under {slo_ns / 1e3:.0f}µs SLO = "
            f"{sweep.throughput_under_slo(slo_ns):.2f} MRPS"
        )


if __name__ == "__main__":
    main()
