#!/usr/bin/env python3
"""Capacity planning with the paper's provisioning formulas (§4.2/§4.3).

Answers the sizing questions a deployer of native messaging would ask:

1. How much memory do the send/receive buffers take per node, as the
   messaging domain (N nodes × S slots × max message size) scales?
2. Can a single NI dispatcher keep up with the chip's dispatch rate
   (§4.3's feasibility argument), and where would grouped dispatch
   become necessary?

Run:  python examples/capacity_planning.py
"""

from repro.arch import ChipConfig, MessagingDomain
from repro.metrics import format_table


def buffer_footprint_panel() -> None:
    print("— §4.2 buffer provisioning: per-node memory footprint —")
    rows = []
    for num_nodes in (64, 200, 512, 1024):
        for max_msg in (512, 2048):
            domain = MessagingDomain(
                num_nodes=num_nodes, slots_per_node=32, max_msg_bytes=max_msg
            )
            rows.append(
                [
                    num_nodes,
                    32,
                    max_msg,
                    domain.send_buffer_bytes / 1024,
                    domain.receive_buffer_bytes / 2**20,
                    domain.footprint_bytes / 2**20,
                ]
            )
    print(
        format_table(
            ["nodes (N)", "slots (S)", "max msg (B)",
             "send buf (KiB)", "recv buf (MiB)", "total (MiB)"],
            rows,
            precision=4,
        )
    )
    print(
        "The paper's expectation — 'a few tens of MBs' for rack-scale\n"
        "deployments — holds across these points.\n"
    )


def dispatcher_feasibility_panel() -> None:
    print("— §4.3 dispatch-rate feasibility of one NI dispatcher —")
    config = ChipConfig()
    rows = []
    for cores, service_ns in ((16, 500.0), (16, 2000.0), (64, 500.0), (256, 500.0)):
        dispatch_interval_ns = service_ns / cores
        headroom = dispatch_interval_ns / config.dispatch_ns
        rows.append(
            [
                cores,
                service_ns,
                dispatch_interval_ns,
                config.dispatch_ns,
                f"{headroom:.0f}x",
                "single dispatcher OK" if headroom >= 2 else "consider grouping",
            ]
        )
    print(
        format_table(
            ["cores", "RPC service (ns)", "dispatch every (ns)",
             "decision cost (ns)", "headroom", "verdict"],
            rows,
        )
    )
    print(
        "§4.3: 'even an RPC service time as low as 500ns corresponds to a\n"
        "new dispatch decision every ~31/8ns for a 16/64-core chip' — both\n"
        "sustainable; the table shows where that argument starts to strain.\n"
    )


def slot_blocking_panel() -> None:
    print("— slot provisioning as a finite-buffer system (M/M/c/K) —")
    from repro.queueing import mmck_blocking_probability, mmck_throughput

    # One server pair: how many in-flight slots S before sender stalls
    # become negligible? Model the server as M/M/16/K with K = total
    # admitted requests; S bounds K per sender.
    servers, service_rate = 16, 1.0 / 0.55e-6  # ~550ns HERD service
    rows = []
    for utilization in (0.8, 0.95):
        arrival_rate = utilization * servers * service_rate
        for capacity in (16, 24, 48, 96):
            blocking = mmck_blocking_probability(
                servers, capacity, arrival_rate, service_rate
            )
            accepted = mmck_throughput(
                servers, capacity, arrival_rate, service_rate
            )
            rows.append(
                [
                    f"{utilization:.0%}",
                    capacity,
                    f"{blocking * 100:.3f}%",
                    accepted / 1e6,
                ]
            )
    print(
        format_table(
            ["load", "admitted cap (K)", "P(block)", "accepted (MRPS)"],
            rows,
        )
    )
    print(
        "Tens of in-flight slots suffice below saturation — the paper's\n"
        "'a few tens' provisioning claim (§4.2), derived analytically.\n"
    )


def main() -> None:
    buffer_footprint_panel()
    dispatcher_feasibility_panel()
    slot_blocking_panel()


if __name__ == "__main__":
    main()
