#!/usr/bin/env python3
"""Rack-scale cluster: every node a full RPCValet chip.

The paper models one chip and emulates its peers. This example goes
further: it simulates a small rack where *every* node is a full
16-core soNUMA chip exchanging RPCs all-to-all, with per-pair send-slot
flow control and replenish credits crossing the fabric. It compares
RPCValet against RSS-style partitioning cluster-wide, then shows the
effect of a two-tier (pod) fabric on flow-control stalls.

Run:  python examples/rack_scale_cluster.py
"""

from repro.balancing import Partitioned, SingleQueue
from repro.cluster import Cluster, PodFabric

NODES = 4
PER_NODE_MRPS = 22.0
REQUESTS_PER_NODE = 8_000


def scheme_comparison() -> None:
    print(
        f"— {NODES} nodes x 16 cores, each offered {PER_NODE_MRPS} MRPS "
        f"(HERD service times) —"
    )
    for factory, name in ((Partitioned, "16x1 per node"),
                          (SingleQueue, "1x16 per node")):
        cluster = Cluster(num_nodes=NODES, scheme_factory=factory, seed=11)
        result = cluster.run(
            per_node_mrps=PER_NODE_MRPS, requests_per_node=REQUESTS_PER_NODE
        )
        print(
            f"  {name:<15} cluster tput = {result.total_throughput_mrps:6.1f} MRPS  "
            f"p99 = {result.p99_ns / 1e3:5.2f}µs  "
            f"node imbalance = {result.imbalance():.3f}"
        )


def fabric_comparison() -> None:
    print("\n— fabric topology: uniform rack vs two pods —")
    for fabric, name in (
        (None, "uniform 100ns"),
        (
            PodFabric(NODES, pod_size=2, intra_pod_ns=60.0, inter_pod_ns=900.0),
            "2 pods (60/900ns)",
        ),
    ):
        cluster = Cluster(num_nodes=NODES, fabric=fabric, seed=11)
        result = cluster.run(
            per_node_mrps=PER_NODE_MRPS, requests_per_node=REQUESTS_PER_NODE
        )
        worst_stall = max(result.stall_fractions)
        print(
            f"  {name:<18} p99 = {result.p99_ns / 1e3:5.2f}µs  "
            f"worst node stall fraction = {worst_stall:.4f}"
        )
    print(
        "\nServer-side latency (NI reception → replenish) is fabric-"
        "independent; slower fabrics instead show up as slower slot "
        "recycling — sender stalls appear once the per-pair "
        "bandwidth-delay product outgrows S."
    )


def main() -> None:
    scheme_comparison()
    fabric_comparison()


if __name__ == "__main__":
    main()
