#!/usr/bin/env python3
"""Replaying a measured trace, closed-loop load, and Perfetto export.

The workflow a practitioner with real measurements would use:

1. load a CSV of measured per-request service times (here we fabricate
   one with a bimodal shape — swap in your own file);
2. replay it through the simulated server under open-loop (the paper's
   methodology) *and* closed-loop (bench-client style) load;
3. export per-request timelines as a Chrome-trace JSON for
   https://ui.perfetto.dev.

Run:  python examples/measured_trace_replay.py
"""

import io
import tempfile

import numpy as np

from repro import MicrobenchCosts, RpcValetSystem, SingleQueue
from repro.arch import Chip, ChipConfig
from repro.metrics import export_chrome_trace
from repro.sim import Environment, RngRegistry
from repro.workloads import (
    ClosedLoopClients,
    MicrobenchProgram,
    TraceWorkload,
)


def fabricate_trace_csv() -> io.StringIO:
    """Stand-in for a real measurement file (service_ns[,label])."""
    rng = np.random.default_rng(42)
    lines = ["service_ns,label"]
    for _ in range(20_000):
        if rng.uniform() < 0.05:
            lines.append(f"{rng.uniform(4_000, 9_000):.0f},slow")
        else:
            lines.append(f"{rng.gamma(4.0, 100.0):.0f},fast")
    return io.StringIO("\n".join(lines) + "\n")


def open_loop(workload: TraceWorkload) -> None:
    system = RpcValetSystem(
        SingleQueue(), workload, costs=MicrobenchCosts.lean(), seed=1
    )
    capacity = 16.0 / (system.expected_service_ns / 1e3)
    result = system.run_point(offered_mrps=18.0, num_requests=15_000)
    print(
        f"open loop @18 MRPS (capacity ≈ {capacity:.1f} — deliberately "
        f"overloaded): fast-class p99 = {result.p99 / 1e3:.2f}µs, "
        f"achieved = {result.point.achieved_throughput:.2f} MRPS"
    )


def closed_loop(workload: TraceWorkload) -> None:
    env = Environment()
    chip = Chip(
        env, ChipConfig(), MicrobenchProgram(MicrobenchCosts.lean()),
        RngRegistry(1),
    )
    SingleQueue().install(chip, RngRegistry(1).stream("dispatch"))
    ClosedLoopClients(
        chip, workload, num_clients=48, requests_per_client=300,
        rngs=RngRegistry(1),
    )
    env.run()
    summary = chip.recorder.summary(label=workload.slo_label)
    rate = chip.stats.completed / env.now * 1e3
    print(
        f"closed loop, 48 clients: fast-class p99 = {summary.p99 / 1e3:.2f}µs, "
        f"self-throttled rate = {rate:.2f} MRPS (never saturates)"
    )


def perfetto_export(workload: TraceWorkload) -> None:
    system = RpcValetSystem(
        SingleQueue(), workload, costs=MicrobenchCosts.lean(), seed=1
    )
    result = system.run_point(
        offered_mrps=18.0, num_requests=2_000, keep_messages=True
    )
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".trace.json", delete=False
    ) as handle:
        count = export_chrome_trace(result.messages, handle)
        print(
            f"wrote {count} trace events to {handle.name} "
            "(open in https://ui.perfetto.dev)"
        )


def main() -> None:
    workload = TraceWorkload.from_csv(fabricate_trace_csv(), mode="shuffle")
    print(
        f"trace: {len(workload)} requests, mean = "
        f"{workload.mean_processing_ns:.0f}ns, SLO class = "
        f"{workload.slo_label!r}"
    )
    open_loop(workload)
    closed_loop(workload)
    perfetto_export(workload)


if __name__ == "__main__":
    main()
