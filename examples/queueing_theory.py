#!/usr/bin/env python3
"""Queueing-theory playground: Q×U models and load-aware routing.

Reproduces the paper's §2.2 analysis (Fig. 2) with the theoretical
models, then goes beyond the paper: it compares the uniform-spray Q×U
systems against the load-aware routing algorithms the related-work
section cites (JSQ, Power-of-d, Join-Idle-Queue), showing where a
single queue still wins.

Run:  python examples/queueing_theory.py
"""

import numpy as np

from repro.dists import Exponential
from repro.experiments import unit_mean_service
from repro.metrics import format_table
from repro.queueing import (
    JIQRouter,
    JSQRouter,
    PAPER_CONFIGS,
    PowerOfDRouter,
    QueueingSystem,
    RandomRouter,
    poisson_arrivals,
    simulate_fifo_queue,
    simulate_routed_queues,
)

LOAD = 0.85
N = 150_000


def fig2_panel() -> None:
    print("— Fig. 2a: p99 (in multiples of mean service) at load 0.85 —")
    rows = []
    for num_queues, servers in PAPER_CONFIGS:
        system = QueueingSystem(num_queues, servers, Exponential(1.0), seed=1)
        point = system.run(LOAD, num_requests=N)
        rows.append([f"{num_queues}x{servers}", point.p99])
    print(format_table(["model", "p99 (xS)"], rows))


def variance_panel() -> None:
    print("— Fig. 2b/2c: variance amplifies the single-queue advantage —")
    rows = []
    for kind in ("fixed", "uniform", "exponential", "gev"):
        service = unit_mean_service(kind)
        single = QueueingSystem(1, 16, service, seed=2).run(LOAD, N).p99
        partitioned = QueueingSystem(16, 1, service, seed=2).run(LOAD, N).p99
        rows.append([kind, single, partitioned, partitioned / single])
    print(format_table(["service", "1x16 p99", "16x1 p99", "gap"], rows))


def routing_panel() -> None:
    print("— Beyond the paper: load-aware routing vs the single queue —")
    rng = np.random.default_rng(3)
    arrivals = poisson_arrivals(rng, rate=16.0 * LOAD, count=N)
    services = rng.exponential(1.0, N)
    single_queue = simulate_fifo_queue(arrivals, services, 16) - arrivals

    rows = [["single queue (1x16)", float(np.percentile(single_queue[N // 10:], 99))]]
    for router in (RandomRouter(), PowerOfDRouter(2), JIQRouter(), JSQRouter()):
        sojourns = simulate_routed_queues(
            arrivals, services, 16, 1, router, np.random.default_rng(4)
        )
        rows.append(
            [f"routed 16x1: {router.name}", float(np.percentile(sojourns[N // 10:], 99))]
        )
    print(format_table(["system", "p99 (xS)"], rows))
    print(
        "Even JSQ — full queue-state knowledge at arrival time — cannot\n"
        "reach the single queue: committed work cannot migrate once queued.\n"
        "That is why RPCValet defers dispatch until a core is free (§3.3).\n"
    )


def main() -> None:
    fig2_panel()
    variance_panel()
    routing_panel()


if __name__ == "__main__":
    main()
