#!/usr/bin/env python3
"""Plugging a custom dispatch policy into the NI dispatcher.

§4.3 of the paper: "Load-balancing policies implemented by the NIs can
be sophisticated ... Implementations can range from simple hardwired
logic to microcoded state machines." This example implements a custom
policy — *sticky* dispatch that prefers the core that served the same
source node's previous RPC (a cache-affinity heuristic) — and compares
it against the paper's greedy policy on the HERD workload.

Run:  python examples/custom_policy.py
"""

from typing import Dict, List, Optional

import numpy as np

from repro import MicrobenchCosts, RpcValetSystem
from repro.balancing import SingleQueue
from repro.balancing.policies import SelectionPolicy
from repro.workloads import HerdWorkload


class StickyAffinity(SelectionPolicy):
    """Prefer an available core with 0 outstanding; among those, the
    one that has been idle longest (oldest last dispatch). Falls back
    to the least-loaded available core.

    A real NI would key stickiness on a flow hash; keyless stickiness
    via idle age is what the dispatcher can do without header state.
    """

    name = "sticky_affinity"

    def select(
        self,
        core_ids: List[int],
        outstanding: Dict[int, int],
        limit: Optional[int],
        rng: np.random.Generator,
        last_dispatch: Optional[Dict[int, float]] = None,
    ) -> Optional[int]:
        available = self._available(core_ids, outstanding, limit)
        if not available:
            return None
        idle = [core for core in available if outstanding[core] == 0]
        pool = idle or available
        if last_dispatch is None:
            return pool[0]
        return min(pool, key=lambda core: (outstanding[core], last_dispatch[core]))


def run(policy_name_or_instance) -> None:
    scheme = SingleQueue()
    if isinstance(policy_name_or_instance, str):
        scheme = SingleQueue(policy=policy_name_or_instance)
        label = policy_name_or_instance
    else:
        label = policy_name_or_instance.name

        # Inject the custom policy by wrapping the installer.
        original_install = scheme.install

        def install_with_custom_policy(chip, rng):
            original_install(chip, rng)
            for dispatcher in chip.dispatchers:
                dispatcher.policy = policy_name_or_instance

        scheme.install = install_with_custom_policy

    system = RpcValetSystem(
        scheme, HerdWorkload(), costs=MicrobenchCosts.lean(), seed=11
    )
    result = system.run_point(offered_mrps=26.0, num_requests=20_000)
    print(
        f"  {label:<20} p99 = {result.p99:7.1f}ns   "
        f"tput = {result.point.achieved_throughput:.2f} MRPS"
    )


def main() -> None:
    print("HERD at 26 MRPS offered (≈90% load), 1x16 dispatch policies:")
    run("least_outstanding")
    run("round_robin")
    run("random")
    run(StickyAffinity())


if __name__ == "__main__":
    main()
