"""Canonical content hashing for cache keys.

Two fingerprints make up a cache key:

* :func:`fingerprint` — a canonical SHA-256 of an arbitrary task object
  graph. Unlike ``pickle`` bytes, the encoding is explicitly specified
  (type-tagged, dict/set entries sorted by their own canonical hash,
  floats hashed by IEEE-754 bits), so it is stable across processes,
  interpreter versions, and hash randomization.
* :func:`code_fingerprint` — a SHA-256 over the source bytes of every
  simulation-relevant module in the ``repro`` package. Any edit to the
  simulators, workloads, schemes, or metrics changes the fingerprint
  and therefore invalidates every cached result, without ever having
  to reason about which change was behaviorally relevant.

Objects that cannot be canonically encoded (open files, generators,
live RNGs) raise :class:`Unfingerprintable`; the runner treats such
tasks as uncacheable and simply computes them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import pathlib
import struct
from functools import lru_cache
from typing import Tuple

import numpy as np

__all__ = ["Unfingerprintable", "fingerprint", "code_fingerprint", "SIM_MODULES"]


class Unfingerprintable(TypeError):
    """Raised when an object graph has no canonical encoding."""


#: Subpackages (and files) of ``repro`` whose source participates in
#: the code fingerprint — everything that can change a simulated
#: result. Deliberately excluded: ``experiments`` (drivers/formatting),
#: ``runner`` (scheduling only; each task carries its own seed), and
#: ``cache`` itself (versioned via :data:`repro.cache.store.CACHE_VERSION`).
SIM_MODULES: Tuple[str, ...] = (
    "__init__.py",
    "arch",
    "balancing",
    "cluster",
    "core",
    "datacenter",
    "dists",
    "fastpath",
    "faults",
    "metrics",
    "popload",
    "queueing",
    "rack",
    "sim",
    "store",
    "telemetry",
    "tracing",
    "workloads",
)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the sim modules' source bytes (memoized per process)."""
    import repro

    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for name in SIM_MODULES:
        path = root / name
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for source in files:
            try:
                data = source.read_bytes()
            except OSError:  # pragma: no cover - racing editors
                continue
            digest.update(str(source.relative_to(root)).encode("utf-8"))
            digest.update(b"\x00")
            digest.update(data)
            digest.update(b"\x00")
    return digest.hexdigest()[:20]


def fingerprint(obj: object) -> str:
    """Canonical SHA-256 hex digest of an arbitrary object graph."""
    digest = hashlib.sha256()
    _encode(obj, digest.update, set())
    return digest.hexdigest()


def _sub_digest(obj: object, seen: set) -> bytes:
    """Digest of one sub-object (used to sort dict/set entries)."""
    digest = hashlib.sha256()
    _encode(obj, digest.update, seen)
    return digest.digest()


def _encode(obj: object, update, seen: set) -> None:  # noqa: C901 - a visitor
    if obj is None:
        update(b"n;")
        return
    if obj is True:
        update(b"b1;")
        return
    if obj is False:
        update(b"b0;")
        return
    kind = type(obj)
    if kind is int:
        update(b"i" + str(obj).encode("ascii") + b";")
        return
    if kind is float:
        # IEEE-754 bits: exact, distinguishes -0.0/0.0, stable for NaN.
        bits = struct.pack("<d", math.nan if math.isnan(obj) else obj)
        update(b"f" + bits)
        return
    if kind is str:
        data = obj.encode("utf-8")
        update(b"s%d:" % len(data) + data)
        return
    if kind is bytes:
        update(b"y%d:" % len(obj) + obj)
        return
    # Containers and everything else may recurse: guard against cycles.
    marker = id(obj)
    if marker in seen:
        raise Unfingerprintable(f"cyclic object graph at {type(obj).__name__}")
    seen.add(marker)
    try:
        if kind in (tuple, list):
            update(b"t(" if kind is tuple else b"l(")
            for item in obj:
                _encode(item, update, seen)
            update(b")")
        elif kind is dict:
            update(b"d(")
            entries = sorted(
                (_sub_digest(key, seen), key, value) for key, value in obj.items()
            )
            for _, key, value in entries:
                _encode(key, update, seen)
                _encode(value, update, seen)
            update(b")")
        elif kind in (set, frozenset):
            update(b"S(")
            for item_digest in sorted(_sub_digest(item, seen) for item in obj):
                update(item_digest)
            update(b")")
        elif isinstance(obj, np.ndarray):
            update(b"a")
            update(obj.dtype.str.encode("ascii"))
            update(repr(obj.shape).encode("ascii"))
            update(np.ascontiguousarray(obj).tobytes())
        elif isinstance(obj, np.generic):
            update(b"g")
            update(obj.dtype.str.encode("ascii"))
            update(obj.tobytes())
        elif isinstance(obj, type) or isinstance(obj, _function_types()):
            update(b"q" + _qualified_name(obj).encode("utf-8") + b";")
        elif dataclasses.is_dataclass(obj):
            update(b"D" + _qualified_name(type(obj)).encode("utf-8") + b"(")
            for field in dataclasses.fields(obj):
                update(field.name.encode("utf-8") + b"=")
                _encode(getattr(obj, field.name), update, seen)
            update(b")")
        else:
            _encode_instance(obj, update, seen)
    finally:
        seen.discard(marker)


@lru_cache(maxsize=1)
def _function_types() -> tuple:
    import types

    return (
        types.FunctionType,
        types.BuiltinFunctionType,
        types.MethodType,
    )


def _qualified_name(obj) -> str:
    module = getattr(obj, "__module__", "?")
    qualname = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(obj)))
    return f"{module}.{qualname}"


#: Types that have no canonical state worth hashing — caching a task
#: containing one would be unsound, so refuse loudly.
_REFUSED_MODULES = ("_io", "io", "socket", "threading", "multiprocessing")


def _encode_instance(obj: object, update, seen: set) -> None:
    """Encode an arbitrary instance by class identity + attribute state."""
    import types

    cls = type(obj)
    if cls.__module__.split(".")[0] in _REFUSED_MODULES or isinstance(
        obj, (types.GeneratorType, types.CoroutineType, np.random.Generator)
    ):
        raise Unfingerprintable(
            f"{cls.__module__}.{cls.__name__} has no canonical encoding"
        )
    update(b"O" + _qualified_name(cls).encode("utf-8") + b"(")
    state = {}
    if hasattr(obj, "__dict__"):
        state.update(obj.__dict__)
    for klass in cls.__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot in ("__dict__", "__weakref__") or slot in state:
                continue
            try:
                state[slot] = getattr(obj, slot)
            except AttributeError:
                continue
    if not state and not hasattr(obj, "__dict__"):
        # No attribute state at all (e.g. object()): fall back to repr,
        # which must at least be deterministic to be meaningful.
        text = repr(obj)
        if f"0x{id(obj):x}" in text:
            raise Unfingerprintable(
                f"{cls.__name__} has only an address-based repr"
            )
        update(text.encode("utf-8"))
    else:
        for name in sorted(state):
            update(name.encode("utf-8") + b"=")
            _encode(state[name], update, seen)
    update(b")")
