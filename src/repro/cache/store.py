"""The on-disk content-addressed result store.

Layout (under the cache root)::

    <root>/v<CACHE_VERSION>/
        points/<k[:2]>/<key>.pkl       one pickled CacheEntry per result
        durations/<dkey>.json          EWMA wall-clock per task label

Every write goes to a process/instance-unique temporary file in the
destination directory followed by :func:`os.replace`, so readers never
observe a partial file and concurrent writers (pool parents running in
parallel CI jobs, say) race benignly — last writer wins with an intact
file either way. A corrupt or truncated entry is treated as a miss,
deleted best-effort, and recomputed; the cache can never make a sweep
fail.

``CACHE_VERSION`` names the on-disk format. Bumping it orphans every
old entry (they live under the old ``v<N>/`` prefix) — that is the
versioned-invalidation story for format changes, while behavioral
changes are caught by the code fingerprint baked into each key (see
:mod:`repro.cache.fingerprint`).
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from .fingerprint import Unfingerprintable, code_fingerprint, fingerprint

__all__ = ["CACHE_VERSION", "CacheEntry", "CacheStats", "ResultCache"]

#: On-disk format version; bump to orphan all existing entries.
CACHE_VERSION = 1

#: EWMA smoothing for the per-label duration estimates.
_DURATION_ALPHA = 0.5

_tmp_counter = itertools.count()


@dataclass
class CacheStats:
    """Hit/miss telemetry for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Corrupt/unreadable entries and failed writes (all degraded, never raised).
    errors: int = 0
    #: Tasks whose config could not be canonically fingerprinted.
    uncacheable: int = 0
    #: Wall-clock seconds of compute the hits avoided (from stored entries).
    saved_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "uncacheable": self.uncacheable,
            "saved_s": round(self.saved_s, 3),
        }

    def merge(self, other: "CacheStats") -> "CacheStats":
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.errors += other.errors
        self.uncacheable += other.uncacheable
        self.saved_s += other.saved_s
        return self


@dataclass(frozen=True)
class CacheEntry:
    """The pickled payload of one cached result."""

    key: str
    value: Any
    #: Wall-clock seconds the original computation took.
    wall_s: float
    #: time.time() at store time (diagnostics only).
    stored_at: float = field(default=0.0)


class ResultCache:
    """Content-addressed result store rooted at one directory."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.dir = self.root / f"v{CACHE_VERSION}"
        self._points = self.dir / "points"
        self._durations = self.dir / "durations"
        self.stats = CacheStats()

    # -- keys -----------------------------------------------------------------

    def key_for(self, fn, task) -> Optional[str]:
        """Cache key of ``fn(task)`` — None when the task is uncacheable.

        The key covers the callable's identity, the full task config
        (including its seed), the sim-code fingerprint, and the cache
        format version. Engine tiers need no extra discriminator: each
        tier runs through its own task callable (e.g.
        ``_run_diurnal_task`` vs ``_run_diurnal_fast_task``), shaped
        arrival processes and calibrated chip profiles ride inside the
        task config, and the capability matrix itself lives in
        ``repro.fastpath`` source, which the code fingerprint covers.
        """
        try:
            return fingerprint(
                (
                    "repro-result",
                    CACHE_VERSION,
                    code_fingerprint(),
                    getattr(fn, "__module__", "?"),
                    getattr(fn, "__qualname__", repr(fn)),
                    task,
                )
            )
        except (Unfingerprintable, RecursionError):
            self.stats.uncacheable += 1
            return None

    def _entry_path(self, key: str) -> pathlib.Path:
        return self._points / key[:2] / f"{key}.pkl"

    # -- results --------------------------------------------------------------

    def lookup(self, key: str) -> Tuple[bool, Any, float]:
        """Return ``(hit, value, original_wall_s)`` for ``key``."""
        path = self._entry_path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return False, None, 0.0
        try:
            entry = pickle.loads(data)
            if not isinstance(entry, CacheEntry) or entry.key != key:
                raise ValueError("cache entry does not match its key")
        except Exception:  # noqa: BLE001 - any corruption degrades to a miss
            self.stats.errors += 1
            self.stats.misses += 1
            self._discard(path)
            return False, None, 0.0
        self.stats.hits += 1
        self.stats.saved_s += entry.wall_s
        return True, entry.value, entry.wall_s

    def store(self, key: str, value: Any, wall_s: float) -> bool:
        """Persist one result atomically; False (never raises) on failure."""
        entry = CacheEntry(
            key=key, value=value, wall_s=float(wall_s), stored_at=time.time()
        )
        try:
            payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - unpicklable results stay uncached
            self.stats.errors += 1
            return False
        if self._atomic_write(self._entry_path(key), payload):
            self.stats.stores += 1
            return True
        return False

    # -- duration sidecar ------------------------------------------------------

    def duration_key(self, fn, label: str) -> str:
        """Key of the wall-clock estimate for one task label.

        Deliberately coarser than the result key: it survives code
        changes and seed-preserving config tweaks, so a cold result
        cache can still schedule longest-expected-first from the
        previous run's timings.
        """
        return fingerprint(
            (
                "repro-duration",
                getattr(fn, "__module__", "?"),
                getattr(fn, "__qualname__", repr(fn)),
                str(label),
            )
        )[:32]

    def expected_duration(self, duration_key: str) -> Optional[float]:
        """EWMA wall-clock seconds for a duration key, if known."""
        path = self._durations / f"{duration_key}.json"
        try:
            payload = json.loads(path.read_text())
            value = float(payload["ewma_s"])
        except Exception:  # noqa: BLE001 - absent or corrupt: no estimate
            return None
        return value if value >= 0 else None

    def record_duration(self, duration_key: str, wall_s: float) -> None:
        """Fold one observed wall-clock into the EWMA estimate."""
        previous = self.expected_duration(duration_key)
        if previous is None:
            ewma = float(wall_s)
            samples = 1
        else:
            path = self._durations / f"{duration_key}.json"
            try:
                samples = int(json.loads(path.read_text()).get("samples", 1)) + 1
            except Exception:  # noqa: BLE001
                samples = 2
            ewma = _DURATION_ALPHA * float(wall_s) + (1 - _DURATION_ALPHA) * previous
        payload = json.dumps({"ewma_s": round(ewma, 6), "samples": samples})
        self._atomic_write(
            self._durations / f"{duration_key}.json", payload.encode("utf-8")
        )

    # -- plumbing --------------------------------------------------------------

    def _atomic_write(self, path: pathlib.Path, data: bytes) -> bool:
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{next(_tmp_counter)}.tmp"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            self.stats.errors += 1
            self._discard(tmp)
            return False
        return True

    @staticmethod
    def _discard(path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:
        return f"<ResultCache {self.dir} {self.stats.as_dict()}>"
