"""Content-addressed, on-disk result caching for sweep tasks.

Every sweep task in this repository is a pure function of its config
and seed (the determinism contract of :mod:`repro.runner`), which makes
results content-addressable: a canonical hash of *(callable, task
config, seed, sim-code fingerprint)* names the result forever. This
package stores those results on disk so re-running an experiment whose
inputs have not changed returns instantly — and any change to the sim
code, the config, or the seed naturally misses.

Control surface
---------------
* CLI: ``--cache`` / ``--no-cache`` / ``--cache-dir DIR`` on
  ``python -m repro.experiments``;
* environment: ``REPRO_CACHE=1`` (default directory), ``REPRO_CACHE=0``
  (off), or ``REPRO_CACHE=/path/to/dir`` (on, at that directory);
* API: :func:`set_cache` (process-wide override), or pass
  ``cache=True/False`` / a :class:`ResultCache` to
  :func:`repro.runner.map_points`.

The cache defaults to **off** so plain test/benchmark runs measure real
compute; opt in per run. ``repro.cache.cache_stats()`` aggregates
hit/miss/store/error counters across every cache instance the process
touched.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Optional, Union

from .fingerprint import Unfingerprintable, code_fingerprint, fingerprint
from .store import CACHE_VERSION, CacheEntry, CacheStats, ResultCache

__all__ = [
    "CACHE_VERSION",
    "ENV_CACHE",
    "CacheEntry",
    "CacheStats",
    "ResultCache",
    "Unfingerprintable",
    "cache_enabled",
    "cache_stats",
    "code_fingerprint",
    "default_cache_dir",
    "fingerprint",
    "get_cache",
    "resolve_cache",
    "set_cache",
]

#: Environment variable: "1"/"true" enables the default directory,
#: "0"/"false"/"" disables, anything else is a cache directory path.
ENV_CACHE = "REPRO_CACHE"

_FALSY = ("", "0", "false", "no", "off")
_TRUTHY = ("1", "true", "yes", "on")

#: Process-wide override installed by the CLI (None = env decides).
_ENABLED_OVERRIDE: Optional[bool] = None
_DIR_OVERRIDE: Optional[pathlib.Path] = None

#: One ResultCache per directory, so stats accumulate per location.
_INSTANCES: Dict[pathlib.Path, ResultCache] = {}


def set_cache(
    enabled: Optional[bool] = None, directory: Optional[Union[str, os.PathLike]] = None
) -> None:
    """Force caching on/off process-wide (None = env decides)."""
    global _ENABLED_OVERRIDE, _DIR_OVERRIDE
    _ENABLED_OVERRIDE = enabled
    _DIR_OVERRIDE = pathlib.Path(directory) if directory is not None else None


def cache_enabled() -> bool:
    """Effective cache switch: override, else ``REPRO_CACHE``."""
    if _ENABLED_OVERRIDE is not None:
        return _ENABLED_OVERRIDE
    raw = os.environ.get(ENV_CACHE, "").strip().lower()
    return raw not in _FALSY


def default_cache_dir() -> pathlib.Path:
    """Cache root: override, else a ``REPRO_CACHE`` path, else ~/.cache."""
    if _DIR_OVERRIDE is not None:
        return _DIR_OVERRIDE
    raw = os.environ.get(ENV_CACHE, "").strip()
    if raw and raw.lower() not in _FALSY and raw.lower() not in _TRUTHY:
        return pathlib.Path(raw)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return pathlib.Path(base) / "rpcvalet-repro"


def get_cache(directory: Optional[Union[str, os.PathLike]] = None) -> ResultCache:
    """The (per-process singleton) cache instance for a directory."""
    root = pathlib.Path(directory) if directory is not None else default_cache_dir()
    instance = _INSTANCES.get(root)
    if instance is None:
        instance = _INSTANCES[root] = ResultCache(root)
    return instance


def resolve_cache(
    cache: Union[None, bool, ResultCache] = None,
) -> Optional[ResultCache]:
    """Resolve a ``map_points``-style cache argument to an instance.

    ``None`` defers to :func:`set_cache` / ``REPRO_CACHE``; ``False``
    disables regardless; ``True`` enables at the configured directory;
    a :class:`ResultCache` is used as-is.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is False:
        return None
    if cache is None and not cache_enabled():
        return None
    return get_cache()


def cache_stats() -> CacheStats:
    """Aggregate stats over every cache instance this process touched."""
    total = CacheStats()
    for instance in _INSTANCES.values():
        total.merge(instance.stats)
    return total
