"""Protocol-level helpers: building send operations (§4.2).

The wire protocol itself is latency-modeled inside
:mod:`repro.arch.backend`; this module provides the sender-side
constructor that computes packetization (a message unrolls into
cache-block packets, each carrying the total message size in its
header so the receiving NI can detect completion).
"""

from __future__ import annotations

from typing import Optional

from .config import ChipConfig
from .packets import Replenish, SendMessage

__all__ = ["make_send", "make_replenish"]


def make_send(
    config: ChipConfig,
    msg_id: int,
    src_node: int,
    slot: int,
    size_bytes: int,
    service_ns: float,
    label: str = "rpc",
    recycle: Optional[SendMessage] = None,
) -> SendMessage:
    """Build a send operation, packetized per the chip's MTU.

    Oversized payloads (> ``max_msg_bytes``) are *not* rejected: the
    chip converts them to a rendezvous transfer on arrival (§4.2).
    When ``recycle`` is given (a completed message from the chip's
    pool), it is reset in place instead of allocating a new record.
    """
    if not 0 <= src_node < config.num_remote_nodes:
        raise ValueError(f"src_node {src_node!r} out of range")
    if not 0 <= slot < config.send_slots_per_node:
        raise ValueError(f"slot {slot!r} out of range")
    num_packets = config.packets_for(min(size_bytes, config.max_msg_bytes))
    if recycle is not None:
        return recycle.reset(
            msg_id=msg_id,
            src_node=src_node,
            slot=slot,
            size_bytes=size_bytes,
            num_packets=num_packets,
            service_ns=service_ns,
            label=label,
        )
    return SendMessage(
        msg_id=msg_id,
        src_node=src_node,
        slot=slot,
        size_bytes=size_bytes,
        num_packets=num_packets,
        service_ns=service_ns,
        label=label,
    )


def make_replenish(msg: SendMessage) -> Replenish:
    """Build the replenish credit for a consumed send (§4.2).

    The target send-buffer slot is "trivially deduced from the receive
    buffer index the corresponding send was retrieved from".
    """
    return Replenish(src_node=msg.src_node, slot=msg.slot, core_id=msg.core_id)
