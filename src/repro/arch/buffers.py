"""Messaging-domain buffer provisioning (§4.2, "Buffer provisioning").

A messaging domain over N nodes with S slots per node-pair allocates on
each node a *send buffer* (N×S bookkeeping slots, 32B each) and a
*receive buffer* (N×S payload slots of ``max_msg_size`` plus a 64B
counter block). The paper's footprint formula:

    32·N·S + (max_msg_size + 64)·N·S  bytes

This module implements the slot state machines (valid bits, packet
counters) and the footprint math. The architectural simulator tracks
slot occupancy through these classes so flow control (senders blocking
on exhausted slots) and buffer sizing experiments are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "MessagingDomain",
    "SendSlot",
    "ReceiveSlot",
    "SendBuffer",
    "ReceiveBuffer",
    "DynamicSlotAllocator",
    "SEND_SLOT_BYTES",
    "COUNTER_BLOCK_BYTES",
]

#: §4.2: each send slot holds a valid bit, payload pointer, and size —
#: the footprint formula charges 32 bytes per slot.
SEND_SLOT_BYTES = 32

#: §4.2: the per-receive-slot packet counter is overprovisioned to a
#: full 64B cache block "to avoid unaligned accesses".
COUNTER_BLOCK_BYTES = 64


@dataclass(frozen=True)
class MessagingDomain:
    """Static parameters of one messaging domain (§4.2).

    ``num_nodes`` (N), ``slots_per_node`` (S), and ``max_msg_bytes``
    are fixed at setup time; receive-slot addresses are then computable
    by every sender without coordination.
    """

    num_nodes: int
    slots_per_node: int
    max_msg_bytes: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes!r}")
        if self.slots_per_node < 1:
            raise ValueError(f"slots_per_node must be >= 1, got {self.slots_per_node!r}")
        if self.max_msg_bytes < 1:
            raise ValueError(f"max_msg_bytes must be >= 1, got {self.max_msg_bytes!r}")

    @property
    def total_slots(self) -> int:
        """N×S — slots in each of the send and receive buffers."""
        return self.num_nodes * self.slots_per_node

    @property
    def send_buffer_bytes(self) -> int:
        """32·N·S."""
        return SEND_SLOT_BYTES * self.total_slots

    @property
    def receive_buffer_bytes(self) -> int:
        """(max_msg_size + 64)·N·S."""
        return (self.max_msg_bytes + COUNTER_BLOCK_BYTES) * self.total_slots

    @property
    def footprint_bytes(self) -> int:
        """The paper's total per-node memory footprint formula."""
        return self.send_buffer_bytes + self.receive_buffer_bytes

    def receive_slot_index(self, node_index: int, slot: int) -> int:
        """Global receive-buffer slot index for (sender, slot)."""
        if not 0 <= node_index < self.num_nodes:
            raise ValueError(f"node_index {node_index!r} out of range")
        if not 0 <= slot < self.slots_per_node:
            raise ValueError(f"slot {slot!r} out of range")
        return node_index * self.slots_per_node + slot


class SendSlot:
    """Sender-side bookkeeping for one outstanding message (§4.2)."""

    __slots__ = ("valid", "payload_ptr", "size_bytes")

    def __init__(self) -> None:
        self.valid = False
        self.payload_ptr: Optional[int] = None
        self.size_bytes = 0

    def occupy(self, payload_ptr: int, size_bytes: int) -> None:
        if self.valid:
            raise RuntimeError("send slot already in use")
        self.valid = True
        self.payload_ptr = payload_ptr
        self.size_bytes = size_bytes

    def invalidate(self) -> None:
        """The replenish handler's action: reset the valid bit."""
        if not self.valid:
            raise RuntimeError("replenish for a free send slot")
        self.valid = False
        self.payload_ptr = None
        self.size_bytes = 0


class ReceiveSlot:
    """Receiver-side payload slot with its packet counter (§4.2)."""

    __slots__ = ("counter", "expected_packets", "busy")

    def __init__(self) -> None:
        self.counter = 0
        self.expected_packets = 0
        self.busy = False

    def begin_message(self, expected_packets: int) -> None:
        if self.busy:
            raise RuntimeError("receive slot already holds an in-flight message")
        if expected_packets <= 0:
            raise ValueError("expected_packets must be positive")
        self.busy = True
        self.counter = 0
        self.expected_packets = expected_packets

    def packet_arrived(self) -> bool:
        """NI fetch-and-increment; True when the message is complete."""
        if not self.busy:
            raise RuntimeError("packet for an idle receive slot")
        self.counter += 1
        if self.counter > self.expected_packets:
            raise RuntimeError("more packets than the message header declared")
        return self.counter == self.expected_packets

    def release(self) -> None:
        """Free the slot once the RPC has been processed."""
        if not self.busy:
            raise RuntimeError("releasing an idle receive slot")
        self.busy = False
        self.counter = 0
        self.expected_packets = 0


class _SlotBuffer:
    """Common slot-array behaviour with an occupancy high-water mark."""

    __slots__ = ("domain", "slots", "_occupied", "max_occupied", "occupancy_hist")

    def __init__(self, domain: MessagingDomain, slot_factory) -> None:
        self.domain = domain
        self.slots: List = [slot_factory() for _ in range(domain.total_slots)]
        self._occupied = 0
        self.max_occupied = 0
        #: Telemetry: occupancy histogram, installed by
        #: :func:`repro.telemetry.instrument_chip` (None = disabled).
        self.occupancy_hist = None

    def _note_occupy(self) -> None:
        self._occupied += 1
        if self._occupied > self.max_occupied:
            self.max_occupied = self._occupied
        hist = self.occupancy_hist
        if hist is not None:
            hist.record(self._occupied)

    def _note_release(self) -> None:
        self._occupied -= 1

    @property
    def occupied(self) -> int:
        return self._occupied


class SendBuffer(_SlotBuffer):
    """A node's N×S send slots, indexed by (destination node, slot)."""

    __slots__ = ()

    def __init__(self, domain: MessagingDomain) -> None:
        super().__init__(domain, SendSlot)

    def occupy(self, node_index: int, slot: int, payload_ptr: int, size_bytes: int) -> None:
        index = self.domain.receive_slot_index(node_index, slot)
        self.slots[index].occupy(payload_ptr, size_bytes)
        self._note_occupy()

    def replenish(self, node_index: int, slot: int) -> None:
        index = self.domain.receive_slot_index(node_index, slot)
        self.slots[index].invalidate()
        self._note_release()

    def is_valid(self, node_index: int, slot: int) -> bool:
        return self.slots[self.domain.receive_slot_index(node_index, slot)].valid


class ReceiveBuffer(_SlotBuffer):
    """A node's N×S receive slots, indexed by (source node, slot)."""

    __slots__ = ()

    def __init__(self, domain: MessagingDomain) -> None:
        super().__init__(domain, ReceiveSlot)

    def begin_message(self, node_index: int, slot: int, expected_packets: int) -> int:
        return self.begin_at(
            self.domain.receive_slot_index(node_index, slot), expected_packets
        )

    def begin_at(self, index: int, expected_packets: int) -> int:
        """Start reassembly at a pre-computed global slot index.

        Used by the dynamic slot allocator (§4.2 extension), which hands
        out arbitrary free indices instead of (sender, slot) pairs.
        """
        if not 0 <= index < len(self.slots):
            raise ValueError(f"slot index {index!r} out of range")
        self.slots[index].begin_message(expected_packets)
        self._note_occupy()
        return index

    def packet_arrived(self, index: int) -> bool:
        return self.slots[index].packet_arrived()

    def release(self, index: int) -> None:
        self.slots[index].release()
        self._note_release()


class DynamicSlotAllocator:
    """Shared free-list slot allocation (§4.2's future-work extension).

    The paper's static provisioning reserves S slots per node pair —
    32·N·S + (max_msg+64)·N·S bytes even when most node pairs are
    idle. "Dynamic buffer management mechanisms to reduce memory
    footprint are possible, but beyond the scope of this paper."

    This allocator implements the obvious such mechanism: a single pool
    of ``pool_size`` receive slots shared by all senders, handed out on
    demand and returned on replenish. The traffic generator's dynamic
    mode uses it (``slot_policy="dynamic"``); the pooled-vs-static
    footprint trade-off is measured in benchmarks/bench_extensions.py.
    """

    __slots__ = (
        "pool_size",
        "max_msg_bytes",
        "_free",
        "max_in_use",
        "failed_allocations",
    )

    def __init__(self, pool_size: int, max_msg_bytes: int) -> None:
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size!r}")
        if max_msg_bytes <= 0:
            raise ValueError(f"max_msg_bytes must be positive, got {max_msg_bytes!r}")
        self.pool_size = pool_size
        self.max_msg_bytes = max_msg_bytes
        self._free: List[int] = list(range(pool_size - 1, -1, -1))
        self.max_in_use = 0
        self.failed_allocations = 0

    @property
    def in_use(self) -> int:
        return self.pool_size - len(self._free)

    @property
    def footprint_bytes(self) -> int:
        """Receive-side memory: pool_size slots instead of N·S."""
        return (self.max_msg_bytes + COUNTER_BLOCK_BYTES) * self.pool_size

    def allocate(self) -> Optional[int]:
        """Return a free slot index, or None when the pool is exhausted."""
        if not self._free:
            self.failed_allocations += 1
            return None
        index = self._free.pop()
        if self.in_use > self.max_in_use:
            self.max_in_use = self.in_use
        return index

    def release(self, index: int) -> None:
        """Return a slot to the pool."""
        if not 0 <= index < self.pool_size:
            raise ValueError(f"slot index {index!r} out of range")
        if index in self._free:
            raise RuntimeError(f"slot {index} released twice")
        self._free.append(index)
