"""CPU cores running the RPC-handling loop (§5, "Microbenchmark").

Each core executes the paper's per-RPC loop: spin on the private CQ,
process the request (the emulated service time), send the reply, and
post the replenish. A :class:`CoreProgram` supplies the cost
decomposition so different applications (the microbenchmark, the
execution-driven KV store in :mod:`repro.store`) can run on the same
core model.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from .packets import SendMessage
from .qp import QueuePair

if TYPE_CHECKING:  # pragma: no cover
    from .chip import Chip

__all__ = ["Core", "CoreProgram"]


class CoreProgram(abc.ABC):
    """Cost decomposition of one RPC on a core.

    Total core occupancy per request is
    ``pre_ns + msg.service_ns + post_ns``:

    * ``pre_ns`` — from CQE visibility to the start of the RPC proper
      (poll-loop detection + reading the request from the receive slot);
    * ``msg.service_ns`` — the RPC's processing time (workload-defined);
    * ``post_ns`` — reply ``send`` issue + ``replenish`` issue.
    """

    @abc.abstractmethod
    def pre_ns(self, msg: SendMessage) -> float:
        """Cost before the RPC's own processing starts."""

    @abc.abstractmethod
    def post_ns(self, msg: SendMessage) -> float:
        """Cost after processing, through posting the replenish."""

    def reply_size_bytes(self, msg: SendMessage) -> int:
        """Size of the RPC reply payload (paper microbenchmark: 512B)."""
        return 512


class Core:
    """One CPU core spinning on its private CQ."""

    def __init__(self, chip: "Chip", core_id: int, program: CoreProgram) -> None:
        self.chip = chip
        self.core_id = core_id
        self.program = program
        self.qp = QueuePair(chip.env, core_id)
        #: Observability: processed count and busy time (for utilization).
        self.processed = 0
        self.busy_ns = 0.0
        chip.env.process(self._run(), name=f"core{core_id}")

    @property
    def utilization_of(self) -> float:
        """Busy fraction of elapsed simulated time."""
        now = self.chip.env.now
        return self.busy_ns / now if now > 0 else 0.0

    def _run(self):
        env = self.chip.env
        chip = self.chip
        program = self.program
        while True:
            msg: SendMessage = yield self.qp.cq.get()
            pre = program.pre_ns(msg) + msg.extra_pre_ns
            if chip.interference is not None:
                # §3.2 tail-inducing events: stall before the RPC runs.
                pre += chip.interference.pause_ns(
                    self.core_id, env.now, chip._interference_rng
                )
            post = program.post_ns(msg) + chip.per_request_core_overhead_ns
            msg.t_start = env.now + pre
            occupancy = pre + msg.service_ns + post
            yield env.timeout(occupancy)
            msg.t_replenish = env.now
            msg.core_id = self.core_id
            self.processed += 1
            self.busy_ns += occupancy
            chip.complete_request(msg, self)
