"""Chip and NI latency parameters (paper Table 1 + §4).

All latency constants are expressed in nanoseconds. Cycle counts from
Table 1 convert at the table's 2GHz clock (0.5ns/cycle). The constants
an experiment actually exercises are:

* mesh hop latency — NI backend → dispatcher → core frontend indirection
  (§4.3: "a couple of on-chip interconnect hops, adding just a few ns");
* backend packet handling — soNUMA unrolls a message into cache-block
  packets; each costs a pipeline slot at the receiving NI backend;
* dispatch cost — the Dispatch pipeline stage's decision time;
* CQE delivery — the frontend writing into the core's cacheable CQ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["ChipConfig", "cycles_to_ns", "DEFAULT_CONFIG"]


def cycles_to_ns(cycles: float, clock_ghz: float = 2.0) -> float:
    """Convert core cycles to nanoseconds at the given clock."""
    if clock_ghz <= 0:
        raise ValueError(f"clock must be positive, got {clock_ghz!r}")
    return cycles / clock_ghz


@dataclass(frozen=True)
class ChipConfig:
    """Parameters of the modeled 16-core soNUMA chip (Table 1).

    The defaults reproduce the paper's platform: a tiled 4×4 mesh of
    ARM-class cores at 2GHz, 64-byte cache blocks, four NI backends at
    the mesh edge (one per row, per the Manycore NI architecture
    [Daglis et al., ISCA'15]), and a 200-node messaging domain.
    """

    # --- chip geometry (Table 1) -----------------------------------------
    num_cores: int = 16
    mesh_rows: int = 4
    mesh_cols: int = 4
    clock_ghz: float = 2.0
    mesh_hop_cycles: int = 3
    cache_block_bytes: int = 64

    # --- memory hierarchy (Table 1), folded into fixed access costs -------
    l1_latency_ns: float = cycles_to_ns(3)
    llc_latency_ns: float = cycles_to_ns(6)
    memory_latency_ns: float = 50.0

    # --- NI organization (§4.1) ------------------------------------------
    num_backends: int = 4
    #: Fixed Remote Request Processing pipeline latency per message
    #: (header decode, counter fetch-and-increment, completion check).
    backend_fixed_ns: float = 6.0
    #: Per 64B-packet handling cost at a backend (link + memory write).
    backend_per_packet_ns: float = 3.0
    #: Dispatch pipeline stage decision cost (§4.3/§4.4), serialized at
    #: the NI dispatcher.
    dispatch_ns: float = 2.0
    #: Frontend writing a CQE into the core's (cacheable) private CQ.
    cqe_write_ns: float = 6.0

    # --- cluster / messaging domain (§5) ----------------------------------
    num_nodes: int = 200
    send_slots_per_node: int = 32
    max_msg_bytes: int = 2048
    #: One-way wire latency between nodes; only affects send-slot
    #: recycling (request latency is measured from NI arrival).
    wire_latency_ns: float = 100.0

    # --- model switches ----------------------------------------------------
    #: Charge outgoing reply packets to backend pipeline occupancy.
    model_reply_egress: bool = True

    def __post_init__(self) -> None:
        if self.num_cores != self.mesh_rows * self.mesh_cols:
            raise ValueError(
                f"num_cores ({self.num_cores}) must equal mesh_rows*mesh_cols "
                f"({self.mesh_rows}x{self.mesh_cols})"
            )
        if self.num_backends <= 0 or self.num_backends > self.num_cores:
            raise ValueError(f"invalid num_backends {self.num_backends!r}")
        if self.num_nodes < 2:
            raise ValueError("need at least two nodes (one remote sender)")
        if self.send_slots_per_node <= 0:
            raise ValueError("send_slots_per_node must be positive")
        if self.cache_block_bytes <= 0:
            raise ValueError("cache_block_bytes must be positive")
        if self.max_msg_bytes < self.cache_block_bytes:
            raise ValueError("max_msg_bytes must hold at least one block")
        for name in (
            "backend_fixed_ns",
            "backend_per_packet_ns",
            "dispatch_ns",
            "cqe_write_ns",
            "wire_latency_ns",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # --- derived quantities -------------------------------------------------

    @property
    def mesh_hop_ns(self) -> float:
        """Latency of one mesh hop."""
        return cycles_to_ns(self.mesh_hop_cycles, self.clock_ghz)

    @property
    def num_remote_nodes(self) -> int:
        """Number of nodes that can send to the modeled chip."""
        return self.num_nodes - 1

    def packets_for(self, size_bytes: int) -> int:
        """Number of cache-block packets a message of this size unrolls to."""
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes!r}")
        return math.ceil(size_bytes / self.cache_block_bytes)

    def with_updates(self, **changes) -> "ChipConfig":
        """Functional update, e.g. ``config.with_updates(num_backends=8)``."""
        return replace(self, **changes)


#: The paper's evaluation platform.
DEFAULT_CONFIG = ChipConfig()
