"""soNUMA + Manycore NI architectural substrate (paper §3–§5)."""

from .backend import NIBackend
from .buffers import (
    COUNTER_BLOCK_BYTES,
    DynamicSlotAllocator,
    MessagingDomain,
    ReceiveBuffer,
    ReceiveSlot,
    SEND_SLOT_BYTES,
    SendBuffer,
    SendSlot,
)
from .chip import Chip, ChipStats
from .config import ChipConfig, DEFAULT_CONFIG, cycles_to_ns
from .cpu import Core, CoreProgram
from .frontend import NIFrontend
from .interference import InterferenceModel, PeriodicStragglers, RandomStalls
from .mesh import Mesh
from .onesided import OneSidedCompletion, OneSidedEngine
from .packets import OneSidedWrite, Replenish, SendMessage
from .protocol import make_replenish, make_send
from .qp import CompletionQueueEntry, QueuePair, WorkQueueEntry

__all__ = [
    "Chip",
    "ChipStats",
    "ChipConfig",
    "DEFAULT_CONFIG",
    "cycles_to_ns",
    "Mesh",
    "OneSidedEngine",
    "OneSidedCompletion",
    "Core",
    "CoreProgram",
    "NIFrontend",
    "InterferenceModel",
    "PeriodicStragglers",
    "RandomStalls",
    "NIBackend",
    "QueuePair",
    "WorkQueueEntry",
    "CompletionQueueEntry",
    "SendMessage",
    "Replenish",
    "OneSidedWrite",
    "make_send",
    "make_replenish",
    "MessagingDomain",
    "SendBuffer",
    "ReceiveBuffer",
    "SendSlot",
    "ReceiveSlot",
    "SEND_SLOT_BYTES",
    "DynamicSlotAllocator",
    "COUNTER_BLOCK_BYTES",
]
