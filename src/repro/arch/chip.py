"""The modeled soNUMA chip: cores, frontends, backends, buffers (§4/§5).

:class:`Chip` wires the pieces together and provides the two entry
points the rest of the system uses:

* :meth:`submit_message` — a send message arrives from the network
  (called by the traffic generator at the message's NI arrival time);
* :meth:`complete_request` — a core finished an RPC and posted its
  replenish (called by :class:`repro.arch.cpu.Core`).

The chip is balancing-scheme agnostic: a scheme (from
:mod:`repro.balancing`) installs one or more dispatcher objects and a
message→group spray before the simulation starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..metrics import LatencyRecorder
from ..sim import Environment, RngRegistry, delayed_call
from .backend import NIBackend
from .buffers import MessagingDomain, ReceiveBuffer
from .config import ChipConfig
from .cpu import Core, CoreProgram
from .frontend import NIFrontend
from .mesh import Mesh
from .packets import OneSidedWrite, SendMessage
from .protocol import make_send

__all__ = ["Chip", "ChipStats"]


@dataclass
class ChipStats:
    """Counters accumulated over one simulation run."""

    submitted: int = 0
    completed: int = 0
    rendezvous_messages: int = 0
    onesided_ops: int = 0
    #: Sum of per-request core occupancy; ``/ completed`` gives S̄.
    occupancy_sum_ns: float = 0.0

    @property
    def mean_service_ns(self) -> float:
        """Measured mean service time S̄ (core occupancy per request)."""
        if self.completed == 0:
            return float("nan")
        return self.occupancy_sum_ns / self.completed


class Chip:
    """A 16-core soNUMA chip with a Manycore NI."""

    def __init__(
        self,
        env: Environment,
        config: ChipConfig,
        program: CoreProgram,
        rngs: RngRegistry,
    ) -> None:
        self.env = env
        self.config = config
        self.program = program
        self.mesh = Mesh(config)
        self.domain = MessagingDomain(
            num_nodes=config.num_remote_nodes,
            slots_per_node=config.send_slots_per_node,
            max_msg_bytes=config.max_msg_bytes,
        )
        self.receive_buffer = ReceiveBuffer(self.domain)
        self.cores: List[Core] = [
            Core(self, core_id, program) for core_id in range(config.num_cores)
        ]
        self.frontends: List[NIFrontend] = [
            NIFrontend(self, core.core_id, core.qp) for core in self.cores
        ]
        self.backends: List[NIBackend] = [
            NIBackend(self, backend_id) for backend_id in range(config.num_backends)
        ]
        #: Installed by a balancing scheme before the run starts.
        self.dispatchers: List = []
        #: Extra per-request core occupancy imposed by the scheme
        #: (software dequeue cost; zero for hardware dispatch).
        self.per_request_core_overhead_ns: float = 0.0
        #: Called (with the completed message) one wire latency after
        #: the replenish leaves, so the traffic source can recycle the
        #: send slot; installed by the traffic generator.
        self.on_slot_replenished: Optional[Callable[[SendMessage], None]] = None
        #: Optional message→group mapping replacing the uniform spray
        #: (used by RSS-style per-source hashing).
        self.group_spray_override: Optional[Callable[[SendMessage], int]] = None

        self.recorder = LatencyRecorder()
        self.stats = ChipStats()
        self._spray_rng = rngs.stream("group_spray")
        self._next_onesided = 0
        #: When set to a list, completed messages are appended to it
        #: (for per-stage latency breakdowns; off by default to keep
        #: memory flat on long runs).
        self.completed_messages: Optional[List[SendMessage]] = None
        #: Optional §3.2 interference injection (stragglers, TLB-style
        #: stalls); consulted by cores at each request pickup.
        self.interference = None
        self._interference_rng = rngs.stream("interference")
        #: Telemetry hub, set by :func:`repro.telemetry.instrument_chip`
        #: (None = telemetry disabled; instrumented sites stay no-ops).
        self.telemetry = None
        #: Recycled SendMessage records (see :meth:`make_send`); only
        #: populated while ``completed_messages`` is None, because a
        #: kept message must never be reset under the keeper.
        self._message_pool: List[SendMessage] = []

    # -- scheme installation ---------------------------------------------------

    def install_dispatchers(
        self, dispatchers: List, core_overhead_ns: float = 0.0
    ) -> None:
        """Install the balancing scheme's dispatcher objects."""
        if not dispatchers:
            raise ValueError("need at least one dispatcher")
        self.dispatchers = list(dispatchers)
        self.per_request_core_overhead_ns = core_overhead_ns

    # -- network-facing entry points ------------------------------------------

    def make_send(
        self,
        msg_id: int,
        src_node: int,
        slot: int,
        size_bytes: int,
        service_ns: float,
        label: str = "rpc",
    ) -> SendMessage:
        """Build a send operation, recycling a completed record if any.

        Same contract as :func:`repro.arch.protocol.make_send`; traffic
        sources go through this so one pool of ~max-in-flight message
        records serves the whole run instead of one allocation per RPC.
        """
        pool = self._message_pool
        return make_send(
            self.config,
            msg_id=msg_id,
            src_node=src_node,
            slot=slot,
            size_bytes=size_bytes,
            service_ns=service_ns,
            label=label,
            recycle=pool.pop() if pool else None,
        )

    def submit_message(self, msg: SendMessage) -> None:
        """A send message reaches the chip's NI (time = ``env.now``).

        Steers the message to an NI backend (by receive-slot
        interleaving), starts reassembly bookkeeping, and sprays it to
        a balancing group.
        """
        if not self.dispatchers:
            raise RuntimeError("no balancing scheme installed")
        config = self.config
        msg.t_arrival = self.env.now
        if msg.size_bytes > config.max_msg_bytes:
            # §4.2 rendezvous: the send carries a descriptor; the
            # receiver pulls the payload with a one-sided read before
            # processing. The fetch costs a round trip plus the payload
            # transfer through a backend.
            payload_packets = config.packets_for(msg.size_bytes)
            msg.rendezvous = True
            msg.num_packets = 1
            msg.extra_pre_ns = (
                2.0 * config.wire_latency_ns
                + payload_packets * config.backend_per_packet_ns
            )
            self.stats.rendezvous_messages += 1
        if msg.receive_slot < 0:
            # Static provisioning: the sender-computed (src, slot) pair
            # addresses the receive buffer directly (§4.2).
            msg.receive_slot = self.domain.receive_slot_index(
                msg.src_node, msg.slot
            )
        self.receive_buffer.begin_at(msg.receive_slot, msg.num_packets)
        # Messages spread across the replicated backends (the Manycore
        # NI handles network packets in parallel, §4.3); slot-index
        # interleaving degenerates because slot indices are multiples
        # of S, so spread by message id instead.
        msg.backend_id = msg.msg_id % config.num_backends
        if self.group_spray_override is not None:
            msg.group_id = self.group_spray_override(msg)
        elif len(self.dispatchers) == 1:
            msg.group_id = 0
        else:
            msg.group_id = int(self._spray_rng.integers(0, len(self.dispatchers)))
        self.stats.submitted += 1
        self.backends[msg.backend_id].receive_message(msg)

    def submit_onesided(self, size_bytes: int, src_node: int = 0) -> OneSidedWrite:
        """A plain one-sided write arrives: handled by a backend only.

        Never reaches a dispatcher — the §3.3 property that one-sided
        ops produce no CPU notification.
        """
        op = OneSidedWrite(
            op_id=self._next_onesided,
            src_node=src_node,
            size_bytes=size_bytes,
            num_packets=self.config.packets_for(size_bytes),
        )
        self._next_onesided += 1
        self.stats.onesided_ops += 1
        backend = self.backends[op.op_id % self.config.num_backends]
        backend.receive_onesided(op)
        return op

    # -- completion path ----------------------------------------------------------

    def complete_request(self, msg: SendMessage, core: Core) -> None:
        """Core posted the replenish for ``msg`` at ``env.now`` (§4.2)."""
        config = self.config
        self.stats.completed += 1
        # Core occupancy = everything between CQE pickup and replenish;
        # reconstruct it from the (t_start - pre) .. t_replenish window.
        occupancy = (
            msg.t_replenish
            - msg.t_start
            + self.program.pre_ns(msg)
            + msg.extra_pre_ns
        )
        self.stats.occupancy_sum_ns += occupancy
        self.recorder.record(msg.t_replenish, msg.latency_ns, msg.label)
        if self.completed_messages is not None:
            self.completed_messages.append(msg)

        # 1. Replenish propagates to the dispatcher that issued the RPC.
        self.frontends[core.core_id].propagate_replenish(msg)
        # 2. The receive slot frees once the RPC is processed.
        self.receive_buffer.release(msg.receive_slot)
        # 3. The reply (512B send) leaves through this core's nearest
        #    backend, consuming egress pipeline occupancy.
        if config.model_reply_egress:
            reply_packets = config.packets_for(self.program.reply_size_bytes(msg))
            backend_id = self._nearest_backend(core.core_id)
            self.backends[backend_id].send_reply(reply_packets)
        # 4. The replenish packet reaches the source node one wire
        #    latency later and frees the sender's send slot. The record
        #    is recycled once that callback (the last reader) has run.
        if self.on_slot_replenished is not None:
            delayed_call(
                self.env,
                config.wire_latency_ns,
                self._replenish_arrived,
                msg,
            )
        elif self.completed_messages is None:
            self._message_pool.append(msg)

    def _replenish_arrived(self, msg: SendMessage) -> None:
        self.on_slot_replenished(msg)
        if self.completed_messages is None:
            self._message_pool.append(msg)

    def _nearest_backend(self, core_id: int) -> int:
        row = core_id // self.config.mesh_cols
        return row * self.config.num_backends // self.config.mesh_rows

    # -- observability -----------------------------------------------------------

    @property
    def total_cqe_depth_high_water(self) -> int:
        """Max private-CQ depth observed across cores."""
        return max(core.qp.max_cq_depth for core in self.cores)

    def core_utilizations(self) -> np.ndarray:
        """Busy fraction per core over the elapsed simulated time."""
        return np.array([core.utilization_of for core in self.cores])
