"""Outbound one-sided operations: the soNUMA baseline the paper extends.

soNUMA's native primitives are one-sided remote reads and writes
(§3.1/§3.3): a core posts a WQE, the NI unrolls the request into
cache-block packets, the remote NI services them against its memory
hierarchy *without involving a remote CPU*, and the local NI posts a
CQE on completion. RPCValet's messaging is layered on top; this module
models the baseline itself so client-side code (examples, the
rendezvous fetch, latency studies) can issue reads/writes with faithful
round-trip costs.

Latency model for an op of P payload packets:

    wqe_issue (core-side cost, charged by the caller)
  + local backend pipeline (fixed + P·per_packet for writes, header for reads)
  + wire (one way)
  + remote NI pipeline (fixed + P·per_packet) + memory access
  + wire (back)
  + local backend pipeline for the response payload (reads)
  + CQE write at the core's frontend

With the default ChipConfig this lands a 64B remote read at ≈300ns —
the sub-µs remote access soNUMA reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from .chip import Chip

__all__ = ["OneSidedEngine", "OneSidedCompletion"]


class OneSidedCompletion:
    """Result of a completed one-sided operation."""

    __slots__ = ("op", "size_bytes", "issued_at", "completed_at")

    def __init__(self, op: str, size_bytes: int, issued_at: float, completed_at: float) -> None:
        self.op = op
        self.size_bytes = size_bytes
        self.issued_at = issued_at
        self.completed_at = completed_at

    @property
    def latency_ns(self) -> float:
        return self.completed_at - self.issued_at

    def __repr__(self) -> str:
        return f"<OneSidedCompletion {self.op} {self.size_bytes}B {self.latency_ns:.1f}ns>"


class OneSidedEngine:
    """Issues one-sided reads/writes from a chip to remote memory."""

    #: Remote-end memory access folded into the round trip; one DRAM
    #: access regardless of payload (the NI pipelines the block reads).
    _HEADER_PACKETS = 1

    def __init__(self, chip: "Chip") -> None:
        self.chip = chip
        self.reads_issued = 0
        self.writes_issued = 0

    def _pipeline_ns(self, packets: int) -> float:
        config = self.chip.config
        return config.backend_fixed_ns + packets * config.backend_per_packet_ns

    def round_trip_ns(self, op: str, size_bytes: int, core_id: int) -> float:
        """Deterministic round-trip latency for an op (excl. WQE issue)."""
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        config = self.chip.config
        payload_packets = config.packets_for(size_bytes)
        request_packets = (
            self._HEADER_PACKETS if op == "read" else payload_packets
        )
        response_packets = (
            payload_packets if op == "read" else self._HEADER_PACKETS
        )
        backend_id = self.chip._nearest_backend(core_id)
        frontend_to_backend = self.chip.mesh.core_to_backend_ns(
            core_id, backend_id
        )
        return (
            frontend_to_backend
            + self._pipeline_ns(request_packets)  # local egress
            + config.wire_latency_ns
            # The remote NI moves the full payload regardless of
            # direction: it either absorbs the write's packets or
            # streams the read's response blocks out of memory.
            + self._pipeline_ns(payload_packets)  # remote pipeline
            + config.memory_latency_ns  # remote memory access
            + config.wire_latency_ns
            + self._pipeline_ns(response_packets)  # local ingress
            + frontend_to_backend
            + config.cqe_write_ns
        )

    def issue(self, op: str, size_bytes: int, core_id: int = 0) -> Event:
        """Issue an op; the returned event fires with its completion.

        The local backend is *occupied* for the packet-handling parts
        (so heavy one-sided traffic competes with messaging ingress, as
        on the real NI); wire and remote time are pure latency.
        """
        env = self.chip.env
        done = env.event()
        issued_at = env.now
        config = self.chip.config
        payload_packets = config.packets_for(size_bytes)
        if op == "read":
            self.reads_issued += 1
            local_packets = payload_packets  # response payload lands here
        elif op == "write":
            self.writes_issued += 1
            local_packets = payload_packets  # request payload leaves here
        else:
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")

        total_ns = self.round_trip_ns(op, size_bytes, core_id)
        backend = self.chip.backends[self.chip._nearest_backend(core_id)]

        def complete():
            done.succeed(
                OneSidedCompletion(op, size_bytes, issued_at, env.now)
            )

        def op_process():
            # Charge the local backend for the payload's packets, then
            # let the rest of the round trip elapse as pure latency.
            backend.occupy_pipeline(local_packets)
            yield env.timeout(total_ns)
            complete()

        env.process(op_process(), name=f"onesided-{op}")
        return done
