"""Core interference injection (§3.2's tail-inducing events).

"Unpredictable tail-inducing events for these short-lived RPCs often
disrupt application execution for periods of time that are comparable
to the RPCs themselves. For example, the extra latency imposed by TLB
misses or context switches spans from a few hundred ns to a few µs."

These models inject exactly such disruptions into simulated cores so
experiments can measure how each balancing scheme *absorbs* them —
RPCValet's motivating scenario ("While this core is stalled ... it is
best to dispatch RPCs to other available cores"). A stalled core under
RPCValet holds at most its threshold's worth of RPCs; under 16×1 the
static hash keeps feeding it.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

__all__ = ["InterferenceModel", "PeriodicStragglers", "RandomStalls"]


class InterferenceModel(abc.ABC):
    """Per-core execution disruptions."""

    @abc.abstractmethod
    def pause_ns(
        self, core_id: int, now_ns: float, rng: np.random.Generator
    ) -> float:
        """Extra stall to charge the core before its next RPC.

        Called once per request pickup; returns 0 when the core is
        currently unaffected.
        """


class PeriodicStragglers(InterferenceModel):
    """Selected cores stall for ``pause_ns`` every ``period_ns``.

    Models a recurring disruption pinned to specific cores — e.g. a
    core sharing its SMT sibling with a batch job, or periodic
    housekeeping (§ 3.2's interference class with a deterministic
    cadence).
    """

    def __init__(
        self,
        core_ids: Sequence[int],
        period_ns: float,
        pause_ns: float,
    ) -> None:
        if period_ns <= 0 or pause_ns <= 0:
            raise ValueError("period and pause must be positive")
        if not core_ids:
            raise ValueError("need at least one straggler core")
        self.core_ids = frozenset(int(core) for core in core_ids)
        self.period_ns = float(period_ns)
        self.pause_ns_value = float(pause_ns)
        self._next_pause = {core: period_ns for core in self.core_ids}

    def pause_ns(self, core_id, now_ns, rng):
        if core_id not in self.core_ids:
            return 0.0
        if now_ns < self._next_pause[core_id]:
            return 0.0
        self._next_pause[core_id] = now_ns + self.period_ns
        return self.pause_ns_value

    @property
    def degradation(self) -> float:
        """Fraction of an affected core's time lost to stalls."""
        return self.pause_ns_value / (self.pause_ns_value + self.period_ns)


class RandomStalls(InterferenceModel):
    """Every core suffers i.i.d. random stalls (TLB misses, interrupts).

    Each request pickup has probability ``probability`` of paying an
    exponentially distributed stall with mean ``mean_pause_ns`` — the
    memoryless version of §3.2's few-hundred-ns-to-few-µs events.
    """

    def __init__(
        self,
        probability: float,
        mean_pause_ns: float,
        core_ids: Optional[Sequence[int]] = None,
    ) -> None:
        if not 0 < probability <= 1:
            raise ValueError(f"probability must be in (0,1], got {probability!r}")
        if mean_pause_ns <= 0:
            raise ValueError(f"mean_pause_ns must be positive, got {mean_pause_ns!r}")
        self.probability = probability
        self.mean_pause_ns = mean_pause_ns
        self.core_ids = (
            frozenset(int(core) for core in core_ids)
            if core_ids is not None
            else None
        )

    def pause_ns(self, core_id, now_ns, rng):
        if self.core_ids is not None and core_id not in self.core_ids:
            return 0.0
        if rng.uniform() >= self.probability:
            return 0.0
        return float(rng.exponential(self.mean_pause_ns))
