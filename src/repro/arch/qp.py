"""Queue pairs: the VIA-style CPU↔NI interface (§3.1).

Each core owns one QP: a Work Queue the core writes WQEs into and a
Completion Queue the NI writes CQEs into. In the simulator the CQ is
the core's private request inbox (the object the paper's step 8 writes
into); the WQ exists for API completeness — the microbenchmark folds
WQE-write costs into its per-request issue costs, but examples and
tests exercise the WQ path explicitly.
"""

from __future__ import annotations

from typing import Any

from ..sim import Environment, Store

__all__ = ["QueuePair", "WorkQueueEntry", "CompletionQueueEntry"]


class WorkQueueEntry:
    """A WQE: one command the core posts to the NI."""

    __slots__ = ("op", "payload")

    def __init__(self, op: str, payload: Any = None) -> None:
        if op not in ("send", "replenish", "read", "write"):
            raise ValueError(f"unknown WQ operation {op!r}")
        self.op = op
        self.payload = payload

    def __repr__(self) -> str:
        return f"<WQE {self.op}>"


class CompletionQueueEntry:
    """A CQE: one notification the NI writes for the core."""

    __slots__ = ("kind", "payload")

    def __init__(self, kind: str, payload: Any = None) -> None:
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:
        return f"<CQE {self.kind}>"


class QueuePair:
    """One core's private WQ/CQ pair.

    The CQ is unbounded: under the paper's 16×1 configuration all
    queueing happens here, and under RPCValet the dispatcher's
    outstanding-limit (not the CQ capacity) bounds its depth — which
    tests assert.
    """

    __slots__ = ("core_id", "wq", "cq", "max_cq_depth", "depth_hist")

    def __init__(self, env: Environment, core_id: int) -> None:
        self.core_id = core_id
        self.wq: Store = Store(env)
        self.cq: Store = Store(env)
        #: High-water mark of CQ depth, for the single-queue invariant.
        self.max_cq_depth = 0
        #: Telemetry: CQ-depth histogram, installed by
        #: :func:`repro.telemetry.instrument_chip` (None = disabled).
        self.depth_hist = None

    def post_cqe(self, item: Any) -> None:
        """NI-side: write a completion entry into the core's CQ."""
        self.cq.put(item)
        depth = len(self.cq)
        if depth > self.max_cq_depth:
            self.max_cq_depth = depth
        hist = self.depth_hist
        if hist is not None:
            hist.record(depth)

    def post_wqe(self, item: Any) -> None:
        """Core-side: enqueue a work request for the NI."""
        self.wq.put(item)
