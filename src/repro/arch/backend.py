"""NI backends: the replicated "data" half of the Manycore NI (§4.1).

Each backend independently receives network packets, writes payloads
into receive-buffer slots, and runs the extended Remote Request
Processing pipeline (§4.4): per-packet counter fetch-and-increment,
message-completion check, and — once a ``send`` is fully received —
forwarding a *message completion packet* to the NI dispatcher over the
mesh.

The pipeline is modeled as a serialized server: a message of P packets
occupies the backend for ``backend_fixed_ns + P·backend_per_packet_ns``.
Outgoing replies and plain one-sided writes occupy the same pipeline,
so heavy egress traffic can (realistically) delay ingress handling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import Store, delayed_call
from .packets import OneSidedWrite, SendMessage

if TYPE_CHECKING:  # pragma: no cover
    from .chip import Chip

__all__ = ["NIBackend"]


class NIBackend:
    """One NI backend at the mesh edge."""

    def __init__(self, chip: "Chip", backend_id: int) -> None:
        self.chip = chip
        self.backend_id = backend_id
        self._pipeline: Store = Store(chip.env)
        #: Observability counters.
        self.messages_reassembled = 0
        self.replies_sent = 0
        self.onesided_handled = 0
        self.busy_ns = 0.0
        #: Telemetry: pipeline-depth histogram, installed by
        #: :func:`repro.telemetry.instrument_chip` (None = disabled).
        self.depth_hist = None
        chip.env.process(self._run(), name=f"backend{backend_id}")

    # -- ingress/egress entry points ------------------------------------------

    def receive_message(self, msg: SendMessage) -> None:
        """A ``send`` message starts arriving from the network."""
        self._pipeline.put(("ingress", msg))
        hist = self.depth_hist
        if hist is not None:
            hist.record(len(self._pipeline))

    def send_reply(self, num_packets: int) -> None:
        """A core's reply ``send`` leaves through this backend."""
        self._pipeline.put(("egress", num_packets))

    def occupy_pipeline(self, num_packets: int) -> None:
        """Charge generic data movement (one-sided payloads) to the
        pipeline without counting it as a reply."""
        self._pipeline.put(("data", num_packets))

    def receive_onesided(self, op: OneSidedWrite) -> None:
        """A plain one-sided write: memory traffic only, no dispatch."""
        self._pipeline.put(("onesided", op))

    @property
    def queue_depth(self) -> int:
        """Work items waiting at this backend's pipeline."""
        return len(self._pipeline)

    # -- the pipeline ------------------------------------------------------------

    def _occupancy_ns(self, num_packets: int) -> float:
        config = self.chip.config
        return config.backend_fixed_ns + num_packets * config.backend_per_packet_ns

    def _run(self):
        env = self.chip.env
        while True:
            kind, item = yield self._pipeline.get()
            if kind == "ingress":
                busy = self._occupancy_ns(item.num_packets)
                yield env.timeout(busy)
                self.busy_ns += busy
                self._message_complete(item)
            elif kind == "egress":
                busy = self._occupancy_ns(item)
                yield env.timeout(busy)
                self.busy_ns += busy
                self.replies_sent += 1
            elif kind == "data":
                busy = self._occupancy_ns(item)
                yield env.timeout(busy)
                self.busy_ns += busy
            elif kind == "onesided":
                busy = self._occupancy_ns(item.num_packets)
                yield env.timeout(busy)
                self.busy_ns += busy
                self.onesided_handled += 1
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown backend work item {kind!r}")

    def _message_complete(self, msg: SendMessage) -> None:
        """All packets of ``msg`` written; counters confirmed complete."""
        chip = self.chip
        # Drive the receive-slot counter state machine to completion.
        for _ in range(msg.num_packets):
            done = chip.receive_buffer.packet_arrived(msg.receive_slot)
        if not done:  # pragma: no cover - invariant
            raise RuntimeError("packet counter disagrees with message length")
        self.messages_reassembled += 1
        msg.t_reassembled = chip.env.now

        dispatcher = chip.dispatchers[msg.group_id]
        delay = dispatcher.completion_forward_delay_ns(self.backend_id)
        if delay > 0:
            delayed_call(chip.env, delay, dispatcher.on_message_ready, msg)
        else:
            dispatcher.on_message_ready(msg)
