"""2D-mesh on-chip interconnect latency model.

The Manycore NI architecture (Fig. 4) places one NI backend per mesh
row at the chip's edge; NI frontends are collocated with each core's
tile. Latency between any two agents is hop-count × per-hop latency
(Table 1: 3 cycles/hop). Contention on the mesh is not modeled — at the
paper's message rates the 16-byte-link mesh is far from saturated, and
the paper treats the indirection cost as "a few ns" of pure latency.
"""

from __future__ import annotations

from typing import Tuple

from .config import ChipConfig

__all__ = ["Mesh"]


class Mesh:
    """Hop distances between cores and NI backends on the tiled chip."""

    def __init__(self, config: ChipConfig) -> None:
        self.config = config
        self._rows = config.mesh_rows
        self._cols = config.mesh_cols
        self._hop_ns = config.mesh_hop_ns

    def core_position(self, core_id: int) -> Tuple[int, int]:
        """(row, col) tile of a core (row-major numbering)."""
        if not 0 <= core_id < self.config.num_cores:
            raise ValueError(f"core_id {core_id!r} out of range")
        return divmod(core_id, self._cols)

    def backend_position(self, backend_id: int) -> Tuple[int, int]:
        """(row, col) of a backend: at column -1 of its assigned row.

        Backends are spread evenly across rows; with 4 backends on a
        4-row chip, backend *b* sits at the edge of row *b*.
        """
        if not 0 <= backend_id < self.config.num_backends:
            raise ValueError(f"backend_id {backend_id!r} out of range")
        row = backend_id * self._rows // self.config.num_backends
        return (row, -1)

    def hops(self, a: Tuple[int, int], b: Tuple[int, int]) -> int:
        """Manhattan hop count between two tile positions."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def backend_to_core_ns(self, backend_id: int, core_id: int) -> float:
        """Latency of a packet from a backend to a core's frontend."""
        return self._hop_ns * self.hops(
            self.backend_position(backend_id), self.core_position(core_id)
        )

    def core_to_backend_ns(self, core_id: int, backend_id: int) -> float:
        """Latency of a packet from a core's frontend to a backend."""
        return self.backend_to_core_ns(backend_id, core_id)

    def backend_to_backend_ns(self, src: int, dst: int) -> float:
        """Latency of the completion-packet forward between backends.

        This is the §4.3 indirection from any NI backend to the NI
        dispatcher. Backends sit on the same edge column, so the
        distance is their row gap.
        """
        return self._hop_ns * self.hops(
            self.backend_position(src), self.backend_position(dst)
        )

    def mean_backend_to_core_ns(self, backend_id: int) -> float:
        """Average dispatch latency from one backend to all cores."""
        total = sum(
            self.backend_to_core_ns(backend_id, core)
            for core in range(self.config.num_cores)
        )
        return total / self.config.num_cores
