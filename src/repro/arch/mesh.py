"""2D-mesh on-chip interconnect latency model.

The Manycore NI architecture (Fig. 4) places one NI backend per mesh
row at the chip's edge; NI frontends are collocated with each core's
tile. Latency between any two agents is hop-count × per-hop latency
(Table 1: 3 cycles/hop). Contention on the mesh is not modeled — at the
paper's message rates the 16-byte-link mesh is far from saturated, and
the paper treats the indirection cost as "a few ns" of pure latency.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .config import ChipConfig

__all__ = ["Mesh"]

#: Precomputed route tables per mesh geometry, shared by every Mesh
#: built with that geometry (sweeps build one chip per task; the tables
#: depend only on these five config fields). Each value is
#: ``(backend_to_core_ns, backend_to_backend_ns, mean_backend_to_core_ns)``
#: as nested tuples indexed by id.
_ROUTE_TABLES: Dict[Tuple[int, int, float, int, int], tuple] = {}


def _route_tables(
    rows: int, cols: int, hop_ns: float, num_cores: int, num_backends: int
) -> tuple:
    key = (rows, cols, hop_ns, num_cores, num_backends)
    tables = _ROUTE_TABLES.get(key)
    if tables is not None:
        return tables
    core_pos = [divmod(core, cols) for core in range(num_cores)]
    backend_pos = [
        (backend * rows // num_backends, -1) for backend in range(num_backends)
    ]
    b2c = tuple(
        tuple(
            hop_ns * (abs(br - cr) + abs(bc - cc))
            for cr, cc in core_pos
        )
        for br, bc in backend_pos
    )
    b2b = tuple(
        tuple(
            hop_ns * (abs(sr - dr) + abs(sc - dc))
            for dr, dc in backend_pos
        )
        for sr, sc in backend_pos
    )
    mean_b2c = tuple(sum(row) / num_cores for row in b2c)
    tables = _ROUTE_TABLES[key] = (b2c, b2b, mean_b2c)
    return tables


class Mesh:
    """Hop distances between cores and NI backends on the tiled chip.

    All pairwise latencies are precomputed into per-geometry route
    tables shared across instances (see :data:`_ROUTE_TABLES`), so the
    per-message queries on the simulator's hot path are tuple indexing
    instead of position/hop arithmetic.
    """

    def __init__(self, config: ChipConfig) -> None:
        self.config = config
        self._rows = config.mesh_rows
        self._cols = config.mesh_cols
        self._hop_ns = config.mesh_hop_ns
        self._b2c, self._b2b, self._mean_b2c = _route_tables(
            self._rows,
            self._cols,
            self._hop_ns,
            config.num_cores,
            config.num_backends,
        )

    def core_position(self, core_id: int) -> Tuple[int, int]:
        """(row, col) tile of a core (row-major numbering)."""
        if not 0 <= core_id < self.config.num_cores:
            raise ValueError(f"core_id {core_id!r} out of range")
        return divmod(core_id, self._cols)

    def backend_position(self, backend_id: int) -> Tuple[int, int]:
        """(row, col) of a backend: at column -1 of its assigned row.

        Backends are spread evenly across rows; with 4 backends on a
        4-row chip, backend *b* sits at the edge of row *b*.
        """
        if not 0 <= backend_id < self.config.num_backends:
            raise ValueError(f"backend_id {backend_id!r} out of range")
        row = backend_id * self._rows // self.config.num_backends
        return (row, -1)

    def hops(self, a: Tuple[int, int], b: Tuple[int, int]) -> int:
        """Manhattan hop count between two tile positions."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def backend_to_core_ns(self, backend_id: int, core_id: int) -> float:
        """Latency of a packet from a backend to a core's frontend."""
        if backend_id < 0 or core_id < 0:
            raise ValueError(
                f"id ({backend_id!r}, {core_id!r}) out of range"
            )
        try:
            return self._b2c[backend_id][core_id]
        except IndexError:
            raise ValueError(
                f"id ({backend_id!r}, {core_id!r}) out of range"
            ) from None

    def core_to_backend_ns(self, core_id: int, backend_id: int) -> float:
        """Latency of a packet from a core's frontend to a backend."""
        return self.backend_to_core_ns(backend_id, core_id)

    def backend_to_backend_ns(self, src: int, dst: int) -> float:
        """Latency of the completion-packet forward between backends.

        This is the §4.3 indirection from any NI backend to the NI
        dispatcher. Backends sit on the same edge column, so the
        distance is their row gap.
        """
        if src < 0 or dst < 0:
            raise ValueError(f"backend id ({src!r}, {dst!r}) out of range")
        try:
            return self._b2b[src][dst]
        except IndexError:
            raise ValueError(
                f"backend id ({src!r}, {dst!r}) out of range"
            ) from None

    def mean_backend_to_core_ns(self, backend_id: int) -> float:
        """Average dispatch latency from one backend to all cores."""
        if backend_id < 0:
            raise ValueError(f"backend_id {backend_id!r} out of range")
        try:
            return self._mean_b2c[backend_id]
        except IndexError:
            raise ValueError(
                f"backend_id {backend_id!r} out of range"
            ) from None
