"""Message and operation records flowing through the simulated NI.

The unit of work end to end is a :class:`SendMessage` — a soNUMA
``send`` operation carrying an RPC request. It is created by the
traffic generator, reassembled at an NI backend, queued at a dispatcher,
executed on a core, and finished by a ``replenish``. The record carries
the timestamps each experiment measures.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SendMessage", "Replenish", "OneSidedWrite"]


class SendMessage:
    """One RPC request carried by a native-messaging ``send`` (§4.2)."""

    __slots__ = (
        "msg_id",
        "src_node",
        "slot",
        "size_bytes",
        "num_packets",
        "service_ns",
        "label",
        "receive_slot",
        "backend_id",
        "group_id",
        "core_id",
        "rendezvous",
        "extra_pre_ns",
        # timestamps (ns); None until the corresponding stage happens
        "t_arrival",
        "t_reassembled",
        "t_dispatch",
        "t_cqe",
        "t_start",
        "t_replenish",
    )

    def __init__(
        self,
        msg_id: int,
        src_node: int,
        slot: int,
        size_bytes: int,
        num_packets: int,
        service_ns: float,
        label: str = "rpc",
    ) -> None:
        self.reset(
            msg_id, src_node, slot, size_bytes, num_packets, service_ns, label
        )

    def reset(
        self,
        msg_id: int,
        src_node: int,
        slot: int,
        size_bytes: int,
        num_packets: int,
        service_ns: float,
        label: str = "rpc",
    ) -> "SendMessage":
        """(Re)initialize every field — the recycling hook.

        :meth:`Chip.make_send` pools completed messages and resets them
        here instead of allocating; every slot (including the
        rendezvous-path mutations of ``num_packets``/``extra_pre_ns``
        and all timestamps) must be restored to construction state.
        """
        if service_ns < 0:
            raise ValueError(f"service_ns must be non-negative, got {service_ns!r}")
        if num_packets <= 0:
            raise ValueError(f"num_packets must be positive, got {num_packets!r}")
        self.msg_id = msg_id
        self.src_node = src_node
        self.slot = slot
        self.size_bytes = size_bytes
        self.num_packets = num_packets
        self.service_ns = service_ns
        self.label = label
        #: Global receive-buffer slot index (src_index * S + slot).
        self.receive_slot: int = -1
        #: NI backend that receives/reassembles the message.
        self.backend_id: int = -1
        #: Balancing group (dispatcher) the message is steered to.
        self.group_id: int = -1
        #: Core the dispatcher assigned the message to.
        self.core_id: int = -1
        #: True when the payload exceeds max_msg_size and is fetched by
        #: the receiver with a one-sided read (§4.2's rendezvous).
        self.rendezvous: bool = False
        #: Extra pre-processing latency on the core (rendezvous fetch).
        self.extra_pre_ns: float = 0.0
        self.t_arrival: Optional[float] = None
        self.t_reassembled: Optional[float] = None
        self.t_dispatch: Optional[float] = None
        #: CQE written into the assigned core's private CQ (frontend).
        self.t_cqe: Optional[float] = None
        self.t_start: Optional[float] = None
        self.t_replenish: Optional[float] = None
        return self

    @property
    def latency_ns(self) -> float:
        """§5's metric: reception of the send → replenish posted."""
        if self.t_arrival is None or self.t_replenish is None:
            raise RuntimeError(f"message {self.msg_id} has not completed")
        return self.t_replenish - self.t_arrival

    @property
    def queueing_ns(self) -> float:
        """Time between NI arrival and the core starting the RPC."""
        if self.t_arrival is None or self.t_start is None:
            raise RuntimeError(f"message {self.msg_id} was never started")
        return self.t_start - self.t_arrival

    def __repr__(self) -> str:
        return (
            f"<SendMessage id={self.msg_id} src={self.src_node} "
            f"slot={self.slot} {self.size_bytes}B {self.label}>"
        )


class Replenish:
    """End-to-end flow-control credit for one consumed send slot (§4.2)."""

    __slots__ = ("src_node", "slot", "core_id")

    def __init__(self, src_node: int, slot: int, core_id: int) -> None:
        self.src_node = src_node
        self.slot = slot
        self.core_id = core_id

    def __repr__(self) -> str:
        return f"<Replenish src={self.src_node} slot={self.slot} core={self.core_id}>"


class OneSidedWrite:
    """A plain soNUMA one-sided RDMA write (not load-balance eligible).

    The NI distinguishes these from ``send`` operations (§3.3): they are
    written straight to memory and produce no CPU notification. They
    exist in the model so tests can assert that the dispatcher never
    sees them.
    """

    __slots__ = ("op_id", "src_node", "size_bytes", "num_packets")

    def __init__(self, op_id: int, src_node: int, size_bytes: int, num_packets: int) -> None:
        self.op_id = op_id
        self.src_node = src_node
        self.size_bytes = size_bytes
        self.num_packets = num_packets

    def __repr__(self) -> str:
        return f"<OneSidedWrite id={self.op_id} {self.size_bytes}B>"
