"""NI frontends: the per-core "control" half of the Manycore NI (§4.1).

A frontend is collocated with its core's tile. It receives dispatch
decisions from an NI backend over the mesh and writes the CQE into the
core's private CQ (the Request Completion pipeline); in the opposite
direction it propagates the core's ``replenish`` back to the backend
that dispatched the request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import delayed_call
from .packets import SendMessage
from .qp import QueuePair

if TYPE_CHECKING:  # pragma: no cover
    from .chip import Chip

__all__ = ["NIFrontend"]


class NIFrontend:
    """The NI frontend paired with one core."""

    def __init__(self, chip: "Chip", core_id: int, qp: QueuePair) -> None:
        self.chip = chip
        self.core_id = core_id
        self.qp = qp
        #: Number of CQEs this frontend wrote (observability).
        self.cqes_written = 0

    def deliver(self, msg: SendMessage) -> None:
        """Write the dispatched message's CQE into the core's CQ.

        Called (after the mesh + CQE-write latency has elapsed) by the
        dispatcher; see ``Dispatcher._dispatch_to``.
        """
        self.cqes_written += 1
        msg.t_cqe = self.chip.env.now
        self.qp.post_cqe(msg)

    def propagate_replenish(self, msg: SendMessage) -> None:
        """Forward the core's replenish to the dispatching backend (§4.4).

        "The core signals its availability by enqueuing a replenish
        operation in its WQ, which is propagated by the core's NI
        frontend to the NI backend that originally dispatched the
        request."
        """
        dispatcher = self.chip.dispatchers[msg.group_id]
        delay = dispatcher.replenish_delay_ns(self.core_id)
        if delay > 0:
            delayed_call(
                self.chip.env, delay, dispatcher.on_replenish, self.core_id, msg
            )
        else:
            dispatcher.on_replenish(self.core_id, msg)
