"""repro — a reproduction of RPCValet (Daglis et al., ASPLOS 2019).

RPCValet is an NI-driven, tail-aware load balancer for µs-scale RPCs on
manycore servers with integrated network interfaces. This package
implements the paper's system and every substrate it depends on as a
discrete-event simulation:

* :mod:`repro.sim` — the DES kernel;
* :mod:`repro.dists` — service-time distributions (incl. the paper's
  synthetic fixed/uniform/exponential/GEV set);
* :mod:`repro.queueing` — the theoretical Q×U queueing models (§2.2);
* :mod:`repro.arch` — the soNUMA chip with Manycore NI and native
  messaging (§3–§4);
* :mod:`repro.balancing` — 1×16 (RPCValet), grouped, partitioned
  (RSS-style), and software (MCS-lock) dispatch;
* :mod:`repro.workloads` — HERD, Masstree, and synthetic RPC streams;
* :mod:`repro.store` — an execution-driven skip-list KV store;
* :mod:`repro.metrics` — latency/SLO/sweep measurement;
* :mod:`repro.telemetry` — mergeable run instrumentation (histograms,
  queue-depth probes, Perfetto counter tracks);
* :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart::

    from repro import RpcValetSystem, SingleQueue, Partitioned, SyntheticWorkload

    system = RpcValetSystem(SingleQueue(), SyntheticWorkload("gev"), seed=1)
    sweep = system.sweep([2, 4, 6, 8, 10], num_requests=30_000)
    print(sweep.throughput_under_slo(slo=12_000.0))  # ns
"""

from .arch import ChipConfig, DEFAULT_CONFIG
from .balancing import (
    Grouped,
    Partitioned,
    SingleQueue,
    SoftwareSingleQueue,
)
from .core import (
    PointResult,
    RpcValetSystem,
    SCHEME_NAMES,
    make_scheme,
    make_system,
    make_workload,
)
from .metrics import LatencySummary, SweepPoint, SweepResult
from .queueing import QueueingSystem
from .telemetry import TelemetryHub, TelemetrySnapshot
from .workloads import (
    HerdWorkload,
    MasstreeWorkload,
    MicrobenchCosts,
    SyntheticWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "RpcValetSystem",
    "PointResult",
    "make_scheme",
    "make_workload",
    "make_system",
    "SCHEME_NAMES",
    "SingleQueue",
    "Grouped",
    "Partitioned",
    "SoftwareSingleQueue",
    "ChipConfig",
    "DEFAULT_CONFIG",
    "QueueingSystem",
    "SyntheticWorkload",
    "HerdWorkload",
    "MasstreeWorkload",
    "MicrobenchCosts",
    "LatencySummary",
    "SweepPoint",
    "SweepResult",
    "TelemetryHub",
    "TelemetrySnapshot",
    "__version__",
]
