"""Named experiment configurations matching the paper's setups."""

from __future__ import annotations

from typing import Optional

from ..balancing import (
    BalancingScheme,
    Grouped,
    Partitioned,
    SingleQueue,
    SoftwareSingleQueue,
)
from ..workloads import (
    HerdWorkload,
    MasstreeWorkload,
    MicrobenchCosts,
    RpcWorkload,
    SyntheticWorkload,
)
from .system import RpcValetSystem

__all__ = ["make_scheme", "make_workload", "make_system", "SCHEME_NAMES"]

#: Scheme names as the paper labels them (16-core chip).
SCHEME_NAMES = ("1x16", "4x4", "16x1", "sw-1x16", "2x8", "8x2")


def make_scheme(name: str) -> BalancingScheme:
    """Build a balancing scheme from a paper-style Q×U label."""
    if name == "1x16":
        return SingleQueue()
    if name == "sw-1x16":
        return SoftwareSingleQueue()
    if name == "16x1":
        return Partitioned()
    if name in ("4x4", "2x8", "8x2"):
        num_groups = int(name.split("x")[0])
        return Grouped(num_groups)
    raise ValueError(f"unknown scheme {name!r}; expected one of {SCHEME_NAMES}")


def make_workload(name: str) -> RpcWorkload:
    """Build a workload: 'herd', 'masstree', 'synthetic-<kind>', or an
    empirical CSV-CDF preset ('websearch', 'datamining')."""
    if name == "herd":
        return HerdWorkload()
    if name == "masstree":
        return MasstreeWorkload()
    if name.startswith("synthetic-"):
        return SyntheticWorkload(name.split("-", 1)[1])
    if name in ("websearch", "datamining"):
        from ..dists import datamining, websearch
        from ..workloads import DistributionWorkload

        dist = websearch() if name == "websearch" else datamining()
        return DistributionWorkload(dist, name=name)
    raise ValueError(
        f"unknown workload {name!r}; expected 'herd', 'masstree', "
        "'synthetic-<kind>', 'websearch', or 'datamining'"
    )


def make_system(
    scheme: str,
    workload: str,
    seed: int = 0,
    costs: Optional[MicrobenchCosts] = None,
    telemetry: bool = False,
) -> RpcValetSystem:
    """Assemble a system the way the paper's experiments do.

    Synthetic workloads default to the heavier ``paper_synthetic``
    costs (S̄ ≈ 1.2µs); HERD/Masstree use the ``lean`` costs
    (S̄ ≈ 550ns for HERD). See DESIGN.md §5. ``telemetry=True`` turns
    on queue-depth probes and the periodic sampler for every point the
    system runs (see :mod:`repro.telemetry`).
    """
    workload_obj = make_workload(workload)
    if costs is None:
        if workload.startswith("synthetic-"):
            costs = MicrobenchCosts.paper_synthetic()
        else:
            costs = MicrobenchCosts.lean()
    return RpcValetSystem(
        scheme=make_scheme(scheme),
        workload=workload_obj,
        costs=costs,
        seed=seed,
        telemetry=telemetry,
    )
