"""RpcValetSystem: the library's top-level entry point.

Assembles the full simulated server — chip, balancing scheme, workload,
traffic generator — and runs load points / sweeps, producing the same
(throughput, p99) series the paper's figures plot.

Example
-------
>>> from repro import RpcValetSystem, SingleQueue, SyntheticWorkload
>>> system = RpcValetSystem(
...     scheme=SingleQueue(),
...     workload=SyntheticWorkload("exponential"),
...     seed=1,
... )
>>> point = system.run_point(offered_mrps=8.0, num_requests=20_000)
>>> point.p99 > 0
True
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch import Chip, ChipConfig, DEFAULT_CONFIG
from ..balancing import BalancingScheme
from ..metrics import SweepPoint, SweepResult
from ..runner import map_points, spawn_point_seeds
from ..sim import Environment, RngRegistry
from ..popload.arrivals import ArrivalProcess
from ..telemetry import (
    TelemetryHub,
    TelemetrySnapshot,
    instrument_chip,
    instrument_traffic,
    merge_snapshots,
)
from ..workloads import (
    MicrobenchCosts,
    MicrobenchProgram,
    RpcWorkload,
    TrafficGenerator,
)

__all__ = [
    "RpcValetSystem",
    "PointResult",
    "MessageLog",
    "run_point_task",
    "sweep_many",
    "sweep_telemetry",
]


class MessageLog:
    """A bounded completed-message log (oldest dropped, drops counted).

    Drop-in for the plain list ``Chip.completed_messages`` expects: the
    chip only ever ``append``s. With ``max_messages=None`` it behaves
    like an unbounded list; with a cap, the oldest records are evicted
    so long ``keep_messages=True`` captures cannot exhaust memory.
    """

    __slots__ = ("_messages", "max_messages", "dropped")

    def __init__(self, max_messages: Optional[int] = None) -> None:
        if max_messages is not None and max_messages < 1:
            raise ValueError(
                f"max_messages must be >= 1 or None, got {max_messages!r}"
            )
        self.max_messages = max_messages
        self._messages: deque = deque(maxlen=max_messages)
        self.dropped = 0

    def append(self, msg) -> None:
        if self.max_messages is not None and len(self._messages) == self.max_messages:
            self.dropped += 1
        self._messages.append(msg)

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self):
        return iter(self._messages)

    def to_list(self) -> list:
        return list(self._messages)


@dataclass
class PointResult:
    """Full result of one load point (more detail than a SweepPoint)."""

    point: SweepPoint
    mean_service_ns: float
    stall_fraction: float
    max_private_cq_depth: int
    max_shared_cq_depth: int
    completed: int
    #: Per-request records, populated when run with keep_messages=True.
    messages: Optional[list] = None
    #: Oldest records evicted from ``messages`` by a ``max_messages`` cap.
    dropped_messages: int = 0
    #: Telemetry snapshot, populated when run with telemetry enabled.
    telemetry: Optional[TelemetrySnapshot] = None

    @property
    def p99(self) -> float:
        return self.point.p99


class RpcValetSystem:
    """One modeled server under one balancing scheme and workload."""

    def __init__(
        self,
        scheme: BalancingScheme,
        workload: RpcWorkload,
        config: ChipConfig = DEFAULT_CONFIG,
        costs: Optional[MicrobenchCosts] = None,
        seed: int = 0,
        slot_policy: str = "static",
        pool_size: Optional[int] = None,
        source_skew: float = 0.0,
        arrival_process: Optional[ArrivalProcess] = None,
        interference=None,
        telemetry: bool = False,
        telemetry_interval_ns: Optional[float] = None,
        latency_mode: str = "exact",
    ) -> None:
        if latency_mode not in ("exact", "streaming"):
            raise ValueError(
                f"latency_mode must be 'exact' or 'streaming', got {latency_mode!r}"
            )
        self.scheme = scheme
        self.workload = workload
        self.config = config
        self.costs = costs if costs is not None else MicrobenchCosts.lean()
        self.seed = seed
        #: Send-slot provisioning: "static" (paper §4.2) or "dynamic"
        #: (the shared-pool future-work extension).
        self.slot_policy = slot_policy
        self.pool_size = pool_size
        #: Zipf-like exponent over sender ranks (0 = paper's uniform).
        self.source_skew = source_skew
        #: Optional :mod:`repro.popload` arrival process. None keeps the
        #: paper's stationary Poisson at each run_point's offered rate
        #: (byte-identical to the historical stream); a process makes
        #: ``offered_mrps`` the point's nominal label while the process
        #: dictates the actual arrival timing.
        self.arrival_process = arrival_process
        #: Optional §3.2 interference injection (see repro.arch.interference).
        self.interference = interference
        #: When True, every run_point instruments the chip with a
        #: :class:`repro.telemetry.TelemetryHub` and attaches the
        #: snapshot to the result (and to ``point.extra["telemetry"]``,
        #: so sweeps carry it through the parallel engine for merging).
        self.telemetry = telemetry
        #: Periodic-sampler tick in simulated ns; None derives ~200
        #: ticks from the run's expected duration.
        self.telemetry_interval_ns = telemetry_interval_ns
        #: Latency accounting: "exact" keeps per-request records and
        #: exact percentiles (the default — figure assertions depend on
        #: it); "streaming" trades ≈1% percentile error for O(1) memory
        #: via :class:`repro.metrics.StreamingLatencyRecorder`.
        self.latency_mode = latency_mode

    @property
    def label(self) -> str:
        return self.scheme.label

    @property
    def expected_service_ns(self) -> float:
        """A-priori S̄: workload mean + microbenchmark overhead.

        The measured S̄ (PointResult.mean_service_ns) additionally
        includes scheme-imposed core overheads (software dequeue cost)
        and rendezvous fetches.
        """
        return self.workload.mean_processing_ns + self.costs.total_ns

    def _build(self, rngs: RngRegistry) -> Chip:
        env = Environment()
        program = MicrobenchProgram(
            self.costs, reply_size_bytes=self.workload.reply_size_bytes
        )
        chip = Chip(env, self.config, program, rngs)
        chip.interference = self.interference
        self.scheme.install(chip, rngs.stream("dispatch"))
        return chip

    def run_point(
        self,
        offered_mrps: float,
        num_requests: int = 50_000,
        warmup_fraction: float = 0.1,
        keep_messages: bool = False,
        max_messages: Optional[int] = None,
        telemetry: Optional[bool] = None,
    ) -> PointResult:
        """Simulate one offered-load point (in millions of requests/s).

        Returns achieved throughput (MRPS) and the latency summary of
        the workload's SLO-relevant class, measured per §5: from the
        message's reception at the NI until the replenish is posted.
        ``keep_messages`` retains the per-request records on the result
        for stage-level analysis (:func:`repro.metrics.breakdown_from_messages`);
        ``max_messages`` bounds that capture (oldest records dropped,
        drop count reported on the result) so long traces cannot OOM.
        ``telemetry`` instruments the run (None defers to the system's
        ``telemetry`` flag); the snapshot lands on the result and in
        ``point.extra["telemetry"]``.
        """
        if offered_mrps <= 0:
            raise ValueError(f"offered_mrps must be positive, got {offered_mrps!r}")
        if num_requests <= 0:
            raise ValueError(f"num_requests must be positive, got {num_requests!r}")
        rngs = RngRegistry(self.seed)
        chip = self._build(rngs)
        if self.latency_mode == "streaming":
            from ..metrics import StreamingLatencyRecorder

            chip.recorder = StreamingLatencyRecorder(
                expected_count=num_requests, warmup_fraction=warmup_fraction
            )
        message_log: Optional[MessageLog] = None
        if keep_messages:
            message_log = MessageLog(max_messages)
            chip.completed_messages = message_log
        hub: Optional[TelemetryHub] = None
        if self.telemetry if telemetry is None else telemetry:
            interval = self.telemetry_interval_ns
            if interval is None:
                # ~200 sampler ticks across the expected injection window.
                duration_ns = num_requests / (offered_mrps * 1e6) * 1e9
                interval = max(duration_ns / 200.0, 1.0)
            hub = TelemetryHub(sample_interval=interval)
            instrument_chip(chip, hub)
            chip.env.attach_sampler(hub.make_sampler())
        traffic = TrafficGenerator(
            chip,
            self.workload,
            arrival_rate_rps=offered_mrps * 1e6,
            num_requests=num_requests,
            rngs=rngs,
            slot_policy=self.slot_policy,
            pool_size=self.pool_size,
            source_skew=self.source_skew,
            arrival_process=self.arrival_process,
        )
        if hub is not None:
            # Offered-rate time-series track; the hub's sampler reads
            # its probe list by reference, so late registration samples.
            instrument_traffic(traffic, hub)
        chip.env.run()

        recorder = chip.recorder
        label = self.workload.slo_label
        if label not in recorder.labels:
            # Single-class workloads record everything under "rpc".
            label = None
        summary = recorder.summary(label=label, warmup_fraction=warmup_fraction)
        # Achieved throughput counts *all* completions (gets + scans).
        # Recorder times are in ns, so per-ns rate * 1e3 = MRPS.
        throughput_mrps = (
            recorder.throughput(
                warmup_time=_warmup_cutoff(recorder, warmup_fraction)
            )
            * 1e3
        )
        extra = {
            "mean_service_ns": chip.stats.mean_service_ns,
            "stall_fraction": traffic.stall_fraction,
        }
        snapshot: Optional[TelemetrySnapshot] = None
        if hub is not None:
            snapshot = hub.snapshot()
            extra["telemetry"] = snapshot
        point = SweepPoint(
            offered_load=offered_mrps,
            achieved_throughput=throughput_mrps,
            summary=summary,
            extra=extra,
        )
        max_shared = max(
            dispatcher.max_shared_cq_depth for dispatcher in chip.dispatchers
        )
        return PointResult(
            point=point,
            mean_service_ns=chip.stats.mean_service_ns,
            stall_fraction=traffic.stall_fraction,
            max_private_cq_depth=chip.total_cqe_depth_high_water,
            max_shared_cq_depth=max_shared,
            completed=chip.stats.completed,
            messages=message_log.to_list() if message_log is not None else None,
            dropped_messages=message_log.dropped if message_log is not None else 0,
            telemetry=snapshot,
        )

    def sweep(
        self,
        offered_mrps: Sequence[float],
        num_requests: int = 50_000,
        warmup_fraction: float = 0.1,
        label: Optional[str] = None,
        workers: Optional[int] = None,
        experiment: Optional[str] = None,
        failures: Optional[List[str]] = None,
    ) -> SweepResult:
        """Run several load points and return the throughput/p99 curve.

        Load points are independent tasks executed through
        :func:`repro.runner.map_points`: serially when ``workers <= 1``
        (the default; ``REPRO_WORKERS`` overrides), on a process pool
        otherwise. Each point runs under its own deterministic seed
        spawned from ``(experiment, scheme label, load index, seed)``,
        so the curve is bit-identical for every worker count. Failed
        points are dropped from the curve and described in ``failures``
        (when a list is passed).
        """
        name = label or self.label
        sweeps = sweep_many(
            {name: self},
            offered_mrps,
            num_requests=num_requests,
            warmup_fraction=warmup_fraction,
            workers=workers,
            experiment=experiment,
            failures=failures,
        )
        return sweeps[name]


def run_point_task(
    task: Tuple["RpcValetSystem", float, int, float, int],
) -> PointResult:
    """Execute one (system, load) task under an explicit seed.

    Module-level so it pickles into pool workers. The system is shallow-
    copied before reseeding, leaving the caller's instance untouched.
    """
    system, load, num_requests, warmup_fraction, seed = task
    system = copy.copy(system)
    system.seed = seed
    return system.run_point(
        load, num_requests=num_requests, warmup_fraction=warmup_fraction
    )


def sweep_many(
    systems: Mapping[str, "RpcValetSystem"],
    offered_mrps: Sequence[float],
    num_requests: int = 50_000,
    warmup_fraction: float = 0.1,
    workers: Optional[int] = None,
    experiment: Optional[str] = None,
    failures: Optional[List[str]] = None,
) -> Dict[str, SweepResult]:
    """Sweep several labelled systems over one load grid, in one fan-out.

    This is the figure drivers' entry point: all (scheme, load-point)
    tasks go through a single :func:`repro.runner.map_points` call, so a
    pool of N workers stays busy across scheme boundaries instead of
    draining per scheme. Per-task seeds come from
    :func:`repro.runner.spawn_point_seeds` keyed on
    ``(experiment, scheme label, load index, system seed)``.
    """
    loads = sorted(offered_mrps)
    tasks: List[Tuple[RpcValetSystem, float, int, float, int]] = []
    labels: List[str] = []
    owners: List[str] = []
    hints: List[float] = []
    for name, system in systems.items():
        seeds = spawn_point_seeds(experiment or name, name, system.seed, len(loads))
        for index, (load, seed) in enumerate(zip(loads, seeds)):
            tasks.append((system, load, num_requests, warmup_fraction, seed))
            # Full task identity (scheme, load index, load, seed) so a
            # failure report pinpoints the exact simulation to rerun.
            labels.append(f"{name}[{index}]@{load:g} (seed {seed})")
            owners.append(name)
            # Cold-cache scheduling hint: higher load simulates longer.
            hints.append(load)
    outcome = map_points(
        run_point_task,
        tasks,
        workers=workers,
        labels=labels,
        progress_label=experiment or "sweep",
        cost_hints=hints,
    )
    points: Dict[str, List[SweepPoint]] = {name: [] for name in systems}
    for owner, result in zip(owners, outcome.results):
        if result is not None:
            points[owner].append(result.point)
    if failures is not None:
        failures.extend(outcome.findings())
    return {
        name: SweepResult(label=name, points=series)
        for name, series in points.items()
    }


def sweep_telemetry(sweep: SweepResult) -> Optional[TelemetrySnapshot]:
    """Merge the telemetry snapshots carried by a sweep's points.

    Each telemetry-enabled point stores its snapshot in
    ``point.extra["telemetry"]``; merging in point order yields one
    consistent view per curve that is bit-identical at any worker count
    (see :func:`repro.telemetry.merge_snapshots`). Returns ``None`` when
    the sweep ran without telemetry.
    """
    return merge_snapshots(
        point.extra.get("telemetry") for point in sweep.points
    )


def _warmup_cutoff(recorder, warmup_fraction: float) -> float:
    """Absolute completion-time cutoff matching a warmup fraction."""
    import numpy as np

    if warmup_fraction <= 0 or len(recorder) == 0:
        return 0.0
    cutoff = getattr(recorder, "warmup_cutoff", None)
    if cutoff is not None:
        # Streaming recorder: warmup was applied at record time.
        return cutoff()
    times = np.asarray(recorder._times)
    return float(np.quantile(times, warmup_fraction))
