"""Top-level public API: assemble and run RPCValet systems."""

from .presets import SCHEME_NAMES, make_scheme, make_system, make_workload
from .system import PointResult, RpcValetSystem

__all__ = [
    "RpcValetSystem",
    "PointResult",
    "make_scheme",
    "make_workload",
    "make_system",
    "SCHEME_NAMES",
]
