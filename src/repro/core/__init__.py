"""Top-level public API: assemble and run RPCValet systems."""

from .presets import SCHEME_NAMES, make_scheme, make_system, make_workload
from .system import (
    MessageLog,
    PointResult,
    RpcValetSystem,
    run_point_task,
    sweep_many,
    sweep_telemetry,
)

__all__ = [
    "RpcValetSystem",
    "PointResult",
    "MessageLog",
    "make_scheme",
    "make_workload",
    "make_system",
    "SCHEME_NAMES",
    "run_point_task",
    "sweep_many",
    "sweep_telemetry",
]
