"""Population-driven workload generation (ROADMAP item 1).

Offered load as a *process*: arrival streams produced by modeled user
populations (diurnal cycles, flash crowds, modulated bursts), Zipf
skew over sources and keys, and exact record/replay of any generated
stream. Everything here feeds the existing ``TrafficGenerator`` /
``Cluster`` entry points through the :class:`ArrivalProcess` protocol,
so every chip-, rack-, and cluster-level experiment gets the new
scenarios without touching its driver.

See the README's "Population-driven load" section for the tour and
``ext-diurnal`` (:mod:`repro.experiments.diurnal`) for the headline
experiment.
"""

from .arrivals import (
    MMPP,
    ArrivalProcess,
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    NonhomogeneousPoisson,
    PiecewiseConstantRate,
    PopulationProcess,
    RateProfile,
    StationaryPoisson,
    nonhomogeneous_poisson,
)
from .skew import ZipfPopularity, zipf_weights
from .trace import (
    RecordedArrivals,
    load_arrival_trace,
    record_arrivals,
    save_arrival_trace,
)

__all__ = [
    "ArrivalProcess",
    "StationaryPoisson",
    "NonhomogeneousPoisson",
    "MMPP",
    "PopulationProcess",
    "RateProfile",
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowdRate",
    "PiecewiseConstantRate",
    "nonhomogeneous_poisson",
    "ZipfPopularity",
    "zipf_weights",
    "RecordedArrivals",
    "record_arrivals",
    "save_arrival_trace",
    "load_arrival_trace",
]
