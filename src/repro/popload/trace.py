"""Arrival-trace record/replay: persist a stream, replay it exactly.

Any generated arrival stream — stationary, diurnal, MMPP, population —
can be recorded to a small text format and replayed later with
byte-identical timing, which makes a one-off interesting burst a
permanent regression fixture. Times are serialized with ``float.hex``
so the round trip is exact (no decimal rounding), and the format is
line-oriented with ``#`` comments so traces diff cleanly in review.

Format (``repro-arrivals v1``)::

    # repro-arrivals v1
    # any number of comment lines
    0x1.92a4p+10        <- absolute arrival time in ns, one per line

:func:`record_arrivals` draws a stream from any
:class:`~repro.popload.arrivals.ArrivalProcess`;
:class:`RecordedArrivals` is itself an ``ArrivalProcess``, so a loaded
trace plugs into every generator/cluster entry point unchanged (it
consumes no RNG).
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from .arrivals import ArrivalProcess

__all__ = [
    "TRACE_HEADER",
    "save_arrival_trace",
    "load_arrival_trace",
    "record_arrivals",
    "RecordedArrivals",
]

TRACE_HEADER = "# repro-arrivals v1"

_PathLike = Union[str, pathlib.Path]


def save_arrival_trace(path: _PathLike, times_ns: np.ndarray) -> pathlib.Path:
    """Write absolute arrival times (ns) as an exact, diffable trace."""
    times = np.asarray(times_ns, dtype=float)
    if times.size == 0:
        raise ValueError("refusing to save an empty arrival trace")
    if np.any(~np.isfinite(times)):
        raise ValueError("arrival times must be finite")
    if np.any(np.diff(times) < 0) or times[0] < 0:
        raise ValueError("arrival times must be non-negative and sorted")
    path = pathlib.Path(path)
    lines = [TRACE_HEADER]
    lines.extend(float(t).hex() for t in times)
    path.write_text("\n".join(lines) + "\n")
    return path


def load_arrival_trace(path: _PathLike) -> np.ndarray:
    """Read a trace back; exact inverse of :func:`save_arrival_trace`."""
    path = pathlib.Path(path)
    times = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            times.append(float.fromhex(line))
        except ValueError:
            try:
                times.append(float(line))
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: {line!r} is not a float or "
                    "float.hex arrival time"
                ) from None
    if not times:
        raise ValueError(
            f"arrival trace {path} is empty — expected one arrival time "
            "per line (see popload.trace format docs)"
        )
    data = np.asarray(times, dtype=float)
    if np.any(np.diff(data) < 0) or data[0] < 0:
        raise ValueError(
            f"arrival trace {path} is not a sorted non-negative time "
            "series — was it edited by hand?"
        )
    return data


def record_arrivals(
    process: ArrivalProcess, rng: np.random.Generator, n: int
) -> np.ndarray:
    """Materialize ``n`` absolute arrival times from any process."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n!r}")
    return process.sample_times(rng, n)


class RecordedArrivals(ArrivalProcess):
    """Replay a recorded arrival stream deterministically.

    Consumes **no** randomness: ``sample_gaps`` ignores the passed
    generator entirely, so the named ``"arrivals"`` stream is left
    untouched and every other stream in the run keeps its alignment.
    """

    name = "recorded"

    def __init__(self, times_ns: np.ndarray) -> None:
        times = np.asarray(times_ns, dtype=float)
        if times.size == 0:
            raise ValueError("recorded arrival stream must not be empty")
        if np.any(np.diff(times) < 0) or times[0] < 0:
            raise ValueError(
                "recorded arrival times must be non-negative and sorted"
            )
        self._times = times

    @classmethod
    def from_file(cls, path: _PathLike) -> "RecordedArrivals":
        return cls(load_arrival_trace(path))

    @property
    def times_ns(self) -> np.ndarray:
        """Copy of the recorded absolute times."""
        return self._times.copy()

    def __len__(self) -> int:
        return int(self._times.size)

    @property
    def mean_rate_rps(self) -> float:
        span = float(self._times[-1])
        if span <= 0:
            return 0.0
        return self._times.size / span * 1e9

    def sample_gaps(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        if n > self._times.size:
            raise ValueError(
                f"trace holds {self._times.size} arrivals but {n} were "
                "requested — record a longer stream or lower num_requests"
            )
        return np.diff(self._times[:n], prepend=0.0)

    def sample_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        self.sample_gaps(rng, n)  # bounds check
        return self._times[:n].copy()
