"""Zipf popularity: per-source and per-key skew for destination choice.

Real RPC traffic is not uniform — a few tenants (sources) and a few
keys (destinations) carry most of the load, and that is exactly where
hash-based static placement (RSS-style spraying) concentrates queueing.
This module is the single implementation of the Zipf machinery the
simulator layers onto selection:

* :func:`zipf_weights` — the normalized ``1/rank^α`` mass vector; the
  ``TrafficGenerator``'s ``source_skew`` and the rack router's
  per-key destination skew both build on it.
* :class:`ZipfPopularity` — an icarus-style stationary popularity
  model with the analytic pmf and head-mass helpers the tests check
  sampled frequencies against.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_weights", "ZipfPopularity"]


def zipf_weights(num_items: int, alpha: float) -> np.ndarray:
    """Normalized Zipf mass over ranks 1..num_items: ``p_k ∝ 1/k^α``.

    ``alpha = 0`` is the uniform distribution; larger values
    concentrate mass on low ranks. Matches the historical
    ``TrafficGenerator`` source-skew weights bit-for-bit.
    """
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items!r}")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha!r}")
    weights = 1.0 / np.arange(1, num_items + 1, dtype=float) ** alpha
    return weights / weights.sum()


class ZipfPopularity:
    """Stationary Zipf popularity over ``num_items`` ranked items.

    Rank 1 is the most popular item. ``sample_array`` draws item
    *indices* (0-based, index = rank - 1), ready to index nodes, keys,
    or tenants.
    """

    def __init__(self, num_items: int, alpha: float) -> None:
        self._pmf = zipf_weights(num_items, alpha)
        self.num_items = int(num_items)
        self.alpha = float(alpha)

    @property
    def pmf(self) -> np.ndarray:
        """Probability of each item, most popular first (copies)."""
        return self._pmf.copy()

    def head_mass(self, k: int) -> float:
        """Total probability mass of the ``k`` most popular items."""
        if not 0 <= k <= self.num_items:
            raise ValueError(
                f"k must be in [0, {self.num_items}], got {k!r}"
            )
        return float(self._pmf[:k].sum())

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one 0-based item index."""
        return int(rng.choice(self.num_items, p=self._pmf))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` 0-based item indices in one vectorized call."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        return rng.choice(self.num_items, size=n, p=self._pmf)

    def __repr__(self) -> str:
        return (
            f"<ZipfPopularity n={self.num_items} alpha={self.alpha:g} "
            f"head(1)={self.head_mass(1):.3f}>"
        )
