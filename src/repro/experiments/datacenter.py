"""``ext-datacenter``: in-network scheduling across a rack-of-racks.

The paper balances RPCs inside one 16-core chip; ``ext-rack`` and
``ext-scale`` lift the question to one rack. This experiment lifts it
one more level (:mod:`repro.datacenter`): a spine fabric connects
per-rack ToR routers, and the in-network scheduler designs from the
related work become composable models over the same cluster machinery:

* ``flat`` — the control: clients run power-of-d over *nodes* with no
  in-network help (the rack-layer policy, stretched across racks);
* ``racksched`` — RackSched-style two-layer scheduling: the spine
  picks a rack by aggregate outstanding signal, the ToR runs JSQ over
  its members;
* ``jbsq`` — RAIN-style bounded JBSQ(k): the same spine, but the ToR
  holds RPCs once every member is at the bound and late-binds them to
  the next freed slot (bounded per-server queues);
* ``nanopu`` — racksched routing on nanoPU-style NI-bypass nodes: a
  :class:`~repro.datacenter.NodeProfile` scales the NI pipeline and
  software dequeue costs to 1/4, calibrated by its own DES probe.

Rack *popularity* is Zipf-skewed (clients prefer hot racks — the
datacenter analogue of ``ext-rack``'s skewed destination draw), so the
spine's job is to absorb a hot rack before its members melt. The sweep
crosses hierarchy x spine policy at the main skew, walks a skew
ladder, prices a mixed-generation fleet (a quarter of the racks at 0.7x
speed — where capacity-aware SED wins), scales to 1024 nodes, and
replays a correlated whole-rack power loss through ``repro.faults``.

Engine-aware with default ``auto``: two-level routing is per-RPC state
(the ``hierarchy`` capability), so resolution lands on the vectorized
``fast`` tier at any node count — the fluid tier cannot express it and
explicitly requesting it raises. ``engine="des"`` runs everything on
the ground truth (:class:`~repro.datacenter.DatacenterRouter` over a
:class:`~repro.cluster.HierarchicalFabric`), sensible only for small
fleets. On quick/full, fast runs append a paired DES cross-check on a
sub-critical 16-node fleet — common random numbers per point, p50/p99
deltas tabulated, the worst gated in CI at the 15% band (the JBSQ DES
counterpart binds immediately, the k -> infinity limit, which is
exact sub-critically where the bound rarely binds). All points fan out
through :func:`repro.runner.map_points` under per-task seeds —
bit-identical output at any ``--workers`` count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import format_table
from ..runner import map_points, task_seed
from .common import ExperimentResult, get_profile

__all__ = ["run_datacenter", "DC_FLEETS", "DC_MRPS", "DC_SKEW"]

#: Per-client offered load (MRPS). Node capacity is ~29 MRPS (16 cores
#: / S̄); 24 keeps the fleet sub-critical on average while a hot rack
#: under Zipf skew runs hot enough that spine policies separate.
DC_MRPS = 24.0

#: Main-table Zipf skew over rack popularity (hot-rack regime).
DC_SKEW = 0.6

#: Skew ladder rungs (flat client-side vs in-network two-layer).
DC_SKEWS = (0.0, 0.45, 0.9)

#: Spine policies crossed with every hierarchy in the main table.
DC_POLICIES = ("random", "jsq2", "sed")

#: Hierarchy models crossed with spine policies. ``nanopu`` is
#: racksched routing on a faster node profile, so it rides as a single
#: extra row instead of re-crossing every policy.
DC_HIERARCHIES = ("flat", "racksched", "jbsq")

#: Fleet shape per profile: (num_racks, rack_size).
DC_FLEETS: Dict[str, Tuple[int, int]] = {
    "smoke": (8, 8),
    "quick": (16, 16),
    "full": (32, 16),
}

#: Scale rungs (total nodes; 16 nodes/rack) appended on quick/full.
DC_SCALE_RUNGS: Dict[str, Tuple[int, ...]] = {
    "smoke": (),
    "quick": (1024,),
    "full": (512, 1024),
}

#: Mixed-generation fleet: this fraction of the racks runs at
#: OLD_SPEED x the baseline service rate.
OLD_RACK_FRACTION = 0.25
OLD_SPEED = 0.7

#: Correlated-failure scenario: rack 0 loses power at 35% of the
#: horizon and comes back at 65%.
FAULT_AT_FRACTION = 0.35
FAULT_OUTAGE_FRACTION = 0.3

#: DES cross-check fleet and operating point: small enough that the
#: DES is cheap, sub-critical so the JBSQ immediate-binding
#: approximation is exact (the bound never binds).
CHECK_RACKS = 4
CHECK_RACK_SIZE = 4
CHECK_MRPS = 20.0
CHECK_SKEW = 0.3
CHECK_REQUESTS = 600
CHECK_POINTS = (
    ("flat", "jsq2"),
    ("racksched", "jsq2"),
    ("racksched", "random"),
    ("jbsq", "jsq2"),
    ("nanopu", "jsq2"),
)


def _requests_per_node(base: int, num_nodes: int) -> int:
    """Hold the total event count near the base-fleet figure
    (the ext-scale recipe: constant aggregate sample size and cost).
    The floor is lower than ext-scale's 256 because the 1024-node
    rungs still aggregate >100k samples per point at 128."""
    return max(128, base * 16 // num_nodes)


#: One task: (key, num_racks, rack_size, old_racks, hierarchy, policy,
#: skew, mrps, requests, seed, tier, faulted).
_Task = Tuple[str, int, int, int, str, str, float, float, int, int, str, bool]


def _make_fault_plan(topology, mrps: float, requests: int):
    """The correlated scenario: rack 0's PDU trips mid-run."""
    from ..datacenter import rack_power_loss

    horizon_ns = requests / mrps * 1e3
    return rack_power_loss(
        topology,
        rack=0,
        at_ns=FAULT_AT_FRACTION * horizon_ns,
        outage_ns=FAULT_OUTAGE_FRACTION * horizon_ns,
    )


def _run_datacenter_task(task: _Task) -> Dict[str, object]:
    """One fleet point on one engine tier (pool-safe module function)."""
    from ..datacenter import DatacenterTopology

    (key, num_racks, rack_size, old_racks, hierarchy, policy, skew,
     mrps, requests, seed, tier, faulted) = task
    if old_racks:
        topology = DatacenterTopology.mixed_generations(
            num_racks, rack_size, old_racks=old_racks, old_speed=OLD_SPEED
        )
    else:
        topology = DatacenterTopology(num_racks, rack_size)
    faults = _make_fault_plan(topology, mrps, requests) if faulted else None

    audit: Optional[Dict[str, object]] = None
    if tier == "fast":
        from ..datacenter import simulate_datacenter_fast

        audit = {}
        result = simulate_datacenter_fast(
            topology,
            hierarchy=hierarchy,
            policy=policy,
            skew=skew,
            per_node_mrps=mrps,
            requests_per_node=requests,
            seed=seed,
            faults=faults,
            _audit=audit,
        )
    elif tier == "des":
        from ..balancing import SingleQueue
        from ..cluster import Cluster
        from ..datacenter import DatacenterRouter, node_profile

        # The nanopu hierarchy is racksched routing on the nanopu node
        # profile: the DES runs the profile's scaled chip config/costs,
        # the exact scenario the fast tier's probe calibrated against.
        profile = node_profile(
            "nanopu" if hierarchy == "nanopu" else topology.profile.name
        )
        cluster = Cluster(
            num_nodes=topology.num_nodes,
            scheme_factory=SingleQueue,
            config=profile.chip_config(),
            costs=profile.costs(),
            seed=seed,
            router=DatacenterRouter(
                topology, hierarchy=hierarchy, policy=policy, skew=skew
            ),
            fabric=topology.fabric(),
            speed_factors=list(topology.speed_factors),
            faults=faults,
        )
        result = cluster.run(per_node_mrps=mrps, requests_per_node=requests)
    else:
        raise ValueError(f"unknown tier {tier!r} for ext-datacenter")
    row: Dict[str, object] = {
        "key": key,
        "hierarchy": hierarchy,
        "policy": policy,
        "tier": tier,
        "p50_ns": float(result.aggregate.p50),
        "p99_ns": float(result.p99_ns),
        "mean_ns": float(result.aggregate.mean),
        "tput_mrps": float(result.total_throughput_mrps),
        "holds": int(audit["holds"]) if audit is not None else None,
        "max_outstanding": (
            int(audit["max_outstanding"]) if audit is not None else None
        ),
    }
    if faulted:
        row["offered"] = int(result.offered)
        row["completed"] = int(result.completed)
        row["lost"] = int(result.lost)
        row["goodput_mrps"] = float(result.goodput_mrps)
        # Per-node availability: the fleet mean (outage cost spread
        # over the whole fleet) and the min (the crashed rack itself).
        row["availability"] = (
            sum(result.availability) / len(result.availability)
            if result.availability
            else 1.0
        )
        row["availability_min"] = (
            min(result.availability) if result.availability else 1.0
        )
    return row


def _fmt_holds(row: Dict[str, object]) -> str:
    """ToR-hold column: count on the fast tier, "-" on the DES (the
    DES counterpart binds immediately; no holds exist to count)."""
    return "-" if row["holds"] is None else str(row["holds"])


def run_datacenter(
    profile: str = "quick",
    seed: int = 0,
    workers: Optional[int] = None,
    engine: str = "auto",
) -> ExperimentResult:
    """Sweep hierarchy x spine policy x skew x heterogeneity x faults.

    ``engine="auto"`` resolves through the capability matrix: the
    ``hierarchy`` capability pins it to the per-RPC tiers, so auto
    lands on ``fast`` at every fleet size (explicitly requesting
    ``fluid`` raises with the supported alternatives). ``engine="des"``
    runs the ground-truth router over the hierarchical fabric.
    """
    from ..fastpath import resolve_engine

    prof = get_profile(profile)
    num_racks, rack_size = DC_FLEETS.get(prof.name, DC_FLEETS["quick"])
    num_nodes = num_racks * rack_size
    base = max(prof.arch_requests // 2, 1_500)
    requests = _requests_per_node(base, num_nodes)
    resolved = resolve_engine(engine, num_nodes, hierarchy=True)

    tasks: List[_Task] = []
    labels: List[str] = []

    def _add(
        key: str,
        *,
        racks: int = num_racks,
        size: int = rack_size,
        old_racks: int = 0,
        hierarchy: str,
        policy: str,
        skew: float,
        tier: Optional[str] = None,
        faulted: bool = False,
    ) -> None:
        nodes = racks * size
        tasks.append(
            (
                key,
                racks,
                size,
                old_racks,
                hierarchy,
                policy,
                skew,
                DC_MRPS,
                _requests_per_node(base, nodes),
                task_seed("ext-datacenter", key, 0, seed),
                tier if tier is not None else resolved,
                faulted,
            )
        )
        labels.append(key)

    # 1. Main table: hierarchy x spine policy at the hot-rack skew,
    # plus the nanopu node-profile row.
    for hierarchy in DC_HIERARCHIES:
        for policy in DC_POLICIES:
            _add(f"main/{hierarchy}/{policy}", hierarchy=hierarchy,
                 policy=policy, skew=DC_SKEW)
    _add("main/nanopu/jsq2", hierarchy="nanopu", policy="jsq2", skew=DC_SKEW)

    # 2. Skew ladder: client-side flat vs in-network two-layer.
    for skew in DC_SKEWS:
        for hierarchy in ("flat", "racksched"):
            _add(f"skew/{hierarchy}/{skew:g}", hierarchy=hierarchy,
                 policy="jsq2", skew=skew)

    # 3. Mixed-generation fleet: capacity-aware SED vs load-only JSQ(2)
    # vs random, racksched hierarchy, no popularity skew (isolating the
    # speed heterogeneity).
    old_racks = max(1, int(num_racks * OLD_RACK_FRACTION))
    for policy in DC_POLICIES:
        _add(f"hetero/{policy}", old_racks=old_racks,
             hierarchy="racksched", policy=policy, skew=0.0)

    # 4. Scale rungs: does the two-layer advantage survive at 1024?
    rungs = DC_SCALE_RUNGS.get(prof.name, DC_SCALE_RUNGS["quick"])
    for nodes in rungs:
        for hierarchy in ("flat", "racksched"):
            _add(f"scale/{nodes}/{hierarchy}", racks=nodes // 16, size=16,
                 hierarchy=hierarchy, policy="jsq2", skew=DC_SKEW)

    # 5. Correlated whole-rack power loss (flat vs racksched): the
    # schedulers are deliberately not liveness-aware — a crashed rack
    # stops accruing outstanding work, so load-aware spines keep
    # steering into it and the drops measure that blind spot.
    for hierarchy in ("flat", "racksched"):
        _add(f"fault/{hierarchy}", hierarchy=hierarchy, policy="jsq2",
             skew=0.0, faulted=True)

    # 6. DES cross-check pairs on the small sub-critical fleet
    # (quick/full, fast runs only): common random numbers per pair.
    check = resolved == "fast" and prof.name != "smoke"
    if check:
        for hierarchy, policy in CHECK_POINTS:
            for tier in ("des", "fast"):
                key = f"check/{hierarchy}/{policy}/{tier}"
                tasks.append(
                    (
                        key,
                        CHECK_RACKS,
                        CHECK_RACK_SIZE,
                        0,
                        hierarchy,
                        policy,
                        CHECK_SKEW,
                        CHECK_MRPS,
                        CHECK_REQUESTS,
                        task_seed(
                            "ext-datacenter",
                            f"check/{hierarchy}/{policy}",
                            0,
                            seed,
                        ),
                        tier,
                        False,
                    )
                )
                labels.append(key)

    outcome = map_points(
        _run_datacenter_task,
        tasks,
        workers=workers,
        labels=labels,
        progress_label="ext-datacenter",
    )
    by_key: Dict[str, Dict[str, object]] = {}
    for task, row, wall_s in zip(tasks, outcome.results, outcome.task_wall_s):
        if row is None:
            raise RuntimeError(
                f"ext-datacenter point {task[0]!r} failed: "
                f"{outcome.findings()}"
            )
        row["wall_s"] = float(wall_s) if wall_s is not None else float("nan")
        by_key[task[0]] = row

    tables: List[str] = []
    findings: List[str] = []
    data: Dict[str, object] = {
        "fleet": {"num_racks": num_racks, "rack_size": rack_size,
                  "num_nodes": num_nodes},
        "engine": resolved,
        "points": by_key,
    }

    # 1. Main table (wall clocks ride below as strip-able " took "
    # lines, the repo's cross-worker determinism convention).
    main_rows = []
    wall_lines = []
    main_keys = [
        f"main/{hierarchy}/{policy}"
        for hierarchy in DC_HIERARCHIES
        for policy in DC_POLICIES
    ] + ["main/nanopu/jsq2"]
    for key in main_keys:
        row = by_key[key]
        main_rows.append(
            [row["hierarchy"], row["policy"], row["p50_ns"], row["p99_ns"],
             row["tput_mrps"], _fmt_holds(row)]
        )
        wall_lines.append(f"  [{key} took {row['wall_s']:.3f}s]")
    tables.append(
        format_table(
            ["hierarchy", "spine policy", "p50 (ns)", "p99 (ns)",
             "tput (MRPS)", "ToR holds"],
            main_rows,
            title=(
                f"{num_nodes}-node fleet ({num_racks} racks x {rack_size}),"
                f" {DC_MRPS:g} MRPS/client, rack skew {DC_SKEW:g}"
                f" (engine={resolved})"
            ),
        )
        + "\n"
        + "\n".join(wall_lines)
    )

    random_p99 = float(by_key["main/racksched/random"]["p99_ns"])
    jsq2_p99 = float(by_key["main/racksched/jsq2"]["p99_ns"])
    data["spine_advantage"] = random_p99 / jsq2_p99
    findings.append(
        f"a load-aware spine absorbs the hot rack: racksched+jsq2 p99 is "
        f"{random_p99 / jsq2_p99:.1f}x lower than racksched+random "
        f"({jsq2_p99:.0f} vs {random_p99:.0f} ns)"
    )
    nanopu_row = by_key["main/nanopu/jsq2"]
    racksched_row = by_key["main/racksched/jsq2"]
    data["nanopu_p50_ratio"] = (
        float(racksched_row["p50_ns"]) / float(nanopu_row["p50_ns"])
    )
    findings.append(
        f"nanopu NI-bypass nodes cut p50 {racksched_row['p50_ns']:.0f} -> "
        f"{nanopu_row['p50_ns']:.0f} ns "
        f"({data['nanopu_p50_ratio']:.2f}x) at identical routing"
    )
    jbsq_row = by_key["main/jbsq/jsq2"]
    findings.append(
        f"JBSQ(k) bounds per-server queues (max outstanding "
        f"{jbsq_row['max_outstanding'] if jbsq_row['max_outstanding'] is not None else '-'}"
        f", {_fmt_holds(jbsq_row)} ToR holds) at p99 within "
        f"{abs(float(jbsq_row['p99_ns']) / jsq2_p99 - 1.0):.1%} of "
        "unbounded racksched"
    )

    # 2. Skew ladder.
    skew_rows = []
    data["skew_ladder"] = {}
    for skew in DC_SKEWS:
        flat_row = by_key[f"skew/flat/{skew:g}"]
        two_row = by_key[f"skew/racksched/{skew:g}"]
        ratio = float(flat_row["p99_ns"]) / float(two_row["p99_ns"])
        data["skew_ladder"][f"{skew:g}"] = ratio
        skew_rows.append(
            [f"{skew:g}", flat_row["p99_ns"], two_row["p99_ns"],
             f"{ratio:.2f}x"]
        )
    tables.append(
        format_table(
            ["rack skew", "flat p99 (ns)", "racksched p99 (ns)",
             "flat/racksched"],
            skew_rows,
            title="Skew ladder: client-side power-of-2 vs in-network "
                  "two-layer (both jsq2)",
        )
    )
    top_skew = f"{DC_SKEWS[-1]:g}"
    findings.append(
        f"at skew {top_skew} the in-network two-layer holds a "
        f"{data['skew_ladder'][top_skew]:.2f}x p99 edge over client-side "
        "power-of-2 (the spine sees rack aggregates; clients see 2 nodes)"
    )

    # 3. Heterogeneity.
    hetero_rows = []
    data["hetero"] = {}
    for policy in DC_POLICIES:
        row = by_key[f"hetero/{policy}"]
        data["hetero"][policy] = float(row["p99_ns"])
        hetero_rows.append(
            [policy, row["p50_ns"], row["p99_ns"], row["tput_mrps"]]
        )
    tables.append(
        format_table(
            ["spine policy", "p50 (ns)", "p99 (ns)", "tput (MRPS)"],
            hetero_rows,
            title=(
                f"Mixed-generation fleet: {old_racks}/{num_racks} racks at "
                f"{OLD_SPEED:g}x speed (racksched, skew 0)"
            ),
        )
    )
    findings.append(
        f"on the mixed-generation fleet capacity-aware sed holds p99 to "
        f"{data['hetero']['sed']:.0f} ns vs {data['hetero']['jsq2']:.0f} "
        f"(jsq2) and {data['hetero']['random']:.0f} (random) — "
        "slow racks need weighting, not just load counts"
    )

    # 4. Scale rungs.
    if rungs:
        scale_rows = []
        scale_walls = []
        data["scale"] = {}
        for nodes in rungs:
            flat_row = by_key[f"scale/{nodes}/flat"]
            two_row = by_key[f"scale/{nodes}/racksched"]
            ratio = float(flat_row["p99_ns"]) / float(two_row["p99_ns"])
            data["scale"][str(nodes)] = ratio
            scale_rows.append(
                [nodes, flat_row["p99_ns"], two_row["p99_ns"],
                 f"{ratio:.2f}x"]
            )
            for hierarchy in ("flat", "racksched"):
                row = by_key[f"scale/{nodes}/{hierarchy}"]
                scale_walls.append(
                    f"  [scale/{nodes}/{hierarchy} took "
                    f"{row['wall_s']:.3f}s]"
                )
        tables.append(
            format_table(
                ["nodes", "flat p99 (ns)", "racksched p99 (ns)",
                 "flat/racksched"],
                scale_rows,
                title=(
                    f"Scale rungs at skew {DC_SKEW:g} (jsq2; "
                    "16 nodes/rack)"
                ),
            )
            + "\n"
            + "\n".join(scale_walls)
        )
        top = rungs[-1]
        findings.append(
            f"the two-layer advantage survives at {top} nodes: "
            f"{data['scale'][str(top)]:.2f}x lower p99 than flat "
            "client-side routing"
        )

    # 5. Correlated rack failure.
    fault_rows = []
    data["faults"] = {}
    for hierarchy in ("flat", "racksched"):
        row = by_key[f"fault/{hierarchy}"]
        conserved = row["offered"] == row["completed"] + row["lost"]
        data["faults"][hierarchy] = {
            "offered": row["offered"],
            "completed": row["completed"],
            "lost": row["lost"],
            "availability": row["availability"],
            "availability_min": row["availability_min"],
            "goodput_mrps": row["goodput_mrps"],
            "conserved": conserved,
        }
        if not conserved:
            raise RuntimeError(
                f"ext-datacenter fault/{hierarchy} violates conservation: "
                f"offered {row['offered']} != completed {row['completed']} "
                f"+ lost {row['lost']}"
            )
        fault_rows.append(
            [hierarchy, row["offered"], row["completed"], row["lost"],
             f"{row['availability']:.4f}", row["goodput_mrps"]]
        )
    tables.append(
        format_table(
            ["hierarchy", "offered", "completed", "lost", "availability",
             "goodput (MRPS)"],
            fault_rows,
            title=(
                f"Whole-rack power loss (rack 0 down for "
                f"{FAULT_OUTAGE_FRACTION:.0%} of the run; jsq2, skew 0)"
            ),
        )
    )
    fault_two = data["faults"]["racksched"]
    findings.append(
        f"a correlated rack outage conserves work (offered = completed + "
        f"lost) and costs racksched {fault_two['lost']} RPCs "
        f"(availability {fault_two['availability']:.4f}) — the dead rack "
        "stops accruing outstanding work, so the load-aware spine keeps "
        "steering into it"
    )

    # 6. DES cross-check.
    if check:
        check_rows = []
        check_walls = []
        deltas: Dict[str, Dict[str, float]] = {}
        for hierarchy, policy in CHECK_POINTS:
            des_row = by_key[f"check/{hierarchy}/{policy}/des"]
            fast_row = by_key[f"check/{hierarchy}/{policy}/fast"]
            p50_delta = float(fast_row["p50_ns"]) / float(des_row["p50_ns"]) - 1.0
            p99_delta = float(fast_row["p99_ns"]) / float(des_row["p99_ns"]) - 1.0
            label = f"{hierarchy}+{policy}"
            deltas[label] = {"p50_delta": p50_delta, "p99_delta": p99_delta}
            check_rows.append(
                [label, des_row["p50_ns"], fast_row["p50_ns"],
                 f"{p50_delta:+.1%}", des_row["p99_ns"], fast_row["p99_ns"],
                 f"{p99_delta:+.1%}"]
            )
            check_walls.append(
                f"  [check/{label} des took {des_row['wall_s']:.3f}s, "
                f"fast took {fast_row['wall_s']:.3f}s]"
            )
        worst = max(
            max(abs(entry["p50_delta"]), abs(entry["p99_delta"]))
            for entry in deltas.values()
        )
        data["des_check"] = {
            "fleet": {"num_racks": CHECK_RACKS, "rack_size": CHECK_RACK_SIZE},
            "deltas": deltas,
            "worst_abs_delta": worst,
        }
        tables.append(
            format_table(
                ["hierarchy+policy", "des p50 (ns)", "fast p50 (ns)",
                 "p50 delta", "des p99 (ns)", "fast p99 (ns)", "p99 delta"],
                check_rows,
                title=(
                    f"Ground-truth cross-check on a sub-critical "
                    f"{CHECK_RACKS * CHECK_RACK_SIZE}-node fleet "
                    "(common random numbers)"
                ),
            )
            + "\n"
            + "\n".join(check_walls)
        )
        findings.append(
            f"fast-vs-des p50/p99 agreement across hierarchies is within "
            f"{worst:.1%} on the sub-critical cross-check fleet"
        )
    if resolved != "des":
        findings.append(
            f"engine={resolved}: sequential calendar-queue surrogate "
            "sharing the DES's scheduler objects (ground truth: "
            "--engine des)"
        )

    return ExperimentResult(
        "ext-datacenter",
        "Rack-of-racks hierarchy: in-network scheduler models "
        "(flat / racksched / jbsq / nanopu)",
        data=data,
        tables=tables,
        findings=findings,
    )
