"""Figure 8: hardware vs software 1×16 load balancing.

Both implement the theoretically optimal single-queue system; the
difference is dispatch. Hardware dispatch is NI-driven and
synchronization-free; software pulls from a shared queue under an MCS
lock, whose serialized hand-off caps dequeue throughput. The paper
reports 2.3–2.7× higher throughput under SLO for hardware across the
four synthetic distributions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import RpcValetSystem, make_system, sweep_many
from ..dists import SYNTHETIC_KINDS
from ..metrics import sweep_table
from .common import (
    ExperimentResult,
    calibrate_mean_service_ns,
    capacity_grid,
    get_profile,
)

__all__ = ["run_fig8"]


def run_fig8(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """All four synthetic distributions, 1×16 hardware vs software."""
    prof = get_profile(profile)
    findings: List[str] = []
    ratios: Dict[str, float] = {}
    data: Dict[str, object] = {}

    # Calibrate S̄ / SLO once on the hardware fixed configuration; the
    # four synthetic workloads share the same mean.
    mean_service = calibrate_mean_service_ns("synthetic-fixed", "1x16", seed)
    slo_ns = 10.0 * mean_service
    capacity_mrps = 16.0 / (mean_service / 1e3)
    # Software saturates at the MCS dequeue ceiling (~1/serialized
    # cost); add probe points just below it so its throughput under
    # SLO is resolved, not an artifact of the grid.
    from ..balancing import SoftwareSingleQueue

    software_ceiling_mrps = 1e3 / SoftwareSingleQueue().serialized_cost_ns
    loads = sorted(
        capacity_grid(capacity_mrps, prof.sweep_points)
        + [0.85 * software_ceiling_mrps, 0.95 * software_ceiling_mrps]
    )

    # All 4 distributions × {hw, sw} fan out in one map_points call.
    systems: Dict[str, RpcValetSystem] = {}
    for kind in SYNTHETIC_KINDS:
        workload = f"synthetic-{kind}"
        for scheme, suffix in (("1x16", "hw"), ("sw-1x16", "sw")):
            systems[f"{kind}_{suffix}"] = make_system(scheme, workload, seed=seed)
    sweeps = sweep_many(
        systems,
        loads,
        num_requests=prof.arch_requests,
        workers=workers,
        experiment="fig8",
        failures=findings,
    )

    for kind in SYNTHETIC_KINDS:
        hw_tput = sweeps[f"{kind}_hw"].throughput_under_slo(slo_ns)
        sw_tput = sweeps[f"{kind}_sw"].throughput_under_slo(slo_ns)
        if sw_tput > 0:
            ratios[kind] = hw_tput / sw_tput
            findings.append(
                f"{kind}: hw {hw_tput:.2f} vs sw {sw_tput:.2f} MRPS under SLO "
                f"-> {ratios[kind]:.2f}x"
            )
        else:
            ratios[kind] = float("inf")
            findings.append(f"{kind}: software never meets the SLO")

    data["sweeps"] = sweeps
    data["ratios"] = ratios
    data["slo_ns"] = slo_ns
    data["mean_service_ns"] = mean_service
    return ExperimentResult(
        "fig8",
        f"1x16 hardware vs software (MCS lock), SLO={slo_ns / 1e3:.1f}µs",
        data=data,
        tables=[
            sweep_table(
                list(sweeps.values()),
                load_label="offered MRPS",
                title="p99 (ns) vs achieved throughput (MRPS)",
            )
        ],
        findings=findings,
    )
