"""``ext-faults``: fault injection — crash rate x fabric noise x client robustness.

RPCValet balances load under ideal conditions; this driver asks what
its rack deployment looks like when things break: nodes crash and
recover, the fabric drops and duplicates messages, and clients fight
back with timeouts, retries, backoff, and hedging. Three classic
distributed-systems phenomena, reproduced deterministically on the
:mod:`repro.cluster` + :mod:`repro.faults` substrate:

1. **crash ladder** — rate-based node crash/recovery under JSQ(2)
   routing with heartbeat-driven failure detection and bounded
   retries: goodput must degrade *gracefully* (no cliff) as the crash
   rate rises, because suspected nodes leave the routing set and
   retries land elsewhere;
2. **retry storm** — an overloaded rack with a timeout inside the
   queueing tail: unbounded zero-backoff retries amplify server work
   and inflate the tail, while a bounded exponential-backoff budget
   sheds load and keeps the tail close to baseline — the classic
   metastable retry-storm failure, on demand;
3. **hedging** — duplicate-after-p95 requests cut the client-side p99
   at low load (they mask drop-induced timeouts) but near saturation
   the duplicates become pure overload: work amplifies and the tail
   gets *worse*.

Every run is telemetry-instrumented (``faults.nodes_down`` track,
retry/timeout counters, detection-latency histogram); the merged
snapshot rides ``data["telemetry"]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import format_table
from ..runner import map_points, task_seed
from .common import ExperimentResult, get_profile

__all__ = ["run_faults"]

#: Rack size for every scenario.
NUM_NODES = 4

#: Crash-ladder operating point: enough headroom that surviving nodes
#: can absorb a dead peer's traffic.
CRASH_MRPS = 18.0

#: Crash arrival rates per node (per second of simulated time).
CRASH_LADDER_HZ = (0.0, 6e3, 12e3, 24e3)
CRASH_OUTAGE_NS = 20_000.0

#: Retry-storm operating point: near the rack's ~30 MRPS/node HERD
#: saturation, with the timeout inside the queueing tail so spurious
#: timeouts ignite the feedback loop.
STORM_MRPS = 28.0
STORM_DROP = 0.04
STORM_TIMEOUT_NS = 2_000.0

#: Hedging operating points and the hedge trigger (~ no-fault p95).
HEDGE_LOW_MRPS = 12.0
HEDGE_HIGH_MRPS = 27.0
HEDGE_NS = 1_500.0
HEDGE_DROP = 0.02

#: One scenario: (key, mrps, plan_kwargs, retry_kwargs, suspect_after_ns).
_Scenario = Tuple[str, float, Tuple, Tuple, Optional[float]]


def _scenarios() -> List[_Scenario]:
    rows: List[_Scenario] = []
    ladder_retry = (
        ("timeout_ns", 10_000.0), ("max_retries", 2), ("backoff_ns", 2_000.0)
    )
    for rate in CRASH_LADDER_HZ:
        plan = (
            ("crash_rate_hz", rate), ("mean_outage_ns", CRASH_OUTAGE_NS)
        )
        rows.append(
            (f"crash/{rate:g}", CRASH_MRPS, plan, ladder_retry, 5_000.0)
        )
    storm_plan = (("drop_prob", STORM_DROP),)
    rows.append(
        ("storm/bounded", STORM_MRPS, storm_plan,
         (("timeout_ns", STORM_TIMEOUT_NS), ("max_retries", 2),
          ("backoff_ns", 6_000.0), ("backoff_factor", 2.0)), None)
    )
    rows.append(
        ("storm/unbounded", STORM_MRPS, storm_plan,
         (("timeout_ns", STORM_TIMEOUT_NS), ("max_retries", None),
          ("backoff_ns", 0.0)), None)
    )
    hedge_plan = (("drop_prob", HEDGE_DROP),)
    for load, name in ((HEDGE_LOW_MRPS, "low"), (HEDGE_HIGH_MRPS, "high")):
        for hedge in (None, HEDGE_NS):
            suffix = "hedge" if hedge is not None else "plain"
            rows.append(
                (f"hedge/{name}/{suffix}", load, hedge_plan,
                 (("timeout_ns", 15_000.0), ("max_retries", 3),
                  ("backoff_ns", 2_000.0), ("hedge_ns", hedge)), None)
            )
    return rows


def _run_faults_task(task) -> Dict[str, object]:
    """One fault-injected cluster run (pool-safe module function)."""
    (key, mrps, plan_kwargs, retry_kwargs, suspect_after_ns, requests,
     seed) = task
    from ..cluster import Cluster
    from ..faults import FaultPlan, RetryConfig
    from ..rack import RackRouter

    cluster = Cluster(
        num_nodes=NUM_NODES,
        seed=seed,
        router=RackRouter(
            "jsq2", "piggyback", suspect_after_ns=suspect_after_ns
        ),
        faults=FaultPlan(**dict(plan_kwargs)),
        retry=RetryConfig(**dict(retry_kwargs)),
        telemetry=True,
    )
    result = cluster.run(per_node_mrps=mrps, requests_per_node=requests)
    stats = result.fault_stats
    return {
        "key": key,
        "offered": result.offered,
        "lost": result.lost,
        "goodput_fraction": result.goodput_fraction,
        "goodput_mrps": result.goodput_mrps,
        "tput_mrps": result.total_throughput_mrps,
        "work_amplification": (
            result.total_throughput_mrps / result.goodput_mrps
            if result.goodput_mrps > 0
            else float("nan")
        ),
        "e2e_p99_ns": result.e2e.p99,
        "e2e_mean_ns": result.e2e.mean,
        "srv_p99_ns": result.p99_ns,
        "srv_mean_ns": result.aggregate.mean,
        "availability_min": min(result.availability),
        "crashes": stats.crashes,
        "recoveries": stats.recoveries,
        "timeouts": stats.timeouts,
        "retries": stats.retries,
        "hedges": stats.hedges,
        "duplicates": stats.duplicate_completions,
        "msg_drops": stats.msg_drops,
        "suspicions": stats.suspicions,
        "false_suspicions": stats.false_suspicions,
        "mean_detection_ns": stats.mean_detection_ns,
        "telemetry": result.telemetry,
    }


def run_faults(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Fault-injection sweep: crashes, retry storms, hedging."""
    from ..telemetry import merge_snapshots

    prof = get_profile(profile)
    requests = max(prof.arch_requests // 2, 1_500)
    scenarios = _scenarios()
    tasks = []
    for key, mrps, plan_kwargs, retry_kwargs, suspect in scenarios:
        tasks.append(
            (key, mrps, plan_kwargs, retry_kwargs, suspect, requests,
             task_seed("ext-faults", key, 0, seed))
        )
    outcome = map_points(
        _run_faults_task,
        tasks,
        workers=workers,
        labels=[task[0] for task in tasks],
        progress_label="ext-faults",
    )
    by_key: Dict[str, Dict[str, object]] = {}
    for task, row in zip(tasks, outcome.results):
        if row is None:
            raise RuntimeError(
                f"fault scenario {task[0]!r} failed: {outcome.findings()}"
            )
        by_key[task[0]] = row

    tables: List[str] = []
    findings: List[str] = []
    data: Dict[str, object] = {}

    # 1. Crash ladder: graceful goodput degradation.
    ladder = [by_key[f"crash/{rate:g}"] for rate in CRASH_LADDER_HZ]
    data["crash_ladder"] = {
        f"{rate:g}": row for rate, row in zip(CRASH_LADDER_HZ, ladder)
    }
    tables.append(
        format_table(
            ["crash rate (/s/node)", "goodput frac", "e2e p99 (ns)",
             "min avail", "crashes", "suspicions", "mean detect (ns)"],
            [
                [f"{rate:g}", row["goodput_fraction"], row["e2e_p99_ns"],
                 row["availability_min"], row["crashes"], row["suspicions"],
                 row["mean_detection_ns"]]
                for rate, row in zip(CRASH_LADDER_HZ, ladder)
            ],
            title=(
                f"Crash ladder — JSQ(2) + piggyback + failure detector, "
                f"{NUM_NODES} nodes at {CRASH_MRPS:g} MRPS each, "
                f"{CRASH_OUTAGE_NS / 1e3:g}µs mean outage, retry budget 2"
            ),
        )
    )
    fractions = [float(row["goodput_fraction"]) for row in ladder]
    worst_step = max(
        earlier - later for earlier, later in zip(fractions, fractions[1:])
    ) if len(fractions) > 1 else 0.0
    findings.append(
        "goodput degrades gracefully with crash rate (no cliff): "
        + " -> ".join(
            f"{rate:g}/s {frac:.3f}" for rate, frac
            in zip(CRASH_LADDER_HZ, fractions)
        )
        + f" (largest single-step drop {worst_step:.3f}); suspected nodes "
        "leave the routing set and bounded retries land elsewhere"
    )

    # 2. Retry storm: bounded backoff vs unbounded zero-backoff.
    bounded = by_key["storm/bounded"]
    storm = by_key["storm/unbounded"]
    data["storm"] = {"bounded": bounded, "unbounded": storm}
    tables.append(
        format_table(
            ["retry policy", "srv p99 (ns)", "e2e p99 (ns)", "work amp",
             "retries", "timeouts", "lost"],
            [
                ["bounded (2, exp backoff)", bounded["srv_p99_ns"],
                 bounded["e2e_p99_ns"], bounded["work_amplification"],
                 bounded["retries"], bounded["timeouts"], bounded["lost"]],
                ["unbounded, no backoff", storm["srv_p99_ns"],
                 storm["e2e_p99_ns"], storm["work_amplification"],
                 storm["retries"], storm["timeouts"], storm["lost"]],
            ],
            title=(
                f"Retry storm — {STORM_MRPS:g} MRPS/node (near saturation), "
                f"{STORM_DROP:.0%} drops, {STORM_TIMEOUT_NS / 1e3:g}µs "
                "timeout inside the queueing tail"
            ),
        )
    )
    storm_inflation = float(storm["srv_p99_ns"]) / float(bounded["srv_p99_ns"])
    data["storm_inflation"] = storm_inflation
    findings.append(
        f"unbounded zero-backoff retries ignite a retry storm near "
        f"saturation: {storm_inflation:.2f}x server-side p99 inflation and "
        f"{float(storm['work_amplification']):.2f}x work amplification vs "
        f"{float(bounded['work_amplification']):.2f}x under a bounded "
        "exponential-backoff budget"
    )

    # 3. Hedging: tail win at low load, overload tax near saturation.
    hedge_rows = []
    data["hedging"] = {}
    for load_name, load in (("low", HEDGE_LOW_MRPS), ("high", HEDGE_HIGH_MRPS)):
        plain = by_key[f"hedge/{load_name}/plain"]
        hedged = by_key[f"hedge/{load_name}/hedge"]
        data["hedging"][load_name] = {"plain": plain, "hedge": hedged}
        for label, row in (("off", plain), ("on", hedged)):
            hedge_rows.append(
                [f"{load:g} MRPS, hedge {label}", row["e2e_p99_ns"],
                 row["work_amplification"], row["hedges"], row["duplicates"]]
            )
    tables.append(
        format_table(
            ["operating point", "e2e p99 (ns)", "work amp", "hedges",
             "dup completions"],
            hedge_rows,
            title=(
                f"Hedged requests (duplicate after {HEDGE_NS / 1e3:g}µs "
                f"~ p95) under {HEDGE_DROP:.0%} message drops"
            ),
        )
    )
    low_win = (
        float(data["hedging"]["low"]["plain"]["e2e_p99_ns"])
        / float(data["hedging"]["low"]["hedge"]["e2e_p99_ns"])
    )
    high_cost = (
        float(data["hedging"]["high"]["hedge"]["e2e_p99_ns"])
        / float(data["hedging"]["high"]["plain"]["e2e_p99_ns"])
    )
    data["hedge_low_win"] = low_win
    data["hedge_high_cost"] = high_cost
    findings.append(
        f"hedging cuts the client p99 {low_win:.1f}x at low load (the hedge "
        "masks drop-induced timeouts) but near saturation the duplicates are "
        f"pure overload: p99 gets {high_cost:.1f}x worse and server work "
        f"amplifies "
        f"{float(data['hedging']['high']['hedge']['work_amplification']):.2f}x"
    )

    data["telemetry"] = merge_snapshots(
        by_key[task[0]].pop("telemetry") for task in tasks
    )
    return ExperimentResult(
        "ext-faults",
        "Fault injection: crashes, retry storms, and hedged requests",
        data=data,
        tables=tables,
        findings=findings,
    )
