"""``python -m repro.experiments`` entry point."""

import sys

from .cli import main

sys.exit(main())
