"""The paper's headline claims (§1, abstract) in one run.

* RPCValet (1×16) improves throughput under tight SLOs by up to 1.4×
  over current hardware load distribution (16×1);
* reduces pre-saturation tail latency by up to 4×;
* outperforms software-based load distribution by 2.3–2.7×;
* performs within 3–15% of the theoretically optimal 1×16 model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics import format_table
from .common import ExperimentResult
from .fig7 import run_fig7c
from .fig8 import run_fig8
from .fig9 import model_vs_simulation

__all__ = ["run_headline"]


def run_headline(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Measure each headline claim and report paper-vs-measured."""
    rows: List[List[object]] = []
    data: Dict[str, float] = {}

    # -- claim 1: up to 1.4x over 16x1 under SLO (GEV is the paper's max).
    fig7c = run_fig7c(profile, seed, kinds=("fixed", "gev"), workers=workers)
    for kind in ("fixed", "gev"):
        sweeps = fig7c.data["sweeps"][kind]
        slo_ns = fig7c.data[f"slo_ns_{kind}"]
        one = sweeps[f"1x16_{kind}"].throughput_under_slo(slo_ns)
        partitioned = sweeps[f"16x1_{kind}"].throughput_under_slo(slo_ns)
        ratio = one / partitioned if partitioned > 0 else float("inf")
        data[f"tput_ratio_vs_16x1_{kind}"] = ratio
        paper = "1.2x" if kind == "fixed" else "1.4x"
        rows.append([f"1x16 vs 16x1 under SLO ({kind})", paper, f"{ratio:.2f}x"])

    # -- claim 2: up to 4x lower tail before saturation (GEV).
    # Compare per load point, restricted to points BOTH schemes still
    # sustain (achieved ≈ offered): past its own saturation 16x1's tail
    # diverges without bound and any ratio is meaningless.
    sweeps = fig7c.data["sweeps"]["gev"]
    one_sweep = sweeps["1x16_gev"]
    part_sweep = sweeps["16x1_gev"]
    ratios = []
    for one_point, part_point in zip(one_sweep.points, part_sweep.points):
        sustained = (
            one_point.achieved_throughput >= 0.97 * one_point.offered_load
            and part_point.achieved_throughput >= 0.97 * part_point.offered_load
        )
        if sustained and one_point.p99 > 0:
            ratios.append(part_point.p99 / one_point.p99)
    tail_ratio = max(ratios) if ratios else float("nan")
    data["tail_ratio_before_saturation"] = tail_ratio
    rows.append(
        ["16x1/1x16 p99 before saturation (gev)", "up to 4x", f"{tail_ratio:.2f}x"]
    )

    # -- claim 3: 2.3-2.7x over software.
    fig8 = run_fig8(profile, seed, workers=workers)
    ratios = fig8.data["ratios"]
    finite = [ratio for ratio in ratios.values() if ratio != float("inf")]
    if finite:
        low, high = min(finite), max(finite)
        data["sw_ratio_min"], data["sw_ratio_max"] = low, high
        rows.append(
            ["1x16 hw vs sw under SLO", "2.3-2.7x", f"{low:.2f}-{high:.2f}x"]
        )

    # -- claim 4: within 3-15% of the theoretical model.
    gaps = {}
    for kind in ("fixed", "gev"):
        panel = model_vs_simulation(kind, profile, seed, workers=workers)
        gaps[kind] = panel["worst_gap"]
    data["model_gap_fixed"] = gaps["fixed"]
    data["model_gap_gev"] = gaps["gev"]
    rows.append(
        [
            "gap to theoretical 1x16 (fixed/gev)",
            "3%-15%",
            f"{gaps['fixed'] * 100:.0f}%/{gaps['gev'] * 100:.0f}%",
        ]
    )

    table = format_table(
        ["claim", "paper", "measured"], rows, title="Headline claims"
    )
    return ExperimentResult(
        "headline",
        "Paper headline claims vs this reproduction",
        data=data,
        tables=[table],
    )
