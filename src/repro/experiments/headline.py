"""The paper's headline claims (§1, abstract) in one run.

* RPCValet (1×16) improves throughput under tight SLOs by up to 1.4×
  over current hardware load distribution (16×1);
* reduces pre-saturation tail latency by up to 4×;
* outperforms software-based load distribution by 2.3–2.7×;
* performs within 3–15% of the theoretically optimal 1×16 model.

``engine="fast"`` (the default) re-measures the three scheme-vs-scheme
claims on the :mod:`repro.fastpath` single-chip surrogates — FIFO
service processes whose fixed per-RPC cost is calibrated against the
DES (the Fig. 9 "Model" recipe) — while claim 4, which is *about* the
DES, always runs on it. ``engine="des"`` reproduces the original
all-DES measurement bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics import format_table
from .common import ExperimentResult
from .fig7 import run_fig7c
from .fig8 import run_fig8
from .fig9 import model_vs_simulation

__all__ = ["run_headline"]


def _sustained_tail_ratio(one_sweep, part_sweep) -> float:
    """Max p99 ratio over load points BOTH schemes still sustain.

    Past its own saturation 16x1's tail diverges without bound and any
    ratio is meaningless, so points are kept only while achieved
    throughput tracks offered load (>= 97%) for both schemes.
    """
    ratios = []
    for one_point, part_point in zip(one_sweep.points, part_sweep.points):
        sustained = (
            one_point.achieved_throughput >= 0.97 * one_point.offered_load
            and part_point.achieved_throughput >= 0.97 * part_point.offered_load
        )
        if sustained and one_point.p99 > 0:
            ratios.append(part_point.p99 / one_point.p99)
    return max(ratios) if ratios else float("nan")


def _claims_1_2_fast(
    profile: str, seed: int, rows: List[List[object]], data: Dict[str, float]
) -> None:
    """Claims 1-2 via the fast tier, mirroring fig7c's recipe."""
    from ..dists import synthetic
    from ..fastpath import fast_scheme_sweep
    from .common import calibrate_mean_service_ns, capacity_grid, get_profile

    prof = get_profile(profile)
    sweeps_by_kind = {}
    for kind in ("fixed", "gev"):
        workload = f"synthetic-{kind}"
        # Same anchor as fig7c: S̄ measured on the DES 16x1 system.
        mean_service = calibrate_mean_service_ns(workload, "16x1", seed)
        capacity_mrps = 16.0 / (mean_service / 1e3)
        loads = capacity_grid(capacity_mrps, prof.sweep_points)
        slo_ns = 10.0 * mean_service
        sweeps = {
            scheme: fast_scheme_sweep(
                scheme,
                synthetic(kind),
                loads,
                prof.arch_requests,
                seed,
                mean_service,
                label=f"{scheme}_{kind}",
                experiment="fig7c",
            )
            for scheme in ("1x16", "16x1")
        }
        sweeps_by_kind[kind] = sweeps
        one = sweeps["1x16"].throughput_under_slo(slo_ns)
        partitioned = sweeps["16x1"].throughput_under_slo(slo_ns)
        ratio = one / partitioned if partitioned > 0 else float("inf")
        data[f"tput_ratio_vs_16x1_{kind}"] = ratio
        paper = "1.2x" if kind == "fixed" else "1.4x"
        rows.append([f"1x16 vs 16x1 under SLO ({kind})", paper, f"{ratio:.2f}x"])

    tail_ratio = _sustained_tail_ratio(
        sweeps_by_kind["gev"]["1x16"], sweeps_by_kind["gev"]["16x1"]
    )
    data["tail_ratio_before_saturation"] = tail_ratio
    rows.append(
        ["16x1/1x16 p99 before saturation (gev)", "up to 4x", f"{tail_ratio:.2f}x"]
    )


def _claim_3_fast(
    profile: str, seed: int, rows: List[List[object]], data: Dict[str, float]
) -> None:
    """Claim 3 via the fast tier, mirroring fig8's recipe."""
    from ..balancing import SoftwareSingleQueue
    from ..dists import SYNTHETIC_KINDS, synthetic
    from ..fastpath import fast_scheme_sweep
    from .common import calibrate_mean_service_ns, capacity_grid, get_profile

    prof = get_profile(profile)
    mean_service = calibrate_mean_service_ns("synthetic-fixed", "1x16", seed)
    slo_ns = 10.0 * mean_service
    capacity_mrps = 16.0 / (mean_service / 1e3)
    software_ceiling_mrps = 1e3 / SoftwareSingleQueue().serialized_cost_ns
    loads = sorted(
        capacity_grid(capacity_mrps, prof.sweep_points)
        + [0.85 * software_ceiling_mrps, 0.95 * software_ceiling_mrps]
    )
    ratios: Dict[str, float] = {}
    for kind in SYNTHETIC_KINDS:
        hw_tput, sw_tput = (
            fast_scheme_sweep(
                scheme,
                synthetic(kind),
                loads,
                prof.arch_requests,
                seed,
                mean_service,
                label=f"{kind}_{suffix}",
                experiment="fig8",
            ).throughput_under_slo(slo_ns)
            for scheme, suffix in (("1x16", "hw"), ("sw-1x16", "sw"))
        )
        ratios[kind] = hw_tput / sw_tput if sw_tput > 0 else float("inf")
    finite = [ratio for ratio in ratios.values() if ratio != float("inf")]
    if finite:
        low, high = min(finite), max(finite)
        data["sw_ratio_min"], data["sw_ratio_max"] = low, high
        rows.append(
            ["1x16 hw vs sw under SLO", "2.3-2.7x", f"{low:.2f}-{high:.2f}x"]
        )


def run_headline(
    profile: str = "quick",
    seed: int = 0,
    workers: Optional[int] = None,
    engine: str = "fast",
) -> ExperimentResult:
    """Measure each headline claim and report paper-vs-measured.

    ``engine``: ``fast`` (default) measures the scheme-comparison
    claims on the calibrated single-chip surrogates; ``des`` runs every
    claim on the DES exactly as before. Claim 4 (model-vs-DES gap) is
    always DES. Tolerance bands for the fast tier are documented in
    EXPERIMENTS.md ("Engine tiers").
    """
    from ..fastpath import resolve_engine

    resolved = resolve_engine(engine, 1)
    rows: List[List[object]] = []
    data: Dict[str, float] = {}

    if resolved == "des":
        # -- claim 1: up to 1.4x over 16x1 under SLO (GEV is the paper's max).
        fig7c = run_fig7c(profile, seed, kinds=("fixed", "gev"), workers=workers)
        for kind in ("fixed", "gev"):
            sweeps = fig7c.data["sweeps"][kind]
            slo_ns = fig7c.data[f"slo_ns_{kind}"]
            one = sweeps[f"1x16_{kind}"].throughput_under_slo(slo_ns)
            partitioned = sweeps[f"16x1_{kind}"].throughput_under_slo(slo_ns)
            ratio = one / partitioned if partitioned > 0 else float("inf")
            data[f"tput_ratio_vs_16x1_{kind}"] = ratio
            paper = "1.2x" if kind == "fixed" else "1.4x"
            rows.append(
                [f"1x16 vs 16x1 under SLO ({kind})", paper, f"{ratio:.2f}x"]
            )

        # -- claim 2: up to 4x lower tail before saturation (GEV).
        sweeps = fig7c.data["sweeps"]["gev"]
        tail_ratio = _sustained_tail_ratio(
            sweeps["1x16_gev"], sweeps["16x1_gev"]
        )
        data["tail_ratio_before_saturation"] = tail_ratio
        rows.append(
            [
                "16x1/1x16 p99 before saturation (gev)",
                "up to 4x",
                f"{tail_ratio:.2f}x",
            ]
        )

        # -- claim 3: 2.3-2.7x over software.
        fig8 = run_fig8(profile, seed, workers=workers)
        ratios = fig8.data["ratios"]
        finite = [ratio for ratio in ratios.values() if ratio != float("inf")]
        if finite:
            low, high = min(finite), max(finite)
            data["sw_ratio_min"], data["sw_ratio_max"] = low, high
            rows.append(
                ["1x16 hw vs sw under SLO", "2.3-2.7x", f"{low:.2f}-{high:.2f}x"]
            )
    else:
        # Fast tier: same recipes, calibrated surrogate queues.
        _claims_1_2_fast(profile, seed, rows, data)
        _claim_3_fast(profile, seed, rows, data)

    # -- claim 4: within 3-15% of the theoretical model (always DES —
    # the claim is about the DES itself).
    gaps = {}
    for kind in ("fixed", "gev"):
        panel = model_vs_simulation(kind, profile, seed, workers=workers)
        gaps[kind] = panel["worst_gap"]
    data["model_gap_fixed"] = gaps["fixed"]
    data["model_gap_gev"] = gaps["gev"]
    rows.append(
        [
            "gap to theoretical 1x16 (fixed/gev)",
            "3%-15%",
            f"{gaps['fixed'] * 100:.0f}%/{gaps['gev'] * 100:.0f}%",
        ]
    )

    table = format_table(
        ["claim", "paper", "measured"], rows, title="Headline claims"
    )
    return ExperimentResult(
        "headline",
        "Paper headline claims vs this reproduction",
        data=data,
        tables=[table],
    )
