"""``ext-scale``: rack-size sweep 16 -> 1024 nodes across engine tiers.

The DES prices every NI pipeline stage of every RPC, which caps it at a
few nodes; the point of the tiered core (:mod:`repro.fastpath`) is that
rack-scale questions — does the JSQ(2) advantage survive at 1024
nodes? — become answerable in seconds. This driver sweeps node count
with ``engine="auto"``: the vectorized ``fast`` tier up to
:data:`~repro.fastpath.DEFAULT_FLUID_THRESHOLD` nodes, the mean-field
``fluid`` tier above, and reports per-point wall clock alongside the
latency figures so the cost/fidelity trade is visible in the output.

Two built-in checks keep the tiers honest:

* **tier agreement** — at the largest node count below the fluid
  threshold, every policy runs on *both* tiers and the p99/mean deltas
  are tabulated (the fluid error shrinks as 1/K, so this is its worst
  overlapping point);
* **DES cross-check** (quick/full profiles only) — the smallest rack
  also runs on the ground-truth DES, pinning the fast tier's
  calibration drift at exactly the scale where DES is still tractable.

A **shaped-load ladder** rides along: the same policies under a
diurnal cycle (mean :data:`SHAPED_MRPS` MRPS/node, peak 1.6x), one
rung per side of the tier threshold — the fast tier samples the
nonhomogeneous process per RPC, the fluid tier integrates the
transient mean-field ODE against the profile's λ(t). This is the
"256-node diurnal point in under a second per policy" headline of the
tiered engine work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import format_table
from ..runner import map_points, task_seed
from .common import ExperimentResult, get_profile

__all__ = ["run_scale", "NODE_GRIDS"]

#: Per-node offered load for every point (same mid-load operating
#: point as ``ext-rack``: queues form, nothing saturates).
SCALE_MRPS = 24.0

#: Routing policies swept at every rack size.
SCALE_POLICIES = ("random", "jsq2")

#: Node-count grids per profile. Every grid ends at 1024 — the
#: "1000-node rack point in seconds" the fluid tier exists for.
NODE_GRIDS: Dict[str, Tuple[int, ...]] = {
    "smoke": (16, 64, 1024),
    "quick": (16, 64, 128, 256, 1024),
    "full": (16, 32, 64, 128, 256, 512, 1024),
}

#: Shaped-load ladder: mean per-node rate under a diurnal cycle whose
#: peak (1.6x) stays below the ~29 MRPS per-node capacity, so the rack
#: breathes without saturating. One fast-tier rung and one
#: fluid-transient rung straddle the auto threshold.
SHAPED_MRPS = 14.0
SHAPED_AMPLITUDE = 0.6
SHAPED_NODES: Dict[str, Tuple[int, ...]] = {
    "smoke": (64, 256),
    "quick": (64, 256),
    "full": (64, 256, 1024),
}


def _shaped_process(mrps: float, requests: int):
    """Diurnal arrival process for one shaped rung (per-node rate)."""
    from ..popload import DiurnalRate, NonhomogeneousPoisson

    horizon_ns = requests / mrps * 1e3
    return NonhomogeneousPoisson(
        DiurnalRate(
            mean_rate_rps=mrps * 1e6,
            relative_amplitude=SHAPED_AMPLITUDE,
            period_ns=horizon_ns,
        )
    )


def _requests_per_node(base: int, num_nodes: int) -> int:
    """Shrink per-node horizon as the rack grows.

    The fast tier's cost is ~(nodes x requests); holding the *total*
    event count near the 16-node figure keeps every point comparable
    in confidence (aggregate sample size is constant) and in cost. The
    fluid tier ignores the horizon entirely.
    """
    return max(256, base * 16 // num_nodes)


def _run_scale_task(task) -> Dict[str, object]:
    """One rack point on one engine tier (pool-safe).

    A 7-tuple task is a stationary point; an 8th truthy element marks
    a shaped-ladder rung, which swaps the Poisson stream for the
    diurnal process of :func:`_shaped_process` on every tier (the
    fluid tier integrates the transient mean-field ODE against its
    λ(t); the per-RPC tiers sample the process itself).
    """
    key, num_nodes, policy, mrps, requests, seed, tier = task[:7]
    shaped = bool(task[7]) if len(task) > 7 else False
    process = _shaped_process(mrps, requests) if shaped else None
    if tier == "fluid":
        from ..fastpath import calibrated_scheme_profile, simulate_cluster_fluid
        from ..workloads import HerdWorkload

        workload = HerdWorkload()
        overhead_ns, _shift = calibrated_scheme_profile("1x16", 16)
        result = simulate_cluster_fluid(
            num_nodes,
            policy=policy,
            per_node_mrps=mrps,
            requests_per_node=requests,
            cores=16,
            mean_service_ns=workload.mean_processing_ns + overhead_ns,
            seed=seed,
            workload=workload,
            overhead_ns=overhead_ns,
            arrival_process=process,
            horizon_ns=requests / mrps * 1e3 if shaped else None,
        )
    elif tier == "fast":
        from ..fastpath import simulate_rack_fast

        result = simulate_rack_fast(
            num_nodes,
            policy=policy,
            per_node_mrps=mrps,
            requests_per_node=requests,
            seed=seed,
            arrival_process=process,
        )
    elif tier == "des":
        from ..balancing import SingleQueue
        from ..cluster import Cluster
        from ..rack import RackRouter

        cluster = Cluster(
            num_nodes=num_nodes,
            scheme_factory=SingleQueue,
            seed=seed,
            router=RackRouter(policy, "fresh"),
            arrival_process=process,
        )
        result = cluster.run(per_node_mrps=mrps, requests_per_node=requests)
    else:
        raise ValueError(f"unknown tier {tier!r}")
    return {
        "key": key,
        "nodes": num_nodes,
        "policy": policy,
        "tier": tier,
        "requests_per_node": requests,
        "p99_ns": float(result.p99_ns),
        "mean_ns": float(result.aggregate.mean),
        "tput_mrps": float(result.total_throughput_mrps),
    }


def run_scale(
    profile: str = "quick",
    seed: int = 0,
    workers: Optional[int] = None,
    engine: str = "auto",
) -> ExperimentResult:
    """Node-count sweep with per-point engine selection and wall clocks.

    ``engine="auto"`` (the default, and the point of the experiment)
    picks the tier per rack size. Forcing ``fast`` or ``fluid`` runs
    the whole grid on that tier; ``des`` is honored but only sensible
    on the smallest racks.
    """
    from ..fastpath import DEFAULT_FLUID_THRESHOLD, resolve_engine

    prof = get_profile(profile)
    base = max(prof.arch_requests // 2, 1_500)
    grid = NODE_GRIDS.get(prof.name, NODE_GRIDS["quick"])

    tasks: List[tuple] = []

    def _add(num_nodes: int, policy: str, tier: str) -> None:
        key = f"{num_nodes}/{policy}/{tier}"
        tasks.append(
            (
                key,
                num_nodes,
                policy,
                SCALE_MRPS,
                _requests_per_node(base, num_nodes),
                task_seed("ext-scale", key, 0, seed),
                tier,
            )
        )

    for num_nodes in grid:
        tier = resolve_engine(engine, num_nodes)
        for policy in SCALE_POLICIES:
            _add(num_nodes, policy, tier)

    # Tier-agreement overlap: both tiers at the largest sub-threshold
    # rack (only meaningful when auto would actually switch tiers).
    overlap_nodes = max(
        (n for n in grid if n <= DEFAULT_FLUID_THRESHOLD), default=None
    )
    if engine == "auto" and overlap_nodes is not None:
        for policy in SCALE_POLICIES:
            for tier in ("fast", "fluid"):
                if f"{overlap_nodes}/{policy}/{tier}" not in (
                    task[0] for task in tasks
                ):
                    _add(overlap_nodes, policy, tier)

    # DES cross-check at the smallest rack, skipped on smoke (it costs
    # more than the rest of the sweep combined).
    des_nodes = grid[0] if (prof.name != "smoke" and engine == "auto") else None
    if des_nodes is not None:
        for policy in SCALE_POLICIES:
            _add(des_nodes, policy, "des")

    # Shaped-load ladder: the same policies under a diurnal cycle, one
    # rung per side of the tier threshold. Resolution is
    # capability-aware — a deterministic-intensity profile runs on any
    # tier, so auto still picks by node count.
    shaped_grid = SHAPED_NODES.get(prof.name, SHAPED_NODES["quick"])
    shaped_probe = _shaped_process(SHAPED_MRPS, 1024)
    for num_nodes in shaped_grid:
        tier = resolve_engine(engine, num_nodes, arrival_process=shaped_probe)
        for policy in SCALE_POLICIES:
            key = f"shaped/{num_nodes}/{policy}/{tier}"
            tasks.append(
                (
                    key,
                    num_nodes,
                    policy,
                    SHAPED_MRPS,
                    _requests_per_node(base, num_nodes),
                    task_seed("ext-scale", key, 0, seed),
                    tier,
                    True,
                )
            )

    outcome = map_points(
        _run_scale_task,
        tasks,
        workers=workers,
        labels=[task[0] for task in tasks],
        progress_label="ext-scale",
    )
    by_key: Dict[str, Dict[str, object]] = {}
    for task, row, wall_s in zip(tasks, outcome.results, outcome.task_wall_s):
        if row is None:
            raise RuntimeError(
                f"scale point {task[0]!r} failed: {outcome.findings()}"
            )
        row["wall_s"] = float(wall_s) if wall_s is not None else float("nan")
        by_key[task[0]] = row

    tables: List[str] = []
    findings: List[str] = []
    data: Dict[str, object] = {
        "grid": list(grid),
        "points": by_key,
        "engine": engine,
    }

    # 1. The sweep itself. Wall clocks ride below the table as
    # "... took ...s" lines: the repo's determinism contract is that
    # driver stdout diffs clean across worker counts once lines
    # containing " took " are stripped, and timings are the one
    # legitimately non-deterministic output.
    sweep_rows = []
    wall_lines = []
    for num_nodes in grid:
        tier = resolve_engine(engine, num_nodes)
        for policy in SCALE_POLICIES:
            row = by_key[f"{num_nodes}/{policy}/{tier}"]
            sweep_rows.append(
                [num_nodes, policy, tier, row["p99_ns"], row["mean_ns"],
                 row["tput_mrps"]]
            )
            wall_lines.append(
                f"  [{num_nodes}/{policy} on {tier} "
                f"took {row['wall_s']:.3f}s]"
            )
    tables.append(
        format_table(
            ["nodes", "policy", "engine", "p99 (ns)", "mean (ns)",
             "tput (MRPS)"],
            sweep_rows,
            title=(
                f"Rack-size sweep at {SCALE_MRPS:g} MRPS/node "
                f"(engine={engine})"
            ),
        )
        + "\n"
        + "\n".join(wall_lines)
    )

    largest = grid[-1]
    largest_tier = resolve_engine(engine, largest)
    largest_wall = max(
        float(by_key[f"{largest}/{policy}/{largest_tier}"]["wall_s"])
        for policy in SCALE_POLICIES
    )
    data["largest_nodes"] = largest
    data["largest_point_wall_s"] = largest_wall
    findings.append(
        f"the {largest}-node rack point took {largest_wall:.2f}s per "
        f"policy on the {largest_tier} tier"
    )
    random_p99 = float(by_key[f"{largest}/random/{largest_tier}"]["p99_ns"])
    jsq2_p99 = float(by_key[f"{largest}/jsq2/{largest_tier}"]["p99_ns"])
    data["advantage_at_largest"] = random_p99 / jsq2_p99
    findings.append(
        f"the JSQ(2) advantage persists at {largest} nodes: "
        f"{random_p99 / jsq2_p99:.2f}x lower p99 than random spray "
        f"({jsq2_p99:.0f} vs {random_p99:.0f} ns)"
    )

    # 2. Tier agreement at the overlap rack size.
    if engine == "auto" and overlap_nodes is not None:
        overlap_rows = []
        data["overlap"] = {}
        for policy in SCALE_POLICIES:
            fast_row = by_key[f"{overlap_nodes}/{policy}/fast"]
            fluid_row = by_key[f"{overlap_nodes}/{policy}/fluid"]
            p99_delta = fluid_row["p99_ns"] / fast_row["p99_ns"] - 1.0
            mean_delta = fluid_row["mean_ns"] / fast_row["mean_ns"] - 1.0
            data["overlap"][policy] = {
                "nodes": overlap_nodes,
                "p99_delta": p99_delta,
                "mean_delta": mean_delta,
            }
            overlap_rows.append(
                [policy, fast_row["p99_ns"], fluid_row["p99_ns"],
                 f"{p99_delta:+.1%}", f"{mean_delta:+.1%}"]
            )
        tables.append(
            format_table(
                ["policy", "fast p99 (ns)", "fluid p99 (ns)", "p99 delta",
                 "mean delta"],
                overlap_rows,
                title=(
                    f"Tier agreement at {overlap_nodes} nodes (fluid's "
                    "worst overlapping size; error shrinks as 1/K)"
                ),
            )
        )
        worst = max(
            abs(entry["p99_delta"]) for entry in data["overlap"].values()
        )
        findings.append(
            f"fluid-vs-fast p99 agreement at {overlap_nodes} nodes is within "
            f"{worst:.1%} across policies"
        )

    # 3. DES cross-check on the smallest rack (quick/full).
    if des_nodes is not None:
        des_rows = []
        data["des_check"] = {}
        small_tier = resolve_engine(engine, des_nodes)
        for policy in SCALE_POLICIES:
            des_row = by_key[f"{des_nodes}/{policy}/des"]
            fast_row = by_key[f"{des_nodes}/{policy}/{small_tier}"]
            p99_delta = fast_row["p99_ns"] / des_row["p99_ns"] - 1.0
            data["des_check"][policy] = {
                "nodes": des_nodes,
                "p99_delta": p99_delta,
            }
            des_rows.append(
                [policy, des_row["p99_ns"], fast_row["p99_ns"],
                 f"{p99_delta:+.1%}"]
            )
        des_walls = "\n".join(
            f"  [{des_nodes}/{policy} des took "
            f"{by_key[f'{des_nodes}/{policy}/des']['wall_s']:.3f}s, "
            f"{small_tier} took "
            f"{by_key[f'{des_nodes}/{policy}/{small_tier}']['wall_s']:.3f}s]"
            for policy in SCALE_POLICIES
        )
        tables.append(
            format_table(
                ["policy", "des p99 (ns)", "fast p99 (ns)", "p99 delta"],
                des_rows,
                title=f"Ground-truth cross-check at {des_nodes} nodes",
            )
            + "\n"
            + des_walls
        )

    # 4. Shaped-load ladder: diurnal arrivals across the tier seam.
    shaped_rows = []
    shaped_walls = []
    data["shaped"] = {}
    for num_nodes in shaped_grid:
        tier = resolve_engine(engine, num_nodes, arrival_process=shaped_probe)
        for policy in SCALE_POLICIES:
            row = by_key[f"shaped/{num_nodes}/{policy}/{tier}"]
            data["shaped"][f"{num_nodes}/{policy}"] = {
                "tier": tier,
                "p99_ns": row["p99_ns"],
                "mean_ns": row["mean_ns"],
                "wall_s": row["wall_s"],
            }
            shaped_rows.append(
                [num_nodes, policy, tier, row["p99_ns"], row["mean_ns"],
                 row["tput_mrps"]]
            )
            shaped_walls.append(
                f"  [shaped/{num_nodes}/{policy} on {tier} "
                f"took {row['wall_s']:.3f}s]"
            )
    tables.append(
        format_table(
            ["nodes", "policy", "engine", "p99 (ns)", "mean (ns)",
             "tput (MRPS)"],
            shaped_rows,
            title=(
                f"Shaped-load ladder: diurnal cycle at {SHAPED_MRPS:g} "
                f"MRPS/node mean (peak {1 + SHAPED_AMPLITUDE:g}x, "
                f"engine={engine})"
            ),
        )
        + "\n"
        + "\n".join(shaped_walls)
    )
    top_shaped = shaped_grid[-1]
    top_tier = resolve_engine(engine, top_shaped, arrival_process=shaped_probe)
    top_wall = max(
        float(data["shaped"][f"{top_shaped}/{policy}"]["wall_s"])
        for policy in SCALE_POLICIES
    )
    findings.append(
        f"the {top_shaped}-node diurnal point took {top_wall:.2f}s per "
        f"policy on the {top_tier} tier"
    )

    return ExperimentResult(
        "ext-scale",
        "Rack-size scaling across engine tiers (fast -> fluid)",
        data=data,
        tables=tables,
        findings=findings,
    )
