"""Shared experiment infrastructure: profiles, results, loads.

Every experiment driver runs under a *profile*:

* ``quick`` — small request counts; minutes-scale total across all
  experiments; used by the test suite and pytest-benchmark harness;
* ``full`` — publication-scale counts for the numbers recorded in
  EXPERIMENTS.md.

Drivers return an :class:`ExperimentResult` whose ``table()`` renders
the same rows/series the paper's figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List

import numpy as np

__all__ = [
    "Profile",
    "PROFILES",
    "ExperimentResult",
    "load_grid",
    "calibrate_mean_service_ns",
]


@dataclass(frozen=True)
class Profile:
    """Request-count and grid-resolution knobs for one run."""

    name: str
    #: Requests per load point for the theoretical queueing models.
    queueing_requests: int
    #: Requests per load point for the architectural simulator.
    arch_requests: int
    #: Number of load points per sweep.
    sweep_points: int
    #: Warmup fraction trimmed from every measurement.
    warmup_fraction: float = 0.1


PROFILES: Dict[str, Profile] = {
    "smoke": Profile("smoke", queueing_requests=20_000, arch_requests=3_000, sweep_points=5),
    "quick": Profile("quick", queueing_requests=60_000, arch_requests=8_000, sweep_points=8),
    "full": Profile("full", queueing_requests=400_000, arch_requests=40_000, sweep_points=12),
}


def get_profile(profile: str) -> Profile:
    try:
        return PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {profile!r}; expected one of {sorted(PROFILES)}"
        ) from None


def load_grid(low: float, high: float, points: int) -> List[float]:
    """Evenly spaced load points in [low, high]."""
    if not 0 < low < high:
        raise ValueError(f"need 0 < low < high, got [{low!r}, {high!r}]")
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points!r}")
    return list(np.linspace(low, high, points))


def capacity_grid(capacity: float, points: int) -> List[float]:
    """Load points for saturation-seeking sweeps.

    Linear coverage of the low/mid range plus a dense cluster just
    below and at capacity — where throughput-under-SLO differences
    between schemes actually resolve (a coarse uniform grid makes two
    schemes that saturate at 0.92 and 0.99 of capacity look identical).
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity!r}")
    if points < 4:
        raise ValueError(f"need at least 4 points, got {points!r}")
    top_fractions = [0.88, 0.94, 1.0]
    low_points = max(points - len(top_fractions), 1)
    fractions = list(np.linspace(0.2, 0.8, low_points)) + top_fractions
    return [fraction * capacity for fraction in fractions]


@lru_cache(maxsize=None)
def calibrate_mean_service_ns(
    workload: str, scheme: str, seed: int, num_requests: int = 2_000
) -> float:
    """Measured S̄ for ``workload`` under ``scheme`` at light load.

    Several figure drivers (Fig. 7/8/9, headline) calibrate offered-load
    grids with an identical light-load probe run; memoizing on
    ``(workload, scheme, seed, num_requests)`` makes repeated figures in
    one process pay for it once. Keyed on the scheme because measured S̄
    includes scheme-imposed dequeue overheads.

    The probe routes through :func:`repro.runner.map_points` (as a
    single task) so it also consults the on-disk result cache across
    processes when caching is enabled.
    """
    from ..core import make_system
    from ..core.system import run_point_task
    from ..runner import map_points

    system = make_system(scheme, workload, seed=seed)
    outcome = map_points(
        run_point_task,
        [(system, 1.0, num_requests, 0.1, system.seed)],
        workers=1,
        labels=[f"calibrate {scheme}/{workload} (seed {seed})"],
        progress=False,
    )
    result = outcome.results[0]
    if result is None:
        raise RuntimeError(
            f"calibration run failed: {'; '.join(outcome.findings())}"
        )
    return result.mean_service_ns


@dataclass
class ExperimentResult:
    """Output of one experiment driver."""

    experiment_id: str
    title: str
    #: Structured payload (sweeps, ratios, ...), driver-specific.
    data: Dict[str, Any] = field(default_factory=dict)
    #: Pre-rendered tables, in print order.
    tables: List[str] = field(default_factory=list)
    #: Headline findings, e.g. "1x16 beats 16x1 by 1.21x under SLO".
    findings: List[str] = field(default_factory=list)

    def table(self) -> str:
        """All tables plus findings as one printable block."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.extend(self.tables)
        if self.findings:
            parts.append("Findings:")
            parts.extend(f"  - {finding}" for finding in self.findings)
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.table()
