"""``ext-tails``: span-traced tail attribution — *why* is p99 what it is?

Every other driver reports *that* the tail moved; this one explains
*where the nanoseconds went*. Each scenario runs a 4-node rack with
per-RPC span tracing enabled (:mod:`repro.tracing`), decomposes every
sampled RPC's end-to-end latency into the nine :data:`repro.tracing.PHASES`,
and attributes the p99 cohort's mean to phase groups:

1. **policy ladder** — random vs JSQ(2) vs SED under a fresh load
   signal: JSQ(2)'s p99 win over random is almost entirely a
   ``dispatch_wait`` reduction (shared-CQ head-of-line blocking — the
   phase RPCValet's NI-driven balancing attacks), not fabric or service
   time;
2. **signal staleness** — JSQ(2) on a periodic-broadcast signal:
   stale estimates send RPCs to already-busy nodes, and the erosion
   shows up in the same ``dispatch_wait`` phase the fresh signal
   removed;
3. **hedging under drops** — near saturation, a hedged client cuts
   timeout stalls but pays in *duplicate service*: the attribution's
   per-RPC duplicate-work column makes the saturation tax explicit.

Tracing instruments the discrete-event hot paths, so this experiment is
**DES-only**: ``engine="fast"``/``"fluid"``/``"auto"`` raise. Sampling
is counter-based (no RNG draws) and buffers merge in task order, so
reports are bit-identical at any ``--workers`` count.

``python -m repro.experiments.tails --out DIR`` additionally writes the
attribution report (JSON), a unified Perfetto file (span trees + counter
tracks), and a run manifest — the artifact bundle CI uploads.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from ..metrics import format_table
from ..runner import map_points, task_seed
from .common import ExperimentResult, get_profile

__all__ = ["run_tails", "main"]

#: Rack size for every scenario (DES tier only — see the engine gate).
NUM_NODES = 4

#: Policy-ladder operating point: busy enough that queues form and the
#: balancing policy matters, below the rack's HERD saturation.
POLICY_MRPS = 24.0

#: Staleness scenario: JSQ(2) fed by a periodic broadcast this stale.
STALE_PERIOD_NS = 10_000.0

#: Hedging scenario: near saturation with light fabric drops, hedge
#: fires after ~p95 (mirrors ext-faults' high-load hedging point).
HEDGE_MRPS = 27.0
HEDGE_DROP = 0.02
HEDGE_NS = 1_500.0

#: Phase groups for the cross-scenario table: the nine PHASES collapse
#: into six columns a reader can scan (grouped values still sum to e2e).
PHASE_GROUPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("client_wait", ("pre_launch", "credit_wait")),
    ("fabric", ("req_fabric", "reply_fabric")),
    ("ni", ("ni_pipeline", "cqe_delivery")),
    ("dispatch_wait", ("dispatch_wait",)),
    ("qp_wait", ("qp_wait",)),
    ("service", ("service",)),
)

#: One scenario: (key, mrps, policy, signal, plan_kwargs, retry_kwargs,
#: instrument) — kwargs as sorted tuples so tasks stay fingerprintable.
_Scenario = Tuple[str, float, str, str, Tuple, Tuple, bool]


def _scenarios() -> List[_Scenario]:
    rows: List[_Scenario] = []
    for policy in ("random", "jsq2", "sed"):
        # jsq2 is the flagship scenario: it also captures telemetry so
        # the artifact bundle's unified Perfetto file carries counter
        # tracks alongside the span trees.
        rows.append(
            (f"policy/{policy}", POLICY_MRPS, policy, "fresh", (), (),
             policy == "jsq2")
        )
    rows.append(
        ("stale/jsq2", POLICY_MRPS, "jsq2",
         f"broadcast:{STALE_PERIOD_NS:g}", (), (), False)
    )
    hedge_plan = (("drop_prob", HEDGE_DROP),)
    for hedge in (None, HEDGE_NS):
        suffix = "hedge" if hedge is not None else "plain"
        rows.append(
            (f"hedge/{suffix}", HEDGE_MRPS, "jsq2", "fresh", hedge_plan,
             (("timeout_ns", 15_000.0), ("max_retries", 3),
              ("backoff_ns", 2_000.0), ("hedge_ns", hedge)), False)
        )
    return rows


def _run_tails_task(task) -> Dict[str, object]:
    """One span-traced cluster run (pool-safe module function)."""
    (key, mrps, policy, signal, plan_kwargs, retry_kwargs, instrument,
     requests, seed) = task
    from ..cluster import Cluster
    from ..faults import FaultPlan, RetryConfig
    from ..rack import RackRouter
    from ..tracing import TraceConfig, attribute_tails, attribution_to_dict

    cluster = Cluster(
        num_nodes=NUM_NODES,
        seed=seed,
        router=RackRouter(policy, signal),
        faults=FaultPlan(**dict(plan_kwargs)) if plan_kwargs else None,
        retry=RetryConfig(**dict(retry_kwargs)) if retry_kwargs else None,
        telemetry=instrument,
        trace=TraceConfig(),
    )
    result = cluster.run(per_node_mrps=mrps, requests_per_node=requests)
    report = attribute_tails(result.spans)
    return {
        "key": key,
        "report": attribution_to_dict(report),
        "spans": result.spans,
        "srv_p99_ns": result.p99_ns,
        "e2e_p99_ns": (
            result.e2e.p99 if result.e2e is not None else float("nan")
        ),
        "lost": result.lost,
        "telemetry": result.telemetry,
    }


def _grouped(phase_ns: Dict[str, float]) -> Dict[str, float]:
    return {
        group: sum(phase_ns[phase] for phase in phases)
        for group, phases in PHASE_GROUPS
    }


def run_tails(
    profile: str = "quick",
    seed: int = 0,
    workers: Optional[int] = None,
    engine: str = "des",
) -> ExperimentResult:
    """Span-traced tail attribution across policies, staleness, hedging."""
    from ..fastpath import require_des

    require_des(
        "ext-tails",
        engine,
        NUM_NODES,
        "span tracing instruments the discrete-event hot paths",
    )

    prof = get_profile(profile)
    requests = max(prof.arch_requests // 4, 800)
    scenarios = _scenarios()
    tasks = []
    for key, mrps, policy, signal, plan, retry, instrument in scenarios:
        tasks.append(
            (key, mrps, policy, signal, plan, retry, instrument, requests,
             task_seed("ext-tails", key, 0, seed))
        )
    outcome = map_points(
        _run_tails_task,
        tasks,
        workers=workers,
        labels=[task[0] for task in tasks],
        progress_label="ext-tails",
    )
    by_key: Dict[str, Dict[str, object]] = {}
    for task, row in zip(tasks, outcome.results):
        if row is None:
            raise RuntimeError(
                f"tails scenario {task[0]!r} failed: {outcome.findings()}"
            )
        by_key[task[0]] = row

    tables: List[str] = []
    findings: List[str] = []
    data: Dict[str, object] = {"scenarios": by_key}

    # Cross-scenario p99-cohort decomposition: one row per scenario,
    # phase groups as columns. Every row's groups sum to its cohort mean.
    def cohort(key: str) -> dict:
        return by_key[key]["report"]["cohorts"]["p99"]

    rows = []
    for key, *_ in scenarios:
        c = cohort(key)
        groups = _grouped(c["phase_ns"])
        rows.append(
            [key, c["threshold_ns"], c["mean_e2e_ns"]]
            + [groups[group] for group, _ in PHASE_GROUPS]
            + [c["duplicate_service_ns"], c["retries"] + c["hedges"]]
        )
    tables.append(
        format_table(
            ["scenario", "p99 (ns)", "cohort mean (ns)"]
            + [f"{group} (ns)" for group, _ in PHASE_GROUPS]
            + ["dup service (ns)", "extra attempts"],
            rows,
            title=(
                f"p99-cohort phase attribution — {NUM_NODES} nodes, "
                f"policy ladder at {POLICY_MRPS:g} MRPS/node, hedging at "
                f"{HEDGE_MRPS:g} MRPS/node under {HEDGE_DROP:.0%} drops"
            ),
        )
    )

    # 1. Policy ladder: JSQ(2)'s win over random is dispatch_wait.
    random_c, jsq2_c, sed_c = (
        cohort("policy/random"), cohort("policy/jsq2"), cohort("policy/sed")
    )
    p99_win = random_c["threshold_ns"] / jsq2_c["threshold_ns"]
    dw_random = random_c["phase_ns"]["dispatch_wait"]
    dw_jsq2 = jsq2_c["phase_ns"]["dispatch_wait"]
    data["policy_p99_win"] = p99_win
    data["policy_dispatch_wait_cut_ns"] = dw_random - dw_jsq2
    findings.append(
        f"JSQ(2) beats random routing {p99_win:.2f}x at the p99: the "
        f"cohort's dispatch_wait collapses {dw_random:,.0f} -> "
        f"{dw_jsq2:,.0f} ns — the win is shared-CQ head-of-line wait, not "
        "fabric or service time"
    )
    findings.append(
        f"SED's p99 cohort spends {sed_c['phase_ns']['dispatch_wait']:,.0f} ns "
        f"in dispatch_wait vs JSQ(2)'s {dw_jsq2:,.0f} ns — with homogeneous "
        "nodes, expected-delay weighting adds nothing over queue depth"
    )

    # 2. Staleness: the same phase regrows under a stale signal.
    stale_c = cohort("stale/jsq2")
    stale_regrowth = stale_c["phase_ns"]["dispatch_wait"] - dw_jsq2
    data["stale_dispatch_wait_regrowth_ns"] = stale_regrowth
    findings.append(
        f"a {STALE_PERIOD_NS / 1e3:g}µs-stale broadcast signal gives back "
        f"{stale_regrowth:,.0f} ns of the dispatch_wait JSQ(2) removed "
        f"(p99 {jsq2_c['threshold_ns']:,.0f} -> "
        f"{stale_c['threshold_ns']:,.0f} ns): stale estimates route to "
        "already-busy nodes"
    )

    # 3. Hedging: what the hedge buys (timeout stalls) and what it
    # costs (duplicate server work), both per tail RPC.
    plain_c, hedged_c = cohort("hedge/plain"), cohort("hedge/hedge")
    plain_wait = _grouped(plain_c["phase_ns"])["client_wait"]
    hedged_wait = _grouped(hedged_c["phase_ns"])["client_wait"]
    data["hedge_dup_service_ns"] = hedged_c["duplicate_service_ns"]
    findings.append(
        f"hedging trades timeout stalls for duplicate work under "
        f"{HEDGE_DROP:.0%} drops: the un-hedged p99 cohort idles "
        f"{plain_wait:,.0f} ns client-side (timeout + retry backoff) vs "
        f"{hedged_wait:,.0f} ns hedged, moving p99 "
        f"{plain_c['threshold_ns']:,.0f} -> {hedged_c['threshold_ns']:,.0f} "
        f"ns while burning {hedged_c['duplicate_service_ns']:,.0f} ns of "
        f"duplicate server work per tail RPC "
        f"({hedged_c['hedges']:.2f} hedges/RPC)"
    )

    # Exemplar: the flagship scenario's slowest p99-cohort RPC, span by
    # span — "show me one" for the numbers above.
    exemplar_lines = jsq2_c["exemplar"] or []
    tables.append(
        "p99 exemplar (policy/jsq2):\n  "
        + "\n  ".join(exemplar_lines)
    )

    data["telemetry"] = by_key["policy/jsq2"]["telemetry"]
    return ExperimentResult(
        "ext-tails",
        "Tail attribution: span-traced phase decomposition of p99",
        data=data,
        tables=tables,
        findings=findings,
    )


def main(argv=None) -> int:
    """Run ext-tails and write the artifact bundle (report/trace/manifest)."""
    import argparse
    import json
    import pathlib
    import time

    parser = argparse.ArgumentParser(
        prog="repro-tails",
        description=(
            "Span-traced tail attribution; writes the attribution report, "
            "a unified Perfetto span trace, and a run manifest."
        ),
    )
    parser.add_argument(
        "--out", default="tails", metavar="DIR", help="output directory"
    )
    parser.add_argument("--profile", default="quick", help="request profile")
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (results identical at any count)",
    )
    args = parser.parse_args(argv)

    started = time.time()
    result = run_tails(
        profile=args.profile, seed=args.seed, workers=args.workers
    )
    print(result.table())

    directory = pathlib.Path(args.out)
    directory.mkdir(parents=True, exist_ok=True)
    scenarios = result.data["scenarios"]

    report_path = directory / "tails.attribution.json"
    report_path.write_text(
        json.dumps(
            {key: row["report"] for key, row in scenarios.items()}, indent=2
        )
    )
    print(f"[wrote {report_path}]")

    from ..telemetry import export_unified_trace

    flagship = scenarios["policy/jsq2"]
    trace_path = directory / "tails.spans.trace.json"
    events = export_unified_trace(
        trace_path, spans=flagship["spans"], telemetry=flagship["telemetry"]
    )
    print(f"[wrote {trace_path} ({events} events) — open at ui.perfetto.dev]")

    from .persistence import build_manifest

    buffer = flagship["spans"]
    manifest = build_manifest(
        "ext-tails",
        config={
            "profile": args.profile,
            "seed": args.seed,
            "workers": args.workers,
        },
        elapsed_s=time.time() - started,
        capture={
            "offered_rpcs": buffer.offered,
            "sampled_traces": buffer.sampled,
            "dropped_traces": buffer.dropped,
        },
    )
    manifest_path = directory / "tails.manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2))
    print(f"[manifest {manifest_path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
