"""``ext-rack``: two-level scheduling — policy x staleness x skew x scheme.

RPCValet answers the intra-server question (single-queue NI dispatch).
This driver asks the rack-level follow-on RackSched (OSDI'20) and RAIN
(2025) pose: when a *client-side* policy routes each RPC to one of K
RPCValet servers using (possibly stale) load signals, which policies
win, how fast does staleness destroy them, and does the paper's 1x16
per-node dispatch still matter?

Five probes, all on the :mod:`repro.cluster` substrate via
:class:`repro.rack.RackRouter`, fanned through the parallel runner with
deterministic per-scenario seeds:

1. **policy** — uniform random vs round-robin vs JSQ(2) vs SED with
   oracle-fresh signals on a homogeneous rack;
2. **staleness ladder** — JSQ(2) under fresh → piggybacked-on-replies →
   2µs broadcast → 10µs broadcast signals, against the
   staleness-immune random baseline;
3. **hot shard** — Zipf destination skew vs each policy (the scenario
   that breaks random spray);
4. **heterogeneous rack** — one node with half the cores; SED's
   capacity-awareness vs JSQ's obliviousness;
5. **per-node scheme** — 1x16 vs 16x1 inside each server, crossed with
   dumb/smart routing: the paper's intra-server claim at rack scale.

Every cluster run is telemetry-instrumented (per-node outstanding-load
gauges, router decision counters, staleness-error histograms); the
merged snapshot rides ``data["telemetry"]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import cross_node_imbalance, format_table, slowdown_factors
from ..runner import map_points, task_seed
from .common import ExperimentResult, get_profile

__all__ = ["run_rack"]

#: Rack size for every scenario.
NUM_NODES = 4

#: Mid-load operating point: ~80% of a 16-core node's ~30 MRPS HERD
#: saturation — queues form, but neither scheme saturates.
MID_LOAD_MRPS = 24.0

#: The heterogeneous rack runs at a rate the weak node can only survive
#: with capacity-aware routing.
HETERO_MRPS = 21.0

#: Core asymmetry: node 3 has half the cores.
HETERO_CORES = (16, 16, 16, 8)

#: Zipf exponent of the hot-shard scenario.
HOT_SKEW = 1.2

#: The staleness ladder, freshest first. Advantage over random routing
#: must erode monotonically down this list (asserted in tests).
STALENESS_LADDER = ("fresh", "piggyback", "broadcast:2000", "broadcast:10000")

#: One scenario: (key, policy, signal, skew, scheme, core_counts, mrps).
_Scenario = Tuple[str, str, str, float, str, Optional[Tuple[int, ...]], float]


def _scenarios(mrps: float = MID_LOAD_MRPS) -> List[_Scenario]:
    rows: List[_Scenario] = []
    for policy in ("random", "rr", "jsq2", "sed"):
        rows.append((f"policy/{policy}", policy, "fresh", 0.0, "1x16", None, mrps))
    for signal in STALENESS_LADDER[1:]:
        rows.append((f"ladder/{signal}", "jsq2", signal, 0.0, "1x16", None, mrps))
    for policy in ("random", "jsq2", "sed"):
        rows.append((f"skew/{policy}", policy, "fresh", HOT_SKEW, "1x16", None, mrps))
    for policy in ("random", "jsq2", "sed"):
        rows.append(
            (f"hetero/{policy}", policy, "fresh", 0.0, "1x16", HETERO_CORES,
             HETERO_MRPS)
        )
    for policy in ("random", "jsq2"):
        rows.append(
            (f"scheme/16x1/{policy}", policy, "fresh", 0.0, "16x1", None, mrps)
        )
    return rows


def _run_rack_task(task) -> Dict[str, object]:
    """One cluster run under one rack-scheduling scenario (pool-safe).

    A 10th tuple element selects the engine ("des"/"fast"); 9-tuples
    run the DES, so pre-engine task fingerprints (and their cached
    results) stay valid.
    """
    (key, policy, signal, skew, scheme, core_counts, mrps, requests, seed) = task[
        :9
    ]
    engine = task[9] if len(task) > 9 else "des"
    if engine == "fast":
        from ..fastpath import simulate_rack_fast

        result = simulate_rack_fast(
            NUM_NODES,
            policy=policy,
            signal=signal,
            skew=skew,
            scheme=scheme,
            core_counts=list(core_counts) if core_counts else None,
            per_node_mrps=mrps,
            requests_per_node=requests,
            seed=seed,
            telemetry=True,
        )
        return _rack_row(key, result)
    from ..balancing import Partitioned, SingleQueue
    from ..cluster import Cluster
    from ..rack import RackRouter

    factory = {"1x16": SingleQueue, "16x1": Partitioned}[scheme]
    cluster = Cluster(
        num_nodes=NUM_NODES,
        scheme_factory=factory,
        seed=seed,
        router=RackRouter(policy, signal, skew=skew),
        core_counts=list(core_counts) if core_counts else None,
        telemetry=True,
    )
    result = cluster.run(per_node_mrps=mrps, requests_per_node=requests)
    return _rack_row(key, result)


def _rack_row(key: str, result) -> Dict[str, object]:
    """The driver's per-scenario row, engine-agnostic."""
    stats = result.router_stats
    load_imbalance = cross_node_imbalance(
        [count or 1e-12 for count in result.per_node_completed]
    )
    return {
        "key": key,
        "p99_ns": result.p99_ns,
        "mean_ns": result.aggregate.mean,
        "tput_mrps": result.total_throughput_mrps,
        "latency_imbalance": result.imbalance(),
        "slowdowns": slowdown_factors(
            [summary.p99 for summary in result.per_node]
        ),
        "load_cv": load_imbalance.cv,
        "max_stall": max(result.stall_fractions),
        "routed": stats.routed_fractions(),
        "signal_error": stats.mean_signal_error,
        "telemetry": result.telemetry,
    }


def run_rack(
    profile: str = "quick",
    seed: int = 0,
    workers: Optional[int] = None,
    engine: str = "fast",
) -> ExperimentResult:
    """Two-level scheduling sweep across RPCValet servers.

    ``engine`` selects the simulation tier (see EXPERIMENTS.md "Engine
    tiers"): ``fast`` (default) runs the DES-calibrated vectorized
    engine, ``des`` the bit-identical ground-truth tier. ``auto``
    resolves by rack size; the fluid tier has no stale-signal or
    hot-shard model, so it falls back to ``fast`` here.
    """
    from ..fastpath import resolve_engine
    from ..telemetry import merge_snapshots

    resolved = resolve_engine(engine, NUM_NODES)
    if resolved == "fluid":
        resolved = "fast"
    prof = get_profile(profile)
    requests = max(prof.arch_requests // 2, 1_500)
    scenarios = _scenarios()
    tasks = []
    for key, policy, signal, skew, scheme, cores, mrps in scenarios:
        task = (key, policy, signal, skew, scheme, cores, mrps, requests,
                task_seed("ext-rack", key, 0, seed))
        if resolved != "des":
            # Engine rides as a 10th element so DES fingerprints (and
            # their cached results) are unchanged from earlier versions.
            task = task + (resolved,)
        tasks.append(task)
    outcome = map_points(
        _run_rack_task,
        tasks,
        workers=workers,
        labels=[task[0] for task in tasks],
        progress_label="ext-rack",
    )
    by_key: Dict[str, Dict[str, object]] = {}
    for task, row in zip(tasks, outcome.results):
        if row is None:
            raise RuntimeError(
                f"rack scenario {task[0]!r} failed: {outcome.findings()}"
            )
        by_key[task[0]] = row

    tables: List[str] = []
    findings: List[str] = []
    data: Dict[str, object] = {}

    # 1. Policies under oracle-fresh signals.
    policy_rows = []
    data["policies"] = {}
    for policy in ("random", "rr", "jsq2", "sed"):
        row = by_key[f"policy/{policy}"]
        data["policies"][policy] = row
        policy_rows.append(
            [policy, row["tput_mrps"], row["p99_ns"], row["load_cv"],
             row["max_stall"]]
        )
    tables.append(
        format_table(
            ["policy", "tput (MRPS)", "p99 (ns)", "load cv", "stalls"],
            policy_rows,
            title=(
                f"Inter-server policy, fresh signals — {NUM_NODES} nodes x "
                f"16 cores at {MID_LOAD_MRPS:g} MRPS each (HERD)"
            ),
        )
    )
    random_p99 = float(by_key["policy/random"]["p99_ns"])
    jsq2_p99 = float(by_key["policy/jsq2"]["p99_ns"])
    fresh_advantage = random_p99 / jsq2_p99
    findings.append(
        f"fresh JSQ(2) beats uniform-random routing at the mid-load point: "
        f"{fresh_advantage:.2f}x lower cluster-wide p99 "
        f"({jsq2_p99:.0f} vs {random_p99:.0f} ns)"
    )

    # 2. Staleness ladder: JSQ(2) advantage over random per signal model.
    ladder = []
    for signal in STALENESS_LADDER:
        row = by_key["policy/jsq2" if signal == "fresh" else f"ladder/{signal}"]
        ladder.append(
            {
                "signal": signal,
                "jsq2_p99_ns": float(row["p99_ns"]),
                "random_p99_ns": random_p99,
                "advantage": random_p99 / float(row["p99_ns"]),
                "signal_error": float(row["signal_error"]),
                "max_stall": float(row["max_stall"]),
            }
        )
    data["ladder"] = ladder
    tables.append(
        format_table(
            ["load signal", "jsq2 p99 (ns)", "advantage vs random",
             "mean |est - true|", "stalls"],
            [
                [entry["signal"], entry["jsq2_p99_ns"], entry["advantage"],
                 entry["signal_error"], entry["max_stall"]]
                for entry in ladder
            ],
            title="Signal staleness vs the JSQ(2) advantage (random = 1.0x)",
        )
    )
    findings.append(
        "staleness monotonically erodes the JSQ(2) advantage: "
        + " -> ".join(
            f"{entry['signal']} {entry['advantage']:.2f}x" for entry in ladder
        )
        + " — stale signals herd the rack onto whichever node looked idle"
    )

    # 3. Hot-shard destination skew.
    skew_rows = []
    data["skew"] = {}
    for policy in ("random", "jsq2", "sed"):
        row = by_key[f"skew/{policy}"]
        data["skew"][policy] = row
        skew_rows.append(
            [policy, row["p99_ns"], row["routed"][0], row["max_stall"]]
        )
    tables.append(
        format_table(
            ["policy", "p99 (ns)", "hot-node share", "stalls"],
            skew_rows,
            title=f"Zipf({HOT_SKEW:g}) destination popularity (node 0 hot)",
        )
    )
    findings.append(
        f"under Zipf({HOT_SKEW:g}) skew random spray overloads the hot shard "
        f"(p99 {data['skew']['random']['p99_ns']:.0f} ns, "
        f"{data['skew']['random']['max_stall']:.0%} sender stalls) while "
        f"load-aware routing absorbs it "
        f"(JSQ(2) p99 {data['skew']['jsq2']['p99_ns']:.0f} ns)"
    )

    # 4. Heterogeneous rack.
    hetero_rows = []
    data["hetero"] = {}
    for policy in ("random", "jsq2", "sed"):
        row = by_key[f"hetero/{policy}"]
        data["hetero"][policy] = row
        hetero_rows.append(
            [policy, row["p99_ns"], row["routed"][-1],
             row["latency_imbalance"]]
        )
    tables.append(
        format_table(
            ["policy", "p99 (ns)", "weak-node share", "latency imbalance"],
            hetero_rows,
            title=(
                f"Asymmetric rack {list(HETERO_CORES)} cores at "
                f"{HETERO_MRPS:g} MRPS/node"
            ),
        )
    )
    findings.append(
        "on an asymmetric rack capacity-aware SED routes the weak node "
        f"{data['hetero']['sed']['routed'][-1]:.0%} of traffic and keeps "
        f"latency imbalance at "
        f"{data['hetero']['sed']['latency_imbalance']:.2f}x, vs "
        f"{data['hetero']['random']['latency_imbalance']:.1f}x under "
        "oblivious spray"
    )

    # 5. Per-node dispatch scheme under dumb vs smart routing.
    scheme_rows = []
    data["schemes"] = {}
    for scheme, policy in (
        ("1x16", "random"), ("1x16", "jsq2"), ("16x1", "random"),
        ("16x1", "jsq2"),
    ):
        key = (
            f"policy/{policy}" if scheme == "1x16"
            else f"scheme/16x1/{policy}"
        )
        row = by_key[key]
        data["schemes"][f"{scheme}/{policy}"] = row
        scheme_rows.append([f"{scheme} + {policy}", row["tput_mrps"],
                            row["p99_ns"]])
    tables.append(
        format_table(
            ["per-node scheme + router", "tput (MRPS)", "p99 (ns)"],
            scheme_rows,
            title="Does intra-server single-queue dispatch still matter?",
        )
    )
    intra_gain = (
        float(data["schemes"]["16x1/jsq2"]["p99_ns"])
        / float(data["schemes"]["1x16/jsq2"]["p99_ns"])
    )
    findings.append(
        f"smart rack routing does not substitute for RPCValet's intra-server "
        f"dispatch: even under JSQ(2), 1x16 nodes keep p99 {intra_gain:.1f}x "
        "lower than 16x1 nodes"
    )

    data["fresh_advantage"] = fresh_advantage
    data["telemetry"] = merge_snapshots(
        by_key[task[0]].pop("telemetry") for task in tasks
    )
    return ExperimentResult(
        "ext-rack",
        "Rack-level two-level scheduling across RPCValet servers",
        data=data,
        tables=tables,
        findings=findings,
    )
