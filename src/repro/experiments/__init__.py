"""Experiment drivers: one per paper table/figure (see DESIGN.md §4)."""

from .ablations import (
    run_indirection_ablation,
    run_outstanding_ablation,
    run_policy_ablation,
    run_scalability_ablation,
    run_slots_ablation,
    run_straggler_ablation,
)
from .cli import EXPERIMENTS, main
from .common import ExperimentResult, PROFILES, Profile, load_grid
from .datacenter import run_datacenter
from .diurnal import run_diurnal
from .extensions import (
    run_bursts,
    run_cluster,
    run_dynamic_slots,
    run_hedging,
    run_preemption,
    run_rss_spray,
    run_validate,
)
from .faults import run_faults
from .fig2 import run_fig2a, run_fig2b, run_fig2c, unit_mean_service
from .fig6 import distribution_moments, run_fig6
from .fig7 import run_fig7a, run_fig7b, run_fig7c, sweep_schemes
from .fig8 import run_fig8
from .fig9 import model_vs_simulation, run_fig9
from .headline import run_headline
from .persistence import (
    compare_snapshots,
    load_snapshot,
    result_to_dict,
    save_result,
)
from .rack import run_rack
from .scale import run_scale
from .sensitivity import run_sensitivity
from .tails import run_tails

__all__ = [
    "EXPERIMENTS",
    "main",
    "ExperimentResult",
    "Profile",
    "PROFILES",
    "load_grid",
    "run_fig2a",
    "run_fig2b",
    "run_fig2c",
    "run_fig6",
    "run_fig7a",
    "run_fig7b",
    "run_fig7c",
    "run_fig8",
    "run_fig9",
    "run_headline",
    "run_sensitivity",
    "result_to_dict",
    "save_result",
    "load_snapshot",
    "compare_snapshots",
    "run_preemption",
    "run_hedging",
    "run_dynamic_slots",
    "run_validate",
    "run_cluster",
    "run_rack",
    "run_scale",
    "run_faults",
    "run_bursts",
    "run_tails",
    "run_diurnal",
    "run_datacenter",
    "run_rss_spray",
    "run_outstanding_ablation",
    "run_policy_ablation",
    "run_indirection_ablation",
    "run_slots_ablation",
    "run_scalability_ablation",
    "run_straggler_ablation",
    "unit_mean_service",
    "distribution_moments",
    "sweep_schemes",
    "model_vs_simulation",
]
