"""Tornado-style sensitivity analysis of the model's latency constants.

The reproduction's absolute numbers rest on calibrated constants
(DESIGN.md §5). This driver quantifies how much each one matters:
every NI/microbenchmark constant is halved and doubled in isolation at
a fixed high HERD load, and the p99 deltas are reported largest-first.
It answers the reviewer question "which of your made-up numbers would
change the conclusions?" — the answer (none of the NI constants; only
the per-request core costs shift S̄, and those are calibrated to the
paper's measured values) is itself a result.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..balancing import SingleQueue
from ..core import RpcValetSystem, run_point_task
from ..metrics import format_table
from ..runner import map_points
from ..workloads import HerdWorkload, MicrobenchCosts
from .common import ExperimentResult, get_profile

__all__ = ["run_sensitivity", "SENSITIVITY_PARAMS"]

#: (name, where) — "config" fields live on ChipConfig, "costs" on
#: MicrobenchCosts.
SENSITIVITY_PARAMS = (
    ("backend_per_packet_ns", "config"),
    ("backend_fixed_ns", "config"),
    ("dispatch_ns", "config"),
    ("cqe_write_ns", "config"),
    ("mesh_hop_cycles", "config"),
    ("poll_detect_ns", "costs"),
    ("send_issue_ns", "costs"),
)

_PROBE_MRPS = 24.0


def _build_system(seed: int, config_overrides=None, cost_overrides=None):
    costs = MicrobenchCosts.lean()
    if cost_overrides:
        from dataclasses import replace

        costs = replace(costs, **cost_overrides)
    system = RpcValetSystem(
        SingleQueue(), HerdWorkload(), costs=costs, seed=seed
    )
    if config_overrides:
        system.config = system.config.with_updates(**config_overrides)
    return system


def run_sensitivity(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Halve/double each latency constant; rank p99 impact."""
    prof = get_profile(profile)
    base_config = _build_system(seed).config
    base_costs = MicrobenchCosts.lean()

    # Baseline + 7 params x {x0.5, x2}: 15 independent probes, all
    # sharing the experiment seed (common random numbers — the table
    # reports swings against the baseline) and one map_points fan-out.
    tasks = [(_build_system(seed), _PROBE_MRPS, prof.arch_requests, 0.1, seed)]
    labels = ["baseline"]
    plan: List[Dict[str, object]] = []
    for name, where in SENSITIVITY_PARAMS:
        base_value = getattr(
            base_config if where == "config" else base_costs, name
        )
        plan.append({"param": name, "base": base_value})
        for factor in (0.5, 2.0):
            value = base_value * factor
            if name == "mesh_hop_cycles":
                value = max(1, int(round(value)))
            overrides = {name: value}
            system = _build_system(
                seed,
                config_overrides=overrides if where == "config" else None,
                cost_overrides=overrides if where == "costs" else None,
            )
            tasks.append((system, _PROBE_MRPS, prof.arch_requests, 0.1, seed))
            labels.append(f"{name} x{factor:g}")

    outcome = map_points(run_point_task, tasks, workers=workers, labels=labels)
    if not outcome.ok:
        raise RuntimeError(f"sensitivity probe failed: {outcome.findings()}")
    p99s = [result.p99 for result in outcome.results]
    baseline_p99 = p99s[0]
    entries: List[Dict[str, object]] = []
    for index, item in enumerate(plan):
        half_p99, double_p99 = p99s[1 + 2 * index], p99s[2 + 2 * index]
        swing = max(
            abs(half_p99 - baseline_p99), abs(double_p99 - baseline_p99)
        )
        entries.append(
            {
                "param": item["param"],
                "base": item["base"],
                "half_p99": half_p99,
                "double_p99": double_p99,
                "swing_ns": swing,
            }
        )

    entries.sort(key=lambda entry: entry["swing_ns"], reverse=True)
    rows = [
        [
            entry["param"],
            entry["base"],
            entry["half_p99"],
            baseline_p99,
            entry["double_p99"],
            entry["swing_ns"] / baseline_p99,
        ]
        for entry in entries
    ]
    table = format_table(
        ["constant", "base value", "p99 @ x0.5", "p99 @ x1",
         "p99 @ x2", "max swing"],
        rows,
        title=f"HERD at {_PROBE_MRPS} MRPS, one-at-a-time halve/double",
    )
    most = entries[0]
    return ExperimentResult(
        "sensitivity",
        "Latency-constant sensitivity (tornado), 1x16 at high load",
        data={"baseline_p99": baseline_p99, "entries": entries},
        tables=[table],
        findings=[
            f"most sensitive constant: {most['param']} "
            f"(max p99 swing {most['swing_ns'] / baseline_p99 * 100:.0f}%); "
            "per-request core costs dominate because they move S̄ itself — "
            "and those are the constants calibrated to the paper's measured "
            "service times (DESIGN.md §5)"
        ],
    )
