"""Extension experiments: the paper's future-work / related-work items.

Each driver quantifies a design the paper discusses but does not
evaluate:

* **preemption** (§7, Shinjuku) — quantum preemption on the single
  queue vs run-to-completion, on the Masstree-like get/scan mixture;
* **hedging** (§7, Tail at Scale) — client-side duplication over
  partitioned queues vs the server-side single queue, with the
  wasted-work cost the paper's argument hinges on;
* **dynamic slots** (§4.2) — shared-pool receive-slot provisioning vs
  the paper's static N×S, trading memory for (potential) stalls;
* **cluster** — K fully simulated chips exchanging RPCs all-to-all;
* **rss spray** (§2.3) — sender-rate skew vs static RSS hashing;
* **bursts** — nonstationary arrivals vs the Q×U models;
* **validate** — the queueing simulator against closed forms.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..arch.buffers import MessagingDomain
from ..balancing import SingleQueue
from ..core import RpcValetSystem, run_point_task
from ..runner import map_points
from ..dists import masstree_get, masstree_scan
from ..metrics import format_table
from ..queueing import (
    RandomRouter,
    poisson_arrivals,
    simulate_fifo_queue,
    simulate_hedged_queues,
    simulate_preemptive_queue,
    simulate_routed_queues,
)
from ..workloads import HerdWorkload, MicrobenchCosts
from .common import ExperimentResult, get_profile

__all__ = [
    "run_preemption",
    "run_hedging",
    "run_dynamic_slots",
    "run_validate",
    "run_cluster",
    "run_rss_spray",
    "run_bursts",
]


def _masstree_services(rng: np.random.Generator, n: int):
    """Masstree-like mixture in ns; returns (services, is_get mask)."""
    is_scan = rng.uniform(size=n) < 0.01
    gets = masstree_get().sample_array(rng, n)
    scans = masstree_scan().sample_array(rng, n)
    return np.where(is_scan, scans, gets), ~is_scan


def run_preemption(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Quantum preemption (Shinjuku-style) on the Masstree mixture.

    16 servers fed from one queue (RPCValet's model); quantum swept
    over the 5–15µs range Shinjuku uses, with a 1µs-scale context
    switch overhead. The run-to-completion row is the paper's RPCValet.
    """
    prof = get_profile(profile)
    n = prof.queueing_requests
    rng = np.random.default_rng(seed)
    services, is_get = _masstree_services(rng, n)
    # 70% load on 16 servers.
    arrivals = poisson_arrivals(rng, 0.7 * 16.0 / services.mean(), n)
    warm = n // 10

    rows: List[List[object]] = []
    data: Dict[str, float] = {}
    fifo = simulate_fifo_queue(arrivals, services, 16, validate=False) - arrivals
    fifo_p99 = float(np.percentile(fifo[is_get][warm:], 99))
    rows.append(["run-to-completion", "-", fifo_p99 / 1e3, 0.0])
    data["run_to_completion_get_p99_us"] = fifo_p99 / 1e3

    for quantum_us in (5.0, 10.0, 15.0):
        result = simulate_preemptive_queue(
            arrivals, services, 16,
            quantum=quantum_us * 1e3,
            preemption_overhead=1_000.0,  # 1µs context switch (§7: 5-15µs quanta)
        )
        get_p99 = float(np.percentile(result.sojourns[is_get][warm:], 99))
        rows.append(
            [
                f"quantum {quantum_us:.0f}µs",
                result.preemptions_per_job,
                get_p99 / 1e3,
                (fifo_p99 - get_p99) / fifo_p99,
            ]
        )
        data[f"quantum_{quantum_us:.0f}us_get_p99_us"] = get_p99 / 1e3

    table = format_table(
        ["scheduler", "preempt/job", "get p99 (µs)", "improvement"],
        rows,
        title="Single queue × 16 servers, Masstree mixture at 70% load",
    )
    return ExperimentResult(
        "ext-preemption",
        "Shinjuku-style quantum preemption on RPCValet's single queue (§7)",
        data=data,
        tables=[table],
        findings=[
            "preemption bounds how long a get can sit behind a scan; on a "
            "single-queue 16-server system the gain is modest because 16-wide "
            "dispatch already hides most scans — the combination matters most "
            "at high scan rates or few cores"
        ],
    )


def run_hedging(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Client-side duplication vs the server-side single queue (§7)."""
    prof = get_profile(profile)
    n = prof.queueing_requests
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}
    for load in (0.4, 0.6, 0.8):
        rng = np.random.default_rng(seed)
        arrivals = poisson_arrivals(rng, 16.0 * load, n)
        services = rng.exponential(1.0, n)
        warm = n // 10
        plain = simulate_routed_queues(
            arrivals, services, 16, 1, RandomRouter(),
            np.random.default_rng(seed + 1),
        )
        hedged = simulate_hedged_queues(
            arrivals, services, 16, copies=2,
            rng=np.random.default_rng(seed + 1),
        )
        single = simulate_fifo_queue(arrivals, services, 16, validate=False) - arrivals
        row = {
            "random_p99": float(np.percentile(plain[warm:], 99)),
            "hedged_p99": float(np.percentile(hedged.sojourns[warm:], 99)),
            "single_queue_p99": float(np.percentile(single[warm:], 99)),
            "waste_fraction": hedged.waste_fraction,
        }
        data[f"load_{load}"] = row
        rows.append(
            [
                load,
                row["random_p99"],
                row["hedged_p99"],
                row["single_queue_p99"],
                row["waste_fraction"],
            ]
        )
    table = format_table(
        ["load", "16x1 random p99", "16x1 hedged-2 p99",
         "1x16 single-queue p99", "hedge waste"],
        rows,
        title="p99 in multiples of mean service time (exponential)",
    )
    return ExperimentResult(
        "ext-hedging",
        "Client-side hedging vs server-side single-queue dispatch (§7)",
        data=data,
        tables=[table],
        findings=[
            "hedging narrows the tail at low/mid load but pays 30%+ wasted "
            "work and collapses past ~70% load; the single queue dominates "
            "everywhere at zero extra load — the paper's §7 argument"
        ],
    )


def run_dynamic_slots(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Shared-pool slot provisioning vs static N×S (§4.2 extension)."""
    prof = get_profile(profile)
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}

    variants = [("static", None)] + [("dynamic", pool) for pool in (512, 128, 48)]
    tasks = []
    for policy, pool_size in variants:
        system = RpcValetSystem(
            SingleQueue(),
            HerdWorkload(),
            costs=MicrobenchCosts.lean(),
            seed=seed,
            slot_policy=policy,
            pool_size=pool_size,
        )
        tasks.append((system, 26.0, prof.arch_requests, 0.1, seed))
    outcome = map_points(
        run_point_task,
        tasks,
        workers=workers,
        labels=[
            "static NxS" if policy == "static" else f"dynamic pool={pool}"
            for policy, pool in variants
        ],
    )
    for (policy, pool_size), (system, *_), result in zip(
        variants, tasks, outcome.results
    ):
        if result is None:
            raise RuntimeError(
                f"slot-provisioning probe failed: {outcome.findings()}"
            )
        config = system.config
        if policy == "static":
            domain = MessagingDomain(
                config.num_remote_nodes,
                config.send_slots_per_node,
                config.max_msg_bytes,
            )
            footprint = domain.receive_buffer_bytes
        else:
            footprint = (config.max_msg_bytes + 64) * pool_size
        stats = {
            "p99_ns": result.p99,
            "tput_mrps": result.point.achieved_throughput,
            "stall_fraction": result.stall_fraction,
            "recv_footprint_mib": footprint / 2**20,
        }
        key = "static" if policy == "static" else f"dynamic_{pool_size}"
        label = (
            "static NxS (paper)" if policy == "static"
            else f"dynamic pool={pool_size}"
        )
        data[key] = stats
        rows.append(
            [label, stats["recv_footprint_mib"],
             stats["tput_mrps"], stats["p99_ns"], stats["stall_fraction"]]
        )
    table = format_table(
        ["provisioning", "recv buf (MiB)", "tput (MRPS)", "p99 (ns)", "stalls"],
        rows,
        title="HERD at 26 MRPS offered",
    )
    return ExperimentResult(
        "ext-dynamic-slots",
        "Dynamic (pooled) receive-slot provisioning (§4.2 future work)",
        data=data,
        tables=[table],
        findings=[
            "a pool sized to the bandwidth-delay product (hundreds of slots) "
            "matches static N×S performance at a fraction of the memory; "
            "undersized pools throttle via sender stalls"
        ],
    )


def run_validate(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Queueing-simulator self-validation against closed forms."""
    from ..queueing import run_validation

    prof = get_profile(profile)
    rows_data = run_validation(
        num_requests=max(prof.queueing_requests, 50_000), seed=seed
    )
    rows = [
        [row.system, row.metric, row.analytic, row.simulated,
         f"{row.relative_error * 100:.2f}%"]
        for row in rows_data
    ]
    worst = max(row.relative_error for row in rows_data)
    table = format_table(
        ["system", "metric", "analytic", "simulated", "error"],
        rows,
        title="FIFO simulator vs closed-form queueing results",
    )
    return ExperimentResult(
        "validate",
        "Simulator validation against M/M/1, M/M/c, M/G/1 closed forms",
        data={"rows": rows_data, "worst_error": worst},
        tables=[table],
        findings=[f"worst relative error across the grid: {worst * 100:.2f}%"],
    )


def _run_cluster_task(task) -> Dict[str, float]:
    """One cluster run of one per-node dispatch scheme (pool-safe).

    The task carries the experiment seed verbatim (not a spawned child
    seed): each scheme's cluster was always built from the same seed,
    so the historical ext-cluster numbers survive the fan-out.
    """
    scheme, num_nodes, per_node_mrps, requests_per_node, seed = task
    from ..balancing import Partitioned
    from ..cluster import Cluster

    factory = {"16x1/node": Partitioned, "1x16/node": SingleQueue}[scheme]
    cluster = Cluster(num_nodes=num_nodes, scheme_factory=factory, seed=seed)
    result = cluster.run(
        per_node_mrps=per_node_mrps, requests_per_node=requests_per_node
    )
    return {
        "p99_ns": result.p99_ns,
        "total_tput_mrps": result.total_throughput_mrps,
        "imbalance": result.imbalance(),
    }


def run_cluster(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Rack-scale: K fully simulated chips, all-to-all RPCs.

    Beyond the paper's single-chip methodology: every node is both
    client and server; send-slot credits cross the fabric. Compares
    per-node RPCValet (1x16) against RSS-style partitioning (16x1)
    cluster-wide, and reports cross-node balance. The two scheme runs
    are independent, so they fan through :func:`repro.runner.map_points`
    (``--workers`` / ``REPRO_WORKERS``) with bit-identical results at
    any worker count.
    """
    prof = get_profile(profile)
    num_nodes = 4
    requests_per_node = max(prof.arch_requests // 2, 2_000)
    per_node_mrps = 22.0  # ~76% of each node's HERD capacity

    names = ["16x1/node", "1x16/node"]
    outcome = map_points(
        _run_cluster_task,
        [(name, num_nodes, per_node_mrps, requests_per_node, seed)
         for name in names],
        workers=workers,
        labels=names,
        progress_label="ext-cluster",
    )
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}
    for name, row in zip(names, outcome.results):
        if row is None:
            raise RuntimeError(
                f"cluster scheme {name!r} failed: {outcome.findings()}"
            )
        data[name] = row
        rows.append(
            [name, row["total_tput_mrps"], row["p99_ns"], row["imbalance"]]
        )
    table = format_table(
        ["scheme", "cluster tput (MRPS)", "p99 (ns)", "node imbalance"],
        rows,
        title=(
            f"{num_nodes} nodes x 16 cores, {per_node_mrps} MRPS each "
            "(HERD service times)"
        ),
    )
    speedup = data["16x1/node"]["p99_ns"] / data["1x16/node"]["p99_ns"]
    return ExperimentResult(
        "ext-cluster",
        "Multi-node cluster: per-node dispatch scheme at rack scale",
        data=data,
        tables=[table],
        findings=[
            f"per-node single-queue dispatch carries to rack scale: "
            f"{speedup:.1f}x lower cluster-wide p99 at identical throughput"
        ],
    )


def run_rss_spray(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """RSS's blind spot: skewed sender rates under per-source hashing.

    Real RSS hashes flow identifiers, so a sender's requests always
    land on the same core (§2.3: distribution decisions are "based on
    the RPC packets' header content ... no information pertaining to
    the system's current load"). With *uniform* sender rates that is
    statistically equivalent to the models' per-message spray — the
    superposition of Poisson sources is Poisson. The failure mode is
    **rate skew**: hot senders pin their load to fixed cores. This
    ablation sweeps a Zipf-like sender skew across three systems:
    per-message 16×1 (the queueing-model idealization), per-source
    16×1 (real RSS), and RPCValet's 1×16 (load-aware, immune).
    """
    from ..arch import ChipConfig
    from ..balancing import Partitioned

    prof = get_profile(profile)
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}
    configs = (
        ("16x1 per-message", Partitioned(spray="message")),
        ("16x1 per-source (RSS)", Partitioned(spray="source")),
        ("1x16 (RPCValet)", SingleQueue()),
    )
    tasks = []
    keys: List[str] = []
    for skew in (0.0, 1.2):
        for name, scheme in configs:
            system = RpcValetSystem(
                scheme=scheme,
                workload=HerdWorkload(),
                config=ChipConfig(num_nodes=65),  # 64 senders: skew bites
                costs=MicrobenchCosts.lean(),
                seed=seed,
                source_skew=skew,
            )
            keys.append(f"{name}/skew={skew:g}")
            tasks.append((system, 18.0, prof.arch_requests, 0.1, seed))
    outcome = map_points(run_point_task, tasks, workers=workers, labels=keys)
    for key, result in zip(keys, outcome.results):
        if result is None:
            raise RuntimeError(f"RSS-spray probe failed: {outcome.findings()}")
        data[key] = {
            "p99_ns": result.p99,
            "tput_mrps": result.point.achieved_throughput,
            "stall_fraction": result.stall_fraction,
        }
        rows.append(
            [key, result.point.achieved_throughput, result.p99,
             result.stall_fraction]
        )
    table = format_table(
        ["system / sender skew", "tput (MRPS)", "p99 (ns)", "sender stalls"],
        rows,
        title="18 MRPS offered over 64 senders (HERD)",
    )
    return ExperimentResult(
        "ablation-rss-spray",
        "Sender-rate skew vs static RSS hashing (§2.3)",
        data={"by_config": data},
        tables=[table],
        findings=[
            "with uniform senders, per-source RSS matches the per-message "
            "model; under Zipf sender skew its hot cores saturate — tail "
            "explodes and flow control sheds throughput — while RPCValet's "
            "load-aware dispatch is unaffected, the §2.3 argument made "
            "quantitative"
        ],
    )


def run_bursts(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Bursty (nonstationary) arrivals vs the Q×U models.

    The paper's arrivals are stationary Poisson. Real RPC traffic has
    flash bursts; this experiment re-runs the 1×16 vs 16×1 comparison
    under square-wave bursts at the same *average* rate and exposes two
    regimes: sub-capacity bursts widen the single-queue advantage
    (16×1's unlucky queues transiently overload while 1×16 absorbs),
    and far-past-capacity bursts compress the relative gap (both
    systems accumulate the same backlog while absolute tails explode).
    """
    from ..queueing import nonhomogeneous_poisson, square_wave_rate

    prof = get_profile(profile)
    rng = np.random.default_rng(seed)
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}

    def p99_ratio(arrivals: np.ndarray, services: np.ndarray) -> Dict[str, float]:
        warm = arrivals.size // 10
        spray = np.random.default_rng(seed + 1).integers(0, 16, arrivals.size)
        partitioned = np.empty(arrivals.size)
        for queue in range(16):
            mask = spray == queue
            partitioned[mask] = (
                simulate_fifo_queue(
                    arrivals[mask], services[mask], 1, validate=False
                )
                - arrivals[mask]
            )
        single = simulate_fifo_queue(arrivals, services, 16, validate=False) - arrivals
        single_p99 = float(np.percentile(single[warm:], 99))
        partitioned_p99 = float(np.percentile(partitioned[warm:], 99))
        return {
            "single_p99": single_p99,
            "partitioned_p99": partitioned_p99,
            "ratio": partitioned_p99 / single_p99,
        }

    horizon = max(prof.queueing_requests / 8.0, 10_000.0)
    scenarios = (
        ("stationary 0.6", None, 0.6 * 16),
        ("bursts to 0.95x capacity", (0.47 * 16, 0.95 * 16, 400.0, 0.25), None),
        ("bursts to 2.5x capacity", (0.4 * 16, 2.5 * 16, 400.0, 0.1), None),
    )
    for name, burst_params, constant_rate in scenarios:
        if burst_params is None:
            count = int(constant_rate * horizon)
            arrivals = np.cumsum(rng.exponential(1.0 / constant_rate, count))
        else:
            base, burst, period, fraction = burst_params
            rate_fn, rate_max = square_wave_rate(base, burst, period, fraction)
            arrivals = nonhomogeneous_poisson(rng, rate_fn, rate_max, horizon)
        services = rng.exponential(1.0, arrivals.size)
        stats = p99_ratio(arrivals, services)
        stats["mean_rate"] = arrivals.size / float(arrivals[-1])
        data[name] = stats
        rows.append(
            [name, stats["mean_rate"] / 16.0, stats["single_p99"],
             stats["partitioned_p99"], stats["ratio"]]
        )
    table = format_table(
        ["arrival process", "avg load", "1x16 p99", "16x1 p99", "gap"],
        rows,
        title="p99 in multiples of mean service (exponential service)",
    )
    return ExperimentResult(
        "ext-bursts",
        "Nonstationary (bursty) arrivals vs the Q x U models",
        data=data,
        tables=[table],
        findings=[
            "sub-capacity bursts widen the single-queue advantage; "
            "far-past-capacity bursts compress the relative gap while "
            "both tails explode — stationary Poisson (the paper's setup) "
            "is the conservative case for RPCValet's benefit"
        ],
    )
