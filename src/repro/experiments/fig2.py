"""Figure 2: tail latency vs load for theoretical Q×U queueing systems.

* Fig. 2a — five configurations (1×16 … 16×1), exponential service;
* Fig. 2b — Model 1×16 under all four service distributions;
* Fig. 2c — Model 16×1 under all four service distributions.

Latencies are reported in multiples of the mean service time S̄ and the
load axis is utilization, exactly as in the paper. Service shapes are
the paper's synthetic set normalized to unit mean.
"""

from __future__ import annotations

from typing import List, Optional

from ..dists import Distribution, SYNTHETIC_KINDS, Scaled, synthetic
from ..metrics import SweepResult, sweep_table
from ..queueing import PAPER_CONFIGS, QueueingSystem
from .common import ExperimentResult, get_profile, load_grid

__all__ = ["unit_mean_service", "run_fig2a", "run_fig2b", "run_fig2c"]


def unit_mean_service(kind: str) -> Distribution:
    """The paper's synthetic shape scaled to mean 1."""
    dist = synthetic(kind)
    scaled = Scaled(dist, 1.0 / dist.mean, name=kind)
    return scaled


def _loads(points: int) -> List[float]:
    return load_grid(0.1, 0.95, points)


def run_fig2a(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Five Q×U systems under exponential service time."""
    prof = get_profile(profile)
    service = unit_mean_service("exponential")
    loads = _loads(prof.sweep_points)
    failures: List[str] = []
    sweeps: List[SweepResult] = []
    for num_queues, servers in PAPER_CONFIGS:
        system = QueueingSystem(num_queues, servers, service, seed=seed)
        sweeps.append(
            system.sweep(
                loads,
                num_requests=prof.queueing_requests,
                workers=workers,
                experiment="fig2a",
                failures=failures,
            )
        )
    result = ExperimentResult(
        "fig2a",
        "Tail latency vs load, exponential service, Q x U in "
        "{1x16, 2x8, 4x4, 8x2, 16x1}",
        data={"sweeps": {sweep.label: sweep for sweep in sweeps}},
        tables=[
            sweep_table(
                sweeps,
                load_label="load",
                title="p99 latency (multiples of mean service time)",
            )
        ],
    )
    # The paper's reading: performance is proportional to U.
    high_load_p99 = {sweep.label: sweep.points[-1].p99 for sweep in sweeps}
    ordering = sorted(high_load_p99, key=high_load_p99.get)
    result.data["high_load_p99"] = high_load_p99
    result.findings.append(
        f"p99 ordering at load {loads[-1]:.2f} (best to worst): {' < '.join(ordering)}"
    )
    result.findings.extend(failures)
    return result


def _run_distribution_panel(
    experiment_id: str,
    num_queues: int,
    servers: int,
    profile: str,
    seed: int,
    workers: Optional[int] = None,
) -> ExperimentResult:
    prof = get_profile(profile)
    loads = _loads(prof.sweep_points)
    failures: List[str] = []
    sweeps: List[SweepResult] = []
    for kind in SYNTHETIC_KINDS:
        system = QueueingSystem(
            num_queues, servers, unit_mean_service(kind), seed=seed
        )
        sweep = system.sweep(
            loads,
            num_requests=prof.queueing_requests,
            label=kind,
            workers=workers,
            experiment=experiment_id,
            failures=failures,
        )
        sweeps.append(sweep)
    label = f"{num_queues}x{servers}"
    result = ExperimentResult(
        experiment_id,
        f"Model {label}: four service-time distributions",
        data={"sweeps": {sweep.label: sweep for sweep in sweeps}},
        tables=[
            sweep_table(
                sweeps,
                load_label="load",
                title=f"p99 (multiples of mean service), Model {label}",
            )
        ],
    )
    # Paper: TL_fixed < TL_uni < TL_exp < TL_gev before saturation.
    mid_point = max(0, len(loads) - 2)
    mid_p99 = {sweep.label: sweep.points[mid_point].p99 for sweep in sweeps}
    ordering = sorted(mid_p99, key=mid_p99.get)
    result.data["pre_saturation_p99"] = mid_p99
    result.findings.append(
        f"p99 ordering at load {loads[mid_point]:.2f}: {' < '.join(ordering)}"
    )
    result.findings.extend(failures)
    return result


def run_fig2b(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Model 1×16 under fixed/uniform/exponential/GEV service."""
    return _run_distribution_panel("fig2b", 1, 16, profile, seed, workers=workers)


def run_fig2c(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Model 16×1 under fixed/uniform/exponential/GEV service."""
    return _run_distribution_panel("fig2c", 16, 1, profile, seed, workers=workers)
