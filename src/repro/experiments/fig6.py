"""Figure 6: the modeled RPC processing-time distributions.

Regenerates the figure's content as tables: distribution moments and
sampled percentiles for (a) the four synthetic distributions, (b) the
HERD model, and (c) the Masstree get model (+ the scan runtimes the
figure's caption describes but clips).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..dists import (
    Distribution,
    HERD_MEAN_NS,
    MASSTREE_GET_MEAN_NS,
    SYNTHETIC_KINDS,
    herd,
    masstree_get,
    masstree_scan,
    synthetic,
)
from ..metrics import format_table
from .common import ExperimentResult, get_profile

__all__ = ["run_fig6", "distribution_moments"]


def distribution_moments(
    dist: Distribution, num_samples: int, seed: int
) -> Dict[str, float]:
    """Analytic mean/cv² plus sampled percentiles for one distribution."""
    rng = np.random.default_rng(seed)
    samples = dist.sample_array(rng, num_samples)
    return {
        "mean_analytic": dist.mean,
        "mean_sampled": float(samples.mean()),
        "cv2": dist.cv2,
        "p50": float(np.percentile(samples, 50)),
        "p99": float(np.percentile(samples, 99)),
        "max": float(samples.max()),
    }


def run_fig6(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Moments/percentiles of every Fig. 6 processing-time model."""
    prof = get_profile(profile)
    num_samples = prof.queueing_requests
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}

    models: List[Distribution] = [synthetic(kind) for kind in SYNTHETIC_KINDS]
    models.append(herd())
    models.append(masstree_get())
    models.append(masstree_scan())

    for index, dist in enumerate(models):
        moments = distribution_moments(dist, num_samples, seed + index)
        data[dist.name] = moments
        rows.append(
            [
                dist.name,
                moments["mean_analytic"],
                moments["mean_sampled"],
                moments["cv2"],
                moments["p50"],
                moments["p99"],
            ]
        )

    table = format_table(
        ["model", "mean(ns)", "sampled mean", "cv^2", "p50", "p99"],
        rows,
        title="Fig. 6 processing-time models (ns)",
    )
    result = ExperimentResult(
        "fig6",
        "Modeled RPC processing time distributions",
        data=data,
        tables=[table],
    )
    result.findings.append(
        f"synthetic means = 600ns (300 base + 300 extra); "
        f"herd mean = {data['herd']['mean_analytic']:.0f}ns "
        f"(paper: {HERD_MEAN_NS:.0f}ns); "
        f"masstree get mean = {data['masstree_get']['mean_analytic']:.0f}ns "
        f"(paper: {MASSTREE_GET_MEAN_NS:.0f}ns)"
    )
    variance_order = sorted(
        SYNTHETIC_KINDS, key=lambda kind: data[kind]["cv2"]
    )
    result.findings.append(
        "synthetic variability ordering (cv^2): " + " < ".join(variance_order)
    )
    return result
