"""``ext-diurnal``: policy × load-profile sweep under population-driven load.

The paper's figures hold offered load constant per point; this
experiment asks what happens when the *same average load* arrives as a
process instead (ROADMAP item 1, :mod:`repro.popload`):

* ``constant`` — the paper's stationary Poisson (the control row; it
  routes through :class:`repro.popload.StationaryPoisson`, which is
  byte-identical to the legacy generator path);
* ``diurnal`` — a user population swinging ±60% around the mean over
  one day-cycle spanning the run (peak 1.6× the nominal rate), users
  re-sampled per window (:class:`repro.popload.PopulationProcess` over
  a :class:`repro.popload.DiurnalRate`);
* ``flash`` — a flash-crowd ramp to ~2.1× the nominal rate holding for
  15% of the run (:class:`repro.popload.FlashCrowdRate`), background
  lowered so the run-average stays at the nominal rate.

Each profile runs the HERD workload under the paper's two headline
policies (1×16 NI-driven single queue vs 16×1 RSS-style partitioning)
over a saturation-seeking load grid, and reports throughput-under-SLO
(SLO = 10×S̄, the Fig. 7a convention) plus the p99 at a mid-grid
operating point. The punchline: equal-average diurnal/flash load costs
*both* policies SLO capacity — the peak, not the mean, sets the
provisioning point — and partitioning loses more because its unlucky
queues saturate first.

The experiment is engine-aware (default ``auto``). The vectorized
``fast`` tier (:func:`repro.fastpath.fast_chip_point`) consumes the
*same* named RNG streams as the DES — arrival gaps through the
process's own ``sample_gaps``, service draws, and 16x1's per-message
core spray — so for a given seed both engines see identical arrivals,
services, and core picks and differ only in the queueing model
(DES-calibrated FIFO vs per-event NI pipeline). ``auto`` resolves
through the capability matrix (:mod:`repro.fastpath.select`): the
single-chip scheme surrogates pin it to ``fast``, and explicitly
requesting ``fluid`` raises with the supported alternatives.
``engine="des"`` runs the original ground-truth path, byte-identical
to the historical DES-only driver. On the ``quick``/``full`` profiles
a surrogate run appends a DES cross-check table: both engines rerun
the sub-critical overlap points under common random numbers and the
p50/p99 deltas are tabulated (EXPERIMENTS.md documents the 15% band;
at/above capacity the surrogate is not gated — critical-regime tails
are calibration-sensitive on every tier but the DES). All points fan
out through :func:`repro.runner.map_points` under per-task seeds —
bit-identical output at any ``--workers`` count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import SweepResult, format_table
from ..runner import map_points, task_seed
from .common import (
    ExperimentResult,
    calibrate_mean_service_ns,
    capacity_grid,
    get_profile,
)

__all__ = ["run_diurnal", "make_arrival_process", "PROFILE_KINDS"]

#: The two headline policies (paper Fig. 7a labels).
SCHEMES = ("1x16", "16x1")

#: Load profiles swept per policy.
PROFILE_KINDS = ("constant", "diurnal", "flash")

#: Diurnal swing: ±60% of the mean over one cycle spanning the run.
DIURNAL_AMPLITUDE = 0.6

#: Modeled population behind the diurnal cycle; per-user rate is
#: nominal_rate / POPULATION_USERS, re-sampled every window.
POPULATION_USERS = 1000.0

#: User re-sampling windows per run (the population's "half-hours").
POPULATION_WINDOWS = 48

#: Flash crowd: peak at FLASH_MULTIPLIER × background, holding for
#: FLASH_HOLD of the run with FLASH_RAMP ramps on each side.
FLASH_MULTIPLIER = 3.0
FLASH_START = 0.35
FLASH_RAMP = 0.05
FLASH_HOLD = 0.15


def make_arrival_process(kind: str, rate_rps: float, horizon_ns: float):
    """Build the arrival process for one (profile kind, nominal rate).

    Every kind offers the same *average* rate over ``horizon_ns`` —
    the comparison isolates the load's shape, not its volume.
    """
    from ..popload import (
        DiurnalRate,
        FlashCrowdRate,
        NonhomogeneousPoisson,
        PopulationProcess,
        StationaryPoisson,
    )

    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps!r}")
    if horizon_ns <= 0:
        raise ValueError(f"horizon_ns must be positive, got {horizon_ns!r}")
    if kind == "constant":
        return StationaryPoisson(rate_rps)
    if kind == "diurnal":
        profile = DiurnalRate(
            mean_rate_rps=rate_rps,
            relative_amplitude=DIURNAL_AMPLITUDE,
            period_ns=horizon_ns,
        )
        return PopulationProcess(
            mean_users=POPULATION_USERS,
            per_user_rps=rate_rps / POPULATION_USERS,
            window_ns=horizon_ns / POPULATION_WINDOWS,
            user_distribution="poisson",
            profile=profile,
        )
    if kind == "flash":
        # Solve the background so the run-average equals the nominal
        # rate: mean = base × (1 + (m-1)·W), W = hold + (ramp+decay)/2.
        weight = FLASH_HOLD + FLASH_RAMP
        base = rate_rps / (1.0 + (FLASH_MULTIPLIER - 1.0) * weight)
        profile = FlashCrowdRate(
            base_rate_rps=base,
            peak_rate_rps=FLASH_MULTIPLIER * base,
            start_ns=FLASH_START * horizon_ns,
            ramp_ns=FLASH_RAMP * horizon_ns,
            hold_ns=FLASH_HOLD * horizon_ns,
            decay_ns=FLASH_RAMP * horizon_ns,
        )
        return NonhomogeneousPoisson(profile)
    raise ValueError(
        f"unknown profile kind {kind!r}; expected one of {PROFILE_KINDS}"
    )


#: One task: (scheme, kind, load_mrps, requests, warmup, seed).
_Task = Tuple[str, str, float, int, float, int]

#: One fast-tier task: a DES task plus the chip's calibrated
#: ``(occupancy_ns, shift_ns)`` split, computed once in the parent so
#: pool workers never redo the DES probes.
_FastTask = Tuple[str, str, float, int, float, int, Tuple[float, float]]


def _run_diurnal_task(task: _Task) -> dict:
    """One (policy, profile, load) point (pool-safe module function)."""
    scheme, kind, load_mrps, requests, warmup, seed = task
    from ..core import make_system

    system = make_system(scheme, "herd", seed=seed)
    horizon_ns = requests / (load_mrps * 1e6) * 1e9
    system.arrival_process = make_arrival_process(
        kind, load_mrps * 1e6, horizon_ns
    )
    result = system.run_point(
        load_mrps, num_requests=requests, warmup_fraction=warmup
    )
    return {
        "scheme": scheme,
        "kind": kind,
        "point": result.point,
        "stall_fraction": result.stall_fraction,
    }


def _run_diurnal_fast_task(task: _FastTask) -> dict:
    """One fast-tier (policy, profile, load) point (pool-safe).

    Same task shape, seed, and arrival process as
    :func:`_run_diurnal_task`; the chip is the calibrated FIFO
    surrogate instead of the per-event NI pipeline.
    """
    scheme, kind, load_mrps, requests, warmup, seed, chip_profile = task
    from ..fastpath.fastchip import fast_chip_point
    from ..workloads import HerdWorkload

    horizon_ns = requests / (load_mrps * 1e6) * 1e9
    process = make_arrival_process(kind, load_mrps * 1e6, horizon_ns)
    point = fast_chip_point(
        scheme,
        HerdWorkload(),
        load_mrps,
        requests,
        seed,
        chip_profile,
        arrival_process=process,
        warmup_fraction=warmup,
    )
    return {
        "scheme": scheme,
        "kind": kind,
        "point": point,
        "stall_fraction": float(point.extra["stall_fraction"]),
    }


#: Surrogate runs cross-check against the DES only below this capacity
#: fraction: the calibrated FIFO holds its band in the sub-critical
#: regime, while at/above capacity the tail is horizon-dominated and
#: calibration-sensitive on every tier but the DES.
OVERLAP_MAX_FRACTION = 0.9


def run_diurnal(
    profile: str = "quick",
    seed: int = 0,
    workers: Optional[int] = None,
    engine: str = "auto",
) -> ExperimentResult:
    """Sweep policy × load-profile; report SLO capacity and p99 shifts.

    ``engine="auto"`` (the default) resolves through the capability
    matrix — the single-chip scheme surrogates pin it to ``fast`` —
    while ``engine="des"`` reproduces the ground-truth output
    byte-for-byte. On quick/full, surrogate runs append a DES
    cross-check table over the sub-critical overlap points.
    """
    from ..fastpath import resolve_engine

    # Capability probe: the richest arrival shape the sweep uses (the
    # population-driven diurnal process); chip=True because the
    # schemes are single-chip queueing structures, which the fluid
    # tier cannot express (explicitly requesting it raises).
    resolved = resolve_engine(
        engine,
        1,
        arrival_process=make_arrival_process("diurnal", 1e6, 1e9),
        chip=True,
    )
    prof = get_profile(profile)
    requests = prof.arch_requests
    mean_service = calibrate_mean_service_ns("herd", "1x16", seed)
    slo_ns = 10.0 * mean_service
    capacity_mrps = 16.0 / (mean_service / 1e3)  # cores / S̄(µs)
    loads = capacity_grid(capacity_mrps, prof.sweep_points)

    chip_profiles: Optional[Dict[str, Tuple[float, float]]] = None
    if resolved != "des":
        from ..fastpath import calibrated_chip_profile

        # Both schemes' DES-anchored (occupancy, shift) splits, probed
        # once here (lru-cached) so pool workers never rerun the DES.
        chip_profiles = {
            scheme: calibrated_chip_profile(scheme) for scheme in SCHEMES
        }

    tasks: List[tuple] = []
    labels: List[str] = []
    hints: List[float] = []
    for scheme in SCHEMES:
        for kind in PROFILE_KINDS:
            for index, load in enumerate(loads):
                task = (
                    scheme,
                    kind,
                    load,
                    requests,
                    prof.warmup_fraction,
                    task_seed("ext-diurnal", f"{scheme}/{kind}", index, seed),
                )
                if chip_profiles is not None:
                    task = task + (chip_profiles[scheme],)
                tasks.append(task)
                labels.append(f"{scheme}/{kind}[{index}]@{load:.2f}")
                # Bursty profiles build backlog: schedule them first.
                hints.append(load * (1.0 if kind == "constant" else 1.5))
    outcome = map_points(
        _run_diurnal_task if resolved == "des" else _run_diurnal_fast_task,
        tasks,
        workers=workers,
        labels=labels,
        progress_label="ext-diurnal",
        cost_hints=hints,
    )

    curves: Dict[Tuple[str, str], List] = {
        (scheme, kind): [] for scheme in SCHEMES for kind in PROFILE_KINDS
    }
    for task, row in zip(tasks, outcome.results):
        if row is None:
            raise RuntimeError(
                f"ext-diurnal point {task[0]}/{task[1]}@{task[2]:.2f} "
                f"failed: {outcome.findings()}"
            )
        curves[(row["scheme"], row["kind"])].append(row["point"])

    sweeps: Dict[str, SweepResult] = {}
    capacity: Dict[str, Dict[str, float]] = {s: {} for s in SCHEMES}
    mid_p99: Dict[str, Dict[str, float]] = {s: {} for s in SCHEMES}
    mid_index = len(loads) // 2
    rows = []
    for scheme in SCHEMES:
        for kind in PROFILE_KINDS:
            label = f"{scheme}/{kind}"
            sweep = SweepResult(label=label, points=curves[(scheme, kind)])
            sweeps[label] = sweep
            under_slo = sweep.throughput_under_slo(slo_ns)
            capacity[scheme][kind] = under_slo
            mid = sweep.points[mid_index]
            mid_p99[scheme][kind] = mid.p99
            rows.append(
                [
                    label,
                    under_slo,
                    mid.offered_load,
                    mid.p99 / 1e3,
                    sweep.points[-1].p99 / 1e3,
                ]
            )

    tables = [
        format_table(
            [
                "policy/profile",
                "tput under SLO (MRPS)",
                "mid load (MRPS)",
                "p99@mid (µs)",
                "p99@top (µs)",
            ],
            rows,
            title=(
                f"HERD, SLO={slo_ns / 1e3:.1f}µs — equal-average load "
                f"shaped constant vs diurnal (peak "
                f"{1 + DIURNAL_AMPLITUDE:g}x) vs flash crowd (peak "
                f"~{FLASH_MULTIPLIER / (1 + (FLASH_MULTIPLIER - 1) * (FLASH_HOLD + FLASH_RAMP)):.2f}x)"
            ),
        )
    ]

    findings: List[str] = []
    for scheme in SCHEMES:
        constant = capacity[scheme]["constant"]
        for kind in ("diurnal", "flash"):
            shaped = capacity[scheme][kind]
            if shaped > 0:
                findings.append(
                    f"{scheme}: {kind} load at the same average rate cuts "
                    f"SLO capacity {constant:.2f} -> {shaped:.2f} MRPS "
                    f"({constant / shaped:.2f}x) — the peak, not the mean, "
                    "sets the provisioning point"
                )
            else:
                findings.append(
                    f"{scheme}: under {kind} load no swept point meets the "
                    "SLO — the peak saturates every operating point"
                )
    for kind in PROFILE_KINDS:
        single = capacity["1x16"][kind]
        parted = capacity["16x1"][kind]
        if parted > 0:
            findings.append(
                f"{kind}: 1x16 over 16x1 = {single / parted:.2f}x under SLO"
            )
        else:
            findings.append(
                f"{kind}: 16x1 never meets the SLO; 1x16 "
                f"sustains {single:.2f} MRPS"
            )

    data: Dict[str, object] = {
        "sweeps": sweeps,
        "slo_ns": slo_ns,
        "mean_service_ns": mean_service,
        "capacity": capacity,
        "mid_p99": mid_p99,
        "loads": list(loads),
    }
    if resolved != "des":
        data["engine"] = resolved
        findings.append(
            f"engine={resolved}: calibrated-chip surrogate under common "
            "random numbers (ground truth: --engine des)"
        )
        if prof.name != "smoke":
            _append_des_check(
                tasks, curves, loads, capacity_mrps, workers,
                data, tables, findings,
            )

    return ExperimentResult(
        "ext-diurnal",
        "Population-driven load: SLO capacity under diurnal cycles "
        "and flash crowds",
        data=data,
        tables=tables,
        findings=findings,
    )


def _append_des_check(
    tasks, curves, loads, capacity_mrps, workers, data, tables, findings
) -> None:
    """Rerun the sub-critical overlap points on the DES and tabulate.

    Common random numbers make this a paired comparison: each DES task
    reuses the surrogate task's exact seed, so the tabulated deltas
    are engine error, not sampling noise. The overlap grid is the
    mid-grid point plus the highest sub-critical fraction (both below
    :data:`OVERLAP_MAX_FRACTION` of capacity — see the module
    docstring for why saturated points are not gated).
    """
    mid_index = len(loads) // 2
    overlap = sorted(
        {
            index
            for index in (mid_index, len(loads) - 3)
            if loads[index] <= OVERLAP_MAX_FRACTION * capacity_mrps
        }
    )
    if not overlap:
        return
    des_tasks: List[_Task] = []
    des_labels: List[str] = []
    for scheme in SCHEMES:
        for kind in PROFILE_KINDS:
            for index in overlap:
                fast_task = tasks[
                    (SCHEMES.index(scheme) * len(PROFILE_KINDS)
                     + PROFILE_KINDS.index(kind)) * len(loads) + index
                ]
                des_tasks.append(tuple(fast_task[:6]))
                des_labels.append(
                    f"des-check {scheme}/{kind}[{index}]@{loads[index]:.2f}"
                )
    outcome = map_points(
        _run_diurnal_task,
        des_tasks,
        workers=workers,
        labels=des_labels,
        progress_label="ext-diurnal des-check",
    )
    rows = []
    deltas: Dict[str, Dict[str, float]] = {}
    cursor = 0
    for scheme in SCHEMES:
        for kind in PROFILE_KINDS:
            for index in overlap:
                des_row = outcome.results[cursor]
                cursor += 1
                if des_row is None:
                    raise RuntimeError(
                        f"ext-diurnal des-check {scheme}/{kind}"
                        f"@{loads[index]:.2f} failed: {outcome.findings()}"
                    )
                fast_point = curves[(scheme, kind)][index]
                des_point = des_row["point"]
                p50_delta = (
                    fast_point.summary.p50 / des_point.summary.p50 - 1.0
                )
                p99_delta = fast_point.p99 / des_point.p99 - 1.0
                key = f"{scheme}/{kind}@{loads[index]:.2f}"
                deltas[key] = {
                    "p50_delta": p50_delta,
                    "p99_delta": p99_delta,
                }
                rows.append(
                    [
                        key,
                        des_point.summary.p50,
                        fast_point.summary.p50,
                        f"{p50_delta:+.1%}",
                        des_point.p99,
                        fast_point.p99,
                        f"{p99_delta:+.1%}",
                    ]
                )
    worst = max(
        max(abs(entry["p50_delta"]), abs(entry["p99_delta"]))
        for entry in deltas.values()
    )
    data["des_check"] = {
        "loads": [loads[index] for index in overlap],
        "deltas": deltas,
        "worst_abs_delta": worst,
    }
    tables.append(
        format_table(
            [
                "policy/profile@load",
                "des p50 (ns)",
                "fast p50 (ns)",
                "p50 delta",
                "des p99 (ns)",
                "fast p99 (ns)",
                "p99 delta",
            ],
            rows,
            title=(
                "Ground-truth cross-check on the sub-critical overlap "
                "grid (common random numbers)"
            ),
        )
    )
    findings.append(
        f"fast-vs-des p50/p99 agreement on the overlap grid is within "
        f"{worst:.1%}"
    )
