"""Demo Perfetto trace: one telemetry-instrumented fig7a-style point.

``python -m repro.experiments.trace`` (or ``make trace``) runs a single
HERD load point on the 1×16 (RPCValet-style) configuration with message
capture and telemetry enabled, then writes three artifacts:

* ``rpcvalet.trace.json`` — Trace Event Format, emitted through the
  unified exporter (:func:`repro.telemetry.export_unified_trace`) so
  per-RPC bars on NI/dispatcher/core tracks and queue-depth counter
  tracks land in one file; load it at https://ui.perfetto.dev;
* ``rpcvalet.telemetry.jsonl`` — the merged telemetry snapshot, one
  JSON object per counter/gauge/histogram/series;
* ``rpcvalet.manifest.json`` — run provenance (config, git SHA,
  versions, wall-clock), including a ``capture`` section that records
  how many messages the ``max_messages`` cap kept vs dropped.

The point runs at ~70% of nominal capacity so queues visibly build and
drain without saturating.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from ..core import make_system
from ..telemetry import export_unified_trace, write_snapshot_jsonl

__all__ = ["produce_trace", "main"]


def _trace_point_task(task) -> object:
    """One instrumented trace point (module-level: cacheable/picklable)."""
    system, load, num_requests, max_messages = task
    return system.run_point(
        load,
        num_requests=num_requests,
        keep_messages=True,
        max_messages=max_messages,
    )


def produce_trace(
    directory,
    scheme: str = "1x16",
    workload: str = "herd",
    num_requests: int = 4_000,
    load_fraction: float = 0.7,
    max_messages: int = 2_000,
    seed: int = 0,
) -> dict:
    """Run one instrumented point and write the trace/telemetry/manifest.

    Returns ``{"trace": path, "telemetry": path, "manifest": path,
    "events": count}``.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    started = time.time()

    system = make_system(scheme, workload, seed=seed, telemetry=True)
    capacity_mrps = 16.0 / (system.expected_service_ns / 1e3)
    load = load_fraction * capacity_mrps
    # Routed through map_points as a single task so the instrumented
    # point consults the on-disk result cache when caching is enabled.
    from ..runner import map_points

    outcome = map_points(
        _trace_point_task,
        [(system, load, num_requests, max_messages)],
        workers=1,
        labels=[f"trace {scheme}/{workload} (seed {seed})"],
        progress=False,
    )
    result = outcome.results[0]
    if result is None:
        raise RuntimeError(
            f"trace run failed: {'; '.join(outcome.findings())}"
        )

    trace_path = directory / "rpcvalet.trace.json"
    events = export_unified_trace(
        trace_path, messages=result.messages, telemetry=result.telemetry
    )
    telemetry_path = directory / "rpcvalet.telemetry.jsonl"
    write_snapshot_jsonl(result.telemetry, telemetry_path)

    from .persistence import build_manifest

    manifest = build_manifest(
        "trace-demo",
        config={
            "scheme": scheme,
            "workload": workload,
            "num_requests": num_requests,
            "offered_mrps": load,
            "max_messages": max_messages,
            "seed": seed,
        },
        elapsed_s=time.time() - started,
        capture={
            "max_messages": max_messages,
            "kept_messages": len(result.messages),
            "dropped_messages": result.dropped_messages,
        },
    )
    manifest_path = directory / "rpcvalet.manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2))

    return {
        "trace": trace_path,
        "telemetry": telemetry_path,
        "manifest": manifest_path,
        "events": events,
        "p99_ns": result.p99,
        "dropped_messages": result.dropped_messages,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Produce a demo Perfetto trace from one instrumented run.",
    )
    parser.add_argument(
        "--out", default="traces", metavar="DIR", help="output directory"
    )
    parser.add_argument("--scheme", default="1x16", help="balancing scheme")
    parser.add_argument("--workload", default="herd", help="workload name")
    parser.add_argument(
        "--requests", type=int, default=4_000, help="requests to simulate"
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    args = parser.parse_args(argv)
    outcome = produce_trace(
        args.out,
        scheme=args.scheme,
        workload=args.workload,
        num_requests=args.requests,
        seed=args.seed,
    )
    print(
        f"wrote {outcome['trace']} ({outcome['events']} events, "
        f"p99 {outcome['p99_ns'] / 1e3:.2f}µs, "
        f"{outcome['dropped_messages']} messages dropped by the capture cap)"
    )
    print(f"wrote {outcome['telemetry']}")
    print(f"wrote {outcome['manifest']}")
    print("open the trace at https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
