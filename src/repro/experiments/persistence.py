"""Persisting experiment results as JSON snapshots plus run manifests.

Serializes an :class:`ExperimentResult` — tables, findings, and every
sweep's points — to a stable JSON layout, so runs can be archived,
diffed across code versions, and compared for regressions:

    python -m repro.experiments fig7a --save results/
    # ... change the code ...
    python -m repro.experiments fig7a --save results-new/
    # then: compare_snapshots(load_snapshot(a), load_snapshot(b))

Every saved snapshot gets a sibling ``<id>.manifest.json`` recording
the provenance needed to reproduce or triage the run: the exact
configuration (experiment id, profile, seed, worker count), the git
commit the code was at, the Python/NumPy/repro versions, the platform,
and wall-clock timing. Diffing two snapshots without their manifests is
guesswork; with them it's a bisection.
"""

from __future__ import annotations

import json
import math
import pathlib
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional, Union

from ..metrics import SweepResult
from .cli import collect_sweeps
from .common import ExperimentResult

__all__ = [
    "result_to_dict",
    "save_result",
    "load_snapshot",
    "compare_snapshots",
    "build_manifest",
    "write_manifest",
]

_SCHEMA_VERSION = 1
_MANIFEST_SCHEMA_VERSION = 1


def _git_commit() -> Optional[str]:
    """Current git SHA (with ``-dirty`` suffix), or None outside a repo."""
    root = pathlib.Path(__file__).resolve().parents[3]
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    return f"{sha}-dirty" if status else sha


def build_manifest(
    experiment_id: str,
    config: Optional[dict] = None,
    elapsed_s: Optional[float] = None,
    capture: Optional[dict] = None,
) -> dict:
    """Provenance record for one experiment run.

    ``config`` is the run configuration (profile, seed, workers, ...);
    ``elapsed_s`` the run's wall-clock duration; ``capture`` accounts
    for bounded-capture artifacts (e.g. ``max_messages`` and how many
    messages the cap dropped) so a truncated trace is distinguishable
    from a complete one. Code identity (git SHA), package versions,
    and platform are collected here — a manifest answers "what exactly
    produced this snapshot?".
    """
    import numpy

    from .. import __version__ as repro_version

    manifest = {
        "schema_version": _MANIFEST_SCHEMA_VERSION,
        "experiment_id": experiment_id,
        "config": dict(config or {}),
        "git_commit": _git_commit(),
        "versions": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "repro": repro_version,
        },
        "platform": {
            "system": platform.system(),
            "machine": platform.machine(),
            "python_implementation": platform.python_implementation(),
        },
        "argv": list(sys.argv),
        "wall_clock": {
            "completed_unix": time.time(),
            "completed_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "elapsed_s": elapsed_s,
        },
    }
    if capture is not None:
        manifest["capture"] = dict(capture)
    return manifest


def write_manifest(
    experiment_id: str,
    directory: Union[str, pathlib.Path],
    config: Optional[dict] = None,
    elapsed_s: Optional[float] = None,
    capture: Optional[dict] = None,
) -> pathlib.Path:
    """Write ``<directory>/<experiment_id>.manifest.json``; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{experiment_id}.manifest.json"
    manifest = build_manifest(
        experiment_id, config=config, elapsed_s=elapsed_s, capture=capture
    )
    path.write_text(json.dumps(manifest, indent=2))
    return path


def _sweep_to_dict(sweep: SweepResult) -> dict:
    return {
        "label": sweep.label,
        "points": [
            {
                "offered_load": float(point.offered_load),
                "achieved_throughput": float(point.achieved_throughput),
                "p99": float(point.p99),
                "mean": float(point.summary.mean),
                "count": int(point.summary.count),
            }
            for point in sweep.points
        ],
    }


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-safe snapshot of an experiment result."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "findings": list(result.findings),
        "tables": list(result.tables),
        "sweeps": [_sweep_to_dict(sweep) for sweep in collect_sweeps(result.data)],
    }


def save_result(
    result: ExperimentResult, directory: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write ``<directory>/<experiment_id>.json``; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.json"
    path.write_text(json.dumps(result_to_dict(result), indent=2))
    return path


def load_snapshot(path: Union[str, pathlib.Path]) -> dict:
    """Load a snapshot written by :func:`save_result`."""
    payload = json.loads(pathlib.Path(path).read_text())
    version = payload.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ValueError(
            f"snapshot schema {version!r} not supported (expected {_SCHEMA_VERSION})"
        )
    return payload


def compare_snapshots(
    baseline: dict, candidate: dict, tolerance: float = 0.10
) -> List[str]:
    """Report p99 regressions between two snapshots of one experiment.

    Matches sweeps by label and points by offered load; returns
    human-readable lines for every point whose p99 moved more than
    ``tolerance`` relatively. Empty list = no regressions.
    """
    if baseline["experiment_id"] != candidate["experiment_id"]:
        raise ValueError(
            "snapshots are from different experiments: "
            f"{baseline['experiment_id']} vs {candidate['experiment_id']}"
        )
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance!r}")
    baseline_sweeps: Dict[str, dict] = {
        sweep["label"]: sweep for sweep in baseline["sweeps"]
    }
    report: List[str] = []
    for sweep in candidate["sweeps"]:
        reference = baseline_sweeps.get(sweep["label"])
        if reference is None:
            report.append(f"new sweep {sweep['label']!r} (not in baseline)")
            continue
        reference_points = {
            round(point["offered_load"], 9): point
            for point in reference["points"]
        }
        for point in sweep["points"]:
            match = reference_points.get(round(point["offered_load"], 9))
            if match is None:
                continue
            old_p99, new_p99 = match["p99"], point["p99"]
            if not (math.isfinite(old_p99) and math.isfinite(new_p99)):
                continue
            if old_p99 <= 0:
                continue
            change = (new_p99 - old_p99) / old_p99
            if abs(change) > tolerance:
                report.append(
                    f"{sweep['label']} @ load {point['offered_load']:g}: "
                    f"p99 {old_p99:.4g} -> {new_p99:.4g} ({change:+.1%})"
                )
    return report
