"""Figure 7: hardware queuing implementations on the simulated chip.

* Fig. 7a — HERD under {16×1, 4×4, 1×16}, SLO = 10×S̄;
* Fig. 7b — Masstree gets+scans, SLO = 12.5µs on gets (plus the
  paper's relaxed 75µs comparison);
* Fig. 7c — synthetic fixed and GEV under the three configurations.

Each driver sweeps offered load, reports the p99-vs-throughput series,
and extracts throughput under SLO and the tail-latency gap before
saturation ("up to 4× lower tail latency").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import make_system, sweep_many
from ..metrics import SweepResult, sweep_table
from .common import (
    ExperimentResult,
    calibrate_mean_service_ns,
    capacity_grid,
    get_profile,
)

__all__ = ["run_fig7a", "run_fig7b", "run_fig7c", "sweep_schemes"]

#: The three hardware configurations of §6.1 (paper labels).
HARDWARE_SCHEMES = ("16x1", "4x4", "1x16")


def sweep_schemes(
    workload: str,
    schemes: Sequence[str],
    loads: Sequence[float],
    num_requests: int,
    seed: int,
    warmup_fraction: float = 0.1,
    workers: Optional[int] = None,
    experiment: Optional[str] = None,
    failures: Optional[List[str]] = None,
) -> Dict[str, SweepResult]:
    """Sweep several schemes over the same workload and load grid.

    All (scheme, load-point) tasks fan out through one
    :func:`repro.core.sweep_many` call, so ``workers`` processes stay
    busy across scheme boundaries.
    """
    systems = {
        scheme: make_system(scheme, workload, seed=seed) for scheme in schemes
    }
    return sweep_many(
        systems,
        loads,
        num_requests=num_requests,
        warmup_fraction=warmup_fraction,
        workers=workers,
        experiment=experiment,
        failures=failures,
    )


def _slo_findings(
    sweeps: Dict[str, SweepResult], slo_ns: float, best: str = "1x16"
) -> List[str]:
    """Throughput-under-SLO comparison lines, paper style."""
    under_slo = {
        label: sweep.throughput_under_slo(slo_ns)
        for label, sweep in sweeps.items()
    }
    findings = [
        "throughput under SLO (MRPS): "
        + ", ".join(f"{label}={tput:.2f}" for label, tput in under_slo.items())
    ]
    best_tput = under_slo.get(best, 0.0)
    for label, tput in under_slo.items():
        if label == best:
            continue
        if tput > 0:
            findings.append(
                f"{best} over {label}: {best_tput / tput:.2f}x under SLO"
            )
        else:
            findings.append(f"{label} never meets the SLO; {best} does")
    return findings


def _mean_service_ns(workload: str, schemes: Sequence[str], seed: int) -> float:
    """Measured S̄ from a short calibration run of the first scheme.

    Memoized process-wide (see
    :func:`repro.experiments.common.calibrate_mean_service_ns`).
    """
    return calibrate_mean_service_ns(workload, schemes[0], seed)


def run_fig7a(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """HERD: 16×1 vs 4×4 vs 1×16, SLO = 10×S̄ (≈5.5µs)."""
    prof = get_profile(profile)
    mean_service = _mean_service_ns("herd", HARDWARE_SCHEMES, seed)
    capacity_mrps = 16.0 / (mean_service / 1e3)  # cores / S̄(µs)
    loads = capacity_grid(capacity_mrps, prof.sweep_points)
    failures: List[str] = []
    sweeps = sweep_schemes(
        "herd",
        HARDWARE_SCHEMES,
        loads,
        prof.arch_requests,
        seed,
        workers=workers,
        experiment="fig7a",
        failures=failures,
    )
    slo_ns = 10.0 * mean_service
    result = ExperimentResult(
        "fig7a",
        f"HERD, hardware queuing systems (S̄={mean_service:.0f}ns, "
        f"SLO={slo_ns / 1e3:.1f}µs)",
        data={"sweeps": sweeps, "slo_ns": slo_ns, "mean_service_ns": mean_service},
        tables=[
            sweep_table(
                list(sweeps.values()),
                load_label="offered MRPS",
                title="p99 latency (ns) vs achieved throughput (MRPS)",
            )
        ],
        findings=_slo_findings(sweeps, slo_ns) + failures,
    )
    return result


def run_fig7b(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Masstree: gets-only SLO of 12.5µs; relaxed comparison at 75µs."""
    prof = get_profile(profile)
    #: §6.1: "We set the SLO for Masstree at 10× the service time of the
    #: get operations, equalling 12.5µs".
    slo_ns = 12_500.0
    relaxed_slo_ns = 75_000.0
    mean_service = _mean_service_ns("masstree", HARDWARE_SCHEMES, seed)
    capacity_mrps = 16.0 / (mean_service / 1e3)
    loads = capacity_grid(capacity_mrps, prof.sweep_points)
    failures: List[str] = []
    sweeps = sweep_schemes(
        "masstree",
        HARDWARE_SCHEMES,
        loads,
        prof.arch_requests,
        seed,
        workers=workers,
        experiment="fig7b",
        failures=failures,
    )
    findings = _slo_findings(sweeps, slo_ns) + failures
    relaxed = {
        label: sweep.throughput_under_slo(relaxed_slo_ns)
        for label, sweep in sweeps.items()
    }
    findings.append(
        "throughput under relaxed 75µs SLO (MRPS): "
        + ", ".join(f"{label}={tput:.2f}" for label, tput in relaxed.items())
    )
    result = ExperimentResult(
        "fig7b",
        f"Masstree gets (S̄={mean_service / 1e3:.2f}µs overall), "
        "SLO=12.5µs on gets",
        data={
            "sweeps": sweeps,
            "slo_ns": slo_ns,
            "relaxed_slo_ns": relaxed_slo_ns,
            "relaxed_under_slo": relaxed,
            "mean_service_ns": mean_service,
        },
        tables=[
            sweep_table(
                list(sweeps.values()),
                load_label="offered MRPS",
                title="gets p99 (ns) vs achieved throughput (MRPS)",
            )
        ],
        findings=findings,
    )
    return result


def run_fig7c(
    profile: str = "quick",
    seed: int = 0,
    kinds: Sequence[str] = ("fixed", "gev"),
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Synthetic fixed & GEV under the three hardware configurations."""
    prof = get_profile(profile)
    all_sweeps: Dict[str, Dict[str, SweepResult]] = {}
    tables = []
    findings: List[str] = []
    data: Dict[str, object] = {}
    for kind in kinds:
        workload = f"synthetic-{kind}"
        mean_service = _mean_service_ns(workload, HARDWARE_SCHEMES, seed)
        capacity_mrps = 16.0 / (mean_service / 1e3)
        loads = capacity_grid(capacity_mrps, prof.sweep_points)
        sweeps = sweep_schemes(
            workload,
            HARDWARE_SCHEMES,
            loads,
            prof.arch_requests,
            seed,
            workers=workers,
            experiment="fig7c",
            failures=findings,
        )
        # Relabel to paper style: "16x1_fixed" etc.
        sweeps = {
            f"{label}_{kind}": sweep for label, sweep in sweeps.items()
        }
        for label, sweep in sweeps.items():
            sweep.label = label
        all_sweeps[kind] = sweeps
        slo_ns = 10.0 * mean_service
        data[f"slo_ns_{kind}"] = slo_ns
        data[f"mean_service_ns_{kind}"] = mean_service
        tables.append(
            sweep_table(
                list(sweeps.values()),
                load_label="offered MRPS",
                title=f"synthetic {kind}: p99 (ns) vs throughput (MRPS), "
                f"SLO={slo_ns / 1e3:.1f}µs",
            )
        )
        under_slo = {
            label: sweep.throughput_under_slo(slo_ns)
            for label, sweep in sweeps.items()
        }
        findings.append(
            f"{kind}: tput under SLO (MRPS): "
            + ", ".join(f"{lbl}={tp:.2f}" for lbl, tp in under_slo.items())
        )
        one = under_slo.get(f"1x16_{kind}", 0.0)
        for other in ("4x4", "16x1"):
            tput = under_slo.get(f"{other}_{kind}", 0.0)
            if tput > 0:
                findings.append(
                    f"{kind}: 1x16 over {other}: {one / tput:.2f}x"
                )
    data["sweeps"] = all_sweeps
    return ExperimentResult(
        "fig7c",
        "Synthetic distributions, hardware queuing systems",
        data=data,
        tables=tables,
        findings=findings,
    )
