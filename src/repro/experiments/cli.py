"""Command-line driver: ``python -m repro.experiments <id> [--profile P]``.

Runs one experiment (or ``all``) and prints its tables — the same
rows/series the paper's figures plot. ``--workers N`` fans each sweep's
independent load points across N processes (bit-identical results at
any worker count; see :mod:`repro.runner`). ``--chart`` adds monospace
scatter plots of the sweep curves; ``--csv DIR`` writes every sweep as
long-format CSV for external plotting.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict, List

from ..metrics import SweepResult, sweeps_chart, sweeps_csv
from ..runner import set_progress
from .ablations import (
    run_indirection_ablation,
    run_outstanding_ablation,
    run_policy_ablation,
    run_scalability_ablation,
    run_slots_ablation,
    run_straggler_ablation,
)
from .common import ExperimentResult, PROFILES
from .datacenter import run_datacenter
from .diurnal import run_diurnal
from .extensions import (
    run_bursts,
    run_cluster,
    run_dynamic_slots,
    run_hedging,
    run_preemption,
    run_rss_spray,
    run_validate,
)
from .faults import run_faults
from .fig2 import run_fig2a, run_fig2b, run_fig2c
from .fig6 import run_fig6
from .fig7 import run_fig7a, run_fig7b, run_fig7c
from .fig8 import run_fig8
from .fig9 import run_fig9
from .headline import run_headline
from .rack import run_rack
from .scale import run_scale
from .sensitivity import run_sensitivity
from .tails import run_tails

__all__ = ["EXPERIMENTS", "ENGINE_AWARE", "main", "collect_sweeps"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig2a": run_fig2a,
    "fig2b": run_fig2b,
    "fig2c": run_fig2c,
    "fig6": run_fig6,
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "fig7c": run_fig7c,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "headline": run_headline,
    "ablation-outstanding": run_outstanding_ablation,
    "ablation-policy": run_policy_ablation,
    "ablation-indirection": run_indirection_ablation,
    "ablation-slots": run_slots_ablation,
    "ablation-scalability": run_scalability_ablation,
    "ablation-straggler": run_straggler_ablation,
    "ext-preemption": run_preemption,
    "ext-hedging": run_hedging,
    "ext-dynamic-slots": run_dynamic_slots,
    "validate": run_validate,
    "sensitivity": run_sensitivity,
    "ext-cluster": run_cluster,
    "ext-rack": run_rack,
    "ext-scale": run_scale,
    "ext-faults": run_faults,
    "ext-bursts": run_bursts,
    "ext-tails": run_tails,
    "ext-diurnal": run_diurnal,
    "ext-datacenter": run_datacenter,
    "ablation-rss-spray": run_rss_spray,
}

#: Experiments whose driver accepts ``engine=`` (see
#: :mod:`repro.fastpath`); everything else always runs the DES.
#: Resolution is capability-aware
#: (:data:`repro.fastpath.ENGINE_CAPABILITIES`): shaped arrival
#: processes and fault plans run on the per-RPC tiers, deterministic
#: rate profiles additionally on the fluid tier's transient ODE,
#: ``ext-datacenter``'s two-level routing pins it to the per-RPC
#: tiers (the ``hierarchy`` capability), and ``ext-tails`` stays
#: DES-only — span tracing instruments the discrete-event hot paths
#: themselves, so its driver rejects every other tier with an
#: actionable error.
ENGINE_AWARE = frozenset(
    {"ext-rack", "ext-scale", "ext-tails", "ext-diurnal", "ext-datacenter",
     "headline"}
)


def collect_sweeps(value) -> List[SweepResult]:
    """Find every SweepResult nested in an experiment's data payload."""
    found: List[SweepResult] = []
    if isinstance(value, SweepResult):
        found.append(value)
    elif isinstance(value, dict):
        for child in value.values():
            found.extend(collect_sweeps(child))
    return found


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="rpcvalet-experiments",
        description="Regenerate the RPCValet paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper figure) or 'all'",
    )
    parser.add_argument(
        "--profile",
        default="quick",
        choices=sorted(PROFILES),
        help="request-count profile (default: quick)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan independent load points across N worker processes "
            "(default: REPRO_WORKERS env var, else serial); results are "
            "bit-identical for every worker count"
        ),
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=("des", "fast", "fluid", "auto"),
        help=(
            "simulation tier for engine-aware experiments "
            f"({', '.join(sorted(ENGINE_AWARE))}); default: each driver's "
            "own default (see EXPERIMENTS.md 'Engine tiers'); other "
            "experiments always run the DES"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print live per-task progress/ETA lines to stderr while "
            "sweeps run (also enabled by REPRO_PROGRESS=1)"
        ),
    )
    parser.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=None,
        help=(
            "reuse cached sweep-point results from disk (also enabled by "
            "REPRO_CACHE=1 or REPRO_CACHE=<dir>); results are bit-identical "
            "to an uncached run"
        ),
    )
    parser.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="disable the result cache regardless of REPRO_CACHE",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache directory (default: $XDG_CACHE_HOME/rpcvalet-repro)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss counters to stderr after each experiment",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render the sweep curves as text scatter plots",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="write each experiment's sweeps as <DIR>/<id>.csv",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="save a JSON snapshot as <DIR>/<id>.json (for regression diffs)",
    )
    args = parser.parse_args(argv)

    if args.progress:
        set_progress(True)
    if args.cache is not None or args.cache_dir is not None:
        from ..cache import set_cache

        set_cache(enabled=args.cache, directory=args.cache_dir)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        kwargs = {}
        if args.engine is not None and name in ENGINE_AWARE:
            kwargs["engine"] = args.engine
        result = EXPERIMENTS[name](
            profile=args.profile, seed=args.seed, workers=args.workers, **kwargs
        )
        elapsed = time.time() - started
        print(result.table())
        sweeps = collect_sweeps(result.data)
        if args.chart and sweeps:
            print()
            print(
                sweeps_chart(
                    sweeps,
                    title=f"{result.experiment_id}: p99 vs achieved throughput",
                )
            )
        if args.csv and sweeps:
            out_dir = pathlib.Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / f"{result.experiment_id}.csv"
            out_path.write_text(sweeps_csv(sweeps))
            print(f"[wrote {out_path}]")
        if args.save:
            from .persistence import save_result

            print(f"[saved {save_result(result, args.save)}]")
        if args.save or args.csv:
            from .persistence import write_manifest

            config = {
                "profile": args.profile,
                "seed": args.seed,
                "workers": args.workers,
            }
            for directory in {args.save, args.csv} - {None}:
                manifest_path = write_manifest(
                    result.experiment_id,
                    directory,
                    config=config,
                    elapsed_s=elapsed,
                )
                print(f"[manifest {manifest_path}]")
        if args.cache_stats:
            from ..cache import cache_stats

            # Stderr, so stdout stays byte-identical with/without the
            # cache (CI diffs stdout across runs).
            print(
                f"[{name} cache {cache_stats().as_dict()}]",
                file=sys.stderr,
                flush=True,
            )
        print(f"[{name} took {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
