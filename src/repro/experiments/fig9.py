"""Figure 9: RPCValet vs the theoretical 1×16 queueing model.

Methodology (§6.3): measure the implementation's mean service time S̄;
model a theoretical 1×16 system whose service time is a *composite* —
the emulated processing part D follows the experiment's distribution
and the remaining S̄−D is fixed (a conservative assumption). Both
series plot p99 (in multiples of S̄) against utilization. The paper
finds the implementation within 3% (fixed) to 15% (GEV) of the model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import make_system
from ..dists import SYNTHETIC_KINDS, synthetic
from ..metrics import SweepPoint, SweepResult, sweep_table
from ..queueing import QueueingSystem, composite_service
from .common import (
    ExperimentResult,
    calibrate_mean_service_ns,
    get_profile,
    load_grid,
)

__all__ = ["run_fig9", "model_vs_simulation"]


def model_vs_simulation(
    kind: str,
    profile: str,
    seed: int,
    workers: Optional[int] = None,
    failures: Optional[List[str]] = None,
) -> Dict[str, object]:
    """One Fig. 9 panel: (model sweep, simulation sweep, gap stats)."""
    prof = get_profile(profile)
    workload = f"synthetic-{kind}"
    system = make_system("1x16", workload, seed=seed)

    # Measure S̄ on the implementation (memoized calibration run).
    mean_service_ns = calibrate_mean_service_ns(workload, "1x16", seed)
    processing = synthetic(kind)
    fixed_part_ns = mean_service_ns - processing.mean
    if fixed_part_ns < 0:
        raise RuntimeError(
            f"measured S̄ ({mean_service_ns:.0f}ns) below processing mean"
        )

    utilizations = sorted(load_grid(0.2, 0.95, prof.sweep_points))
    capacity_mrps = 16.0 / (mean_service_ns / 1e3)

    # --- model side: theoretical 1x16 with composite service ---------------
    service = composite_service(processing, fixed_part_ns, name=f"{kind}+fixed")
    model_system = QueueingSystem(1, 16, service, seed=seed)
    model_sweep = model_system.sweep(
        utilizations,
        num_requests=prof.queueing_requests,
        label=f"model_{kind}",
        workers=workers,
        experiment="fig9",
        failures=failures,
    )

    # --- implementation side: arch sim at matching utilizations -----------
    raw_sweep = system.sweep(
        [utilization * capacity_mrps for utilization in utilizations],
        num_requests=prof.arch_requests,
        label=f"sim_{kind}",
        workers=workers,
        experiment="fig9",
        failures=failures,
    )
    # Renormalize the raw MRPS points onto Fig. 9's axes: utilization on
    # x, throughput as a capacity fraction, latency in multiples of S̄.
    sim_points: List[SweepPoint] = []
    for point in raw_sweep.points:
        # Recover the utilization from the point itself so dropped
        # (failed) points can't shift the x-axis labels.
        utilization = point.offered_load / capacity_mrps
        normalized = point.summary.scaled(1.0 / mean_service_ns)
        sim_points.append(
            SweepPoint(
                offered_load=utilization,
                achieved_throughput=point.achieved_throughput / capacity_mrps,
                summary=normalized,
            )
        )
    sim_sweep = SweepResult(label=f"sim_{kind}", points=sim_points)

    # --- gap: simulation p99 relative to model p99 below saturation -------
    gaps = []
    for model_point, sim_point in zip(model_sweep.points, sim_sweep.points):
        if model_point.offered_load <= 0.9 and model_point.p99 > 0:
            gaps.append(sim_point.p99 / model_point.p99 - 1.0)
    worst_gap = max(gaps) if gaps else float("nan")
    return {
        "model": model_sweep,
        "sim": sim_sweep,
        "worst_gap": worst_gap,
        "mean_service_ns": mean_service_ns,
        "fixed_part_ns": fixed_part_ns,
    }


def run_fig9(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """All four panels of Fig. 9."""
    tables = []
    findings: List[str] = []
    data: Dict[str, object] = {}
    for kind in SYNTHETIC_KINDS:
        panel = model_vs_simulation(kind, profile, seed, workers=workers, failures=findings)
        data[kind] = panel
        tables.append(
            sweep_table(
                [panel["model"], panel["sim"]],
                load_label="load",
                title=(
                    f"1x16 {kind}: p99 in multiples of S̄ "
                    f"(S̄={panel['mean_service_ns']:.0f}ns)"
                ),
            )
        )
        findings.append(
            f"{kind}: simulation within {panel['worst_gap'] * 100:+.1f}% of the "
            "model (worst point below 0.9 load)"
        )
    return ExperimentResult(
        "fig9",
        "RPCValet implementation vs theoretical 1x16 queueing model",
        data=data,
        tables=tables,
        findings=findings,
    )
