"""Ablations of RPCValet design choices (DESIGN.md §4).

* outstanding-per-core threshold 1 vs 2 (§4.3: threshold 2 removes the
  execution bubble; reducing to 1 "marginally degrades" short-RPC
  throughput);
* dispatcher core-selection policy (greedy vs round-robin vs random);
* NI-backend→dispatcher indirection latency sensitivity (§4.3 argues
  it is negligible);
* send-slot provisioning S (flow-control backpressure appears only
  near/past saturation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..balancing import SingleQueue
from ..core import PointResult, RpcValetSystem, run_point_task
from ..metrics import format_table
from ..runner import map_points
from ..workloads import HerdWorkload, MicrobenchCosts
from .common import ExperimentResult, get_profile

__all__ = [
    "run_outstanding_ablation",
    "run_policy_ablation",
    "run_indirection_ablation",
    "run_slots_ablation",
    "run_scalability_ablation",
    "run_straggler_ablation",
]

#: A high-but-stable HERD load (MRPS) where design choices matter.
_PROBE_MRPS = 26.0


def _fan_points(
    probes: Sequence[Tuple[str, RpcValetSystem, float, int]],
    workers: Optional[int] = None,
) -> List[PointResult]:
    """Run labelled ``(label, system, mrps, num_requests)`` probes.

    All probes fan out through one :func:`repro.runner.map_points` call.
    Each keeps its own system's seed: ablations report *ratios* between
    configurations, so common random numbers across probes matter more
    than per-task stream independence. A probe that fails even after
    the serial retry aborts the ablation — every downstream finding
    indexes the results positionally.
    """
    tasks = [
        (system, mrps, num_requests, 0.1, system.seed)
        for _, system, mrps, num_requests in probes
    ]
    outcome = map_points(
        run_point_task,
        tasks,
        workers=workers,
        labels=[label for label, *_ in probes],
    )
    for failure in outcome.failures:
        if failure.fatal:
            raise RuntimeError(f"ablation probe failed: {failure.describe()}")
    return outcome.results


def run_outstanding_ablation(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Threshold 1 vs 2 vs 4 on HERD at high load."""
    prof = get_profile(profile)
    rows: List[List[object]] = []
    data: Dict[int, Dict[str, float]] = {}
    limits = (1, 2, 4)
    probes = [
        (
            f"outstanding={limit}",
            RpcValetSystem(
                scheme=SingleQueue(outstanding_limit=limit),
                workload=HerdWorkload(),
                costs=MicrobenchCosts.lean(),
                seed=seed,
            ),
            _PROBE_MRPS,
            prof.arch_requests,
        )
        for limit in limits
    ]
    for limit, res in zip(limits, _fan_points(probes, workers=workers)):
        data[limit] = {
            "p99_ns": res.p99,
            "mean_ns": res.point.summary.mean,
            "tput_mrps": res.point.achieved_throughput,
        }
        rows.append(
            [limit, res.point.achieved_throughput, res.point.summary.mean, res.p99]
        )
    table = format_table(
        ["outstanding limit", "tput (MRPS)", "mean (ns)", "p99 (ns)"],
        rows,
        title=f"HERD at {_PROBE_MRPS} MRPS offered",
    )
    result = ExperimentResult(
        "ablation-outstanding",
        "Outstanding-requests-per-core threshold (§4.3)",
        data={"by_limit": data},
        tables=[table],
    )
    gain = data[1]["p99_ns"] / data[2]["p99_ns"] if data[2]["p99_ns"] else float("nan")
    result.findings.append(
        f"threshold 2 vs 1: p99 changes by {gain:.2f}x at high load "
        "(paper: threshold 1 marginally degrades sub-µs RPC throughput)"
    )
    return result


def run_policy_ablation(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Greedy (least-outstanding) vs round-robin vs random selection."""
    prof = get_profile(profile)
    rows: List[List[object]] = []
    data: Dict[str, float] = {}
    policies = ("least_outstanding", "round_robin", "random")
    probes = [
        (
            policy,
            RpcValetSystem(
                scheme=SingleQueue(policy=policy),
                workload=HerdWorkload(),
                costs=MicrobenchCosts.lean(),
                seed=seed,
            ),
            _PROBE_MRPS,
            prof.arch_requests,
        )
        for policy in policies
    ]
    for policy, res in zip(policies, _fan_points(probes, workers=workers)):
        data[policy] = res.p99
        rows.append([policy, res.point.achieved_throughput, res.p99])
    table = format_table(
        ["policy", "tput (MRPS)", "p99 (ns)"],
        rows,
        title=f"HERD at {_PROBE_MRPS} MRPS offered",
    )
    result = ExperimentResult(
        "ablation-policy",
        "Dispatch core-selection policy",
        data={"p99_by_policy": data},
        tables=[table],
    )
    result.findings.append(
        "with the shared-CQ hold semantics, any available core is nearly "
        "as good: selection policy is second-order (all cores are below "
        "threshold when selected)"
    )
    return result


def run_indirection_ablation(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Scale the backend→dispatcher mesh hop latency by 1x/4x/16x."""
    prof = get_profile(profile)
    rows: List[List[object]] = []
    data: Dict[float, float] = {}
    base_hop_cycles = 3
    scales = (1, 4, 16)
    probes = []
    for scale in scales:
        system = RpcValetSystem(
            scheme=SingleQueue(),
            workload=HerdWorkload(),
            costs=MicrobenchCosts.lean(),
            seed=seed,
        )
        system.config = system.config.with_updates(
            mesh_hop_cycles=base_hop_cycles * scale
        )
        probes.append((f"hop x{scale}", system, _PROBE_MRPS, prof.arch_requests))
    for scale, res in zip(scales, _fan_points(probes, workers=workers)):
        data[scale] = res.p99
        rows.append(
            [f"{scale}x ({base_hop_cycles * scale} cycles/hop)",
             res.point.achieved_throughput, res.p99]
        )
    table = format_table(
        ["hop latency", "tput (MRPS)", "p99 (ns)"],
        rows,
        title=f"HERD at {_PROBE_MRPS} MRPS offered",
    )
    result = ExperimentResult(
        "ablation-indirection",
        "NI backend → dispatcher indirection latency (§4.3)",
        data={"p99_by_scale": data},
        tables=[table],
    )
    result.findings.append(
        "at realistic hop latencies (1x-4x) the indirection is negligible, "
        "consistent with §4.3's 'a few ns'; the extreme 16x point shows the "
        "failure mode the paper's integration argument avoids — replenish-"
        "triggered refills stall when the NI-core round trip grows toward "
        "the service time (the PCIe-attached-NIC regime of §3.2)"
    )
    return result


def run_slots_ablation(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Send-slot provisioning S ∈ {1, 4, 32}: flow-control backpressure."""
    prof = get_profile(profile)
    rows: List[List[object]] = []
    data: Dict[int, Dict[str, float]] = {}
    slot_counts = (1, 4, 32)
    probes = []
    for slots in slot_counts:
        system = RpcValetSystem(
            scheme=SingleQueue(),
            workload=HerdWorkload(),
            costs=MicrobenchCosts.lean(),
            seed=seed,
        )
        system.config = system.config.with_updates(send_slots_per_node=slots)
        probes.append((f"S={slots}", system, _PROBE_MRPS, prof.arch_requests))
    for slots, res in zip(slot_counts, _fan_points(probes, workers=workers)):
        data[slots] = {
            "p99_ns": res.p99,
            "stall_fraction": res.stall_fraction,
            "tput_mrps": res.point.achieved_throughput,
        }
        rows.append(
            [slots, res.point.achieved_throughput, res.p99, res.stall_fraction]
        )
    table = format_table(
        ["slots/node (S)", "tput (MRPS)", "p99 (ns)", "stall fraction"],
        rows,
        title=f"HERD at {_PROBE_MRPS} MRPS offered",
    )
    result = ExperimentResult(
        "ablation-slots",
        "Send-slot provisioning and flow-control backpressure (§4.2)",
        data={"by_slots": data},
        tables=[table],
    )
    result.findings.append(
        "modest S suffices at rack-scale node counts; S=1 throttles "
        "per-source pipelining and shows sender stalls first"
    )
    return result


def run_scalability_ablation(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """Single-dispatcher scalability with core count (§4.3).

    §4.3 argues one hardware dispatcher sustains even a 64-core chip
    (a decision every ~8ns at 500ns RPCs). We scale the chip to 4/16/64
    cores, load each at ~85% of its capacity, and report the tail plus
    the dispatcher's busy fraction — the §4.3 feasibility number.
    """
    from ..arch import ChipConfig

    geometries = {
        4: dict(num_cores=4, mesh_rows=2, mesh_cols=2, num_backends=2),
        16: dict(num_cores=16, mesh_rows=4, mesh_cols=4, num_backends=4),
        64: dict(num_cores=64, mesh_rows=8, mesh_cols=8, num_backends=8),
    }
    prof = get_profile(profile)
    rows: List[List[object]] = []
    data: Dict[int, Dict[str, float]] = {}
    probes = []
    offered_by_cores: Dict[int, float] = {}
    for cores, geometry in geometries.items():
        system = RpcValetSystem(
            scheme=SingleQueue(),
            workload=HerdWorkload(),
            config=ChipConfig(**geometry),
            costs=MicrobenchCosts.lean(),
            seed=seed,
        )
        capacity_mrps = cores / (system.expected_service_ns / 1e3)
        offered_by_cores[cores] = 0.85 * capacity_mrps
        # More cores complete the same request count faster; scale the
        # sample so that the 64-core tail is as converged as the rest.
        num_requests = prof.arch_requests * max(1, cores // 16)
        probes.append(
            (f"{cores} cores", system, offered_by_cores[cores], num_requests)
        )
    results = _fan_points(probes, workers=workers)
    for (cores, _), (label, system, offered, _), result in zip(
        geometries.items(), probes, results
    ):
        # Dispatcher busy fraction: decisions x decision cost / wall time.
        decisions_per_second = result.point.achieved_throughput * 1e6
        busy_fraction = decisions_per_second * system.config.dispatch_ns / 1e9
        data[cores] = {
            "p99_ns": result.p99,
            "tput_mrps": result.point.achieved_throughput,
            "dispatcher_busy": busy_fraction,
        }
        rows.append(
            [cores, offered, result.point.achieved_throughput,
             result.p99, f"{busy_fraction * 100:.1f}%"]
        )
    table = format_table(
        ["cores", "offered (MRPS)", "tput (MRPS)", "p99 (ns)", "dispatcher busy"],
        rows,
        title="HERD at 85% of per-chip capacity, single NI dispatcher",
    )
    return ExperimentResult(
        "ablation-scalability",
        "Single-dispatcher scalability with core count (§4.3)",
        data={"by_cores": data},
        tables=[table],
        findings=[
            "the dispatcher's busy fraction grows linearly with core count "
            "but stays far from saturation at 64 cores — §4.3's feasibility "
            "argument quantified"
        ],
    )


def run_straggler_ablation(
    profile: str = "quick", seed: int = 0, workers: Optional[int] = None
) -> ExperimentResult:
    """§3.2's motivating scenario: a core periodically stalls.

    One core loses 25% of its time to periodic multi-µs stalls
    (TLB-shootdown / housekeeping class events). Static 16×1 hashing
    keeps feeding the degraded core; RPCValet routes around it — "while
    this core is stalled ... it is best to dispatch RPCs to other
    available cores".
    """
    from ..arch import PeriodicStragglers, RandomStalls
    from ..balancing import Partitioned

    prof = get_profile(profile)
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}
    scenarios = (
        ("healthy", None),
        # Core 3 stalls 4µs every 12µs: 25% degradation, still stable.
        ("1 straggler core", lambda: PeriodicStragglers([3], 12_000.0, 4_000.0)),
        # Every request has a 2% chance of a ~2µs stall on any core.
        ("random stalls", lambda: RandomStalls(0.02, 2_000.0)),
    )
    probes = []
    keys: List[str] = []
    for scheme_factory, scheme_name in (
        (Partitioned, "16x1"),
        (SingleQueue, "1x16"),
    ):
        for scenario_name, interference_factory in scenarios:
            system = RpcValetSystem(
                scheme=scheme_factory(),
                workload=HerdWorkload(),
                costs=MicrobenchCosts.lean(),
                seed=seed,
                interference=(
                    interference_factory() if interference_factory else None
                ),
            )
            key = f"{scheme_name}/{scenario_name}"
            keys.append(key)
            probes.append((key, system, 20.0, prof.arch_requests))
    for key, result in zip(keys, _fan_points(probes, workers=workers)):
        data[key] = {
            "p99_ns": result.p99,
            "tput_mrps": result.point.achieved_throughput,
        }
        rows.append(
            [key, result.point.achieved_throughput, result.p99]
        )
    table = format_table(
        ["scheme / scenario", "tput (MRPS)", "p99 (ns)"],
        rows,
        title="HERD at 20 MRPS offered, §3.2 interference injection",
    )
    degraded_ratio = (
        data["16x1/1 straggler core"]["p99_ns"]
        / data["1x16/1 straggler core"]["p99_ns"]
    )
    return ExperimentResult(
        "ablation-straggler",
        "Interference injection: stalled cores vs balancing scheme (§3.2)",
        data={"by_config": data},
        tables=[table],
        findings=[
            f"with one 25%-degraded core, 16x1's tail is {degraded_ratio:.0f}x "
            "RPCValet's: the static hash keeps queueing behind the stalled "
            "core while the NI dispatcher simply stops refilling it"
        ],
    )
