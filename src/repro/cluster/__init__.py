"""Multi-node cluster simulation (beyond the paper's single-chip setup)."""

from .cluster import Cluster, ClusterNode, ClusterResult, mesh_geometry
from .fabric import Fabric, HierarchicalFabric, PodFabric, UniformFabric

__all__ = [
    "Cluster",
    "ClusterNode",
    "ClusterResult",
    "mesh_geometry",
    "Fabric",
    "UniformFabric",
    "PodFabric",
    "HierarchicalFabric",
]
