"""Inter-node fabric latency model for multi-chip simulations.

The paper's evaluation models one chip and emulates its 199 peers; the
cluster package simulates several *real* chips exchanging RPCs. The
fabric supplies pairwise one-way latencies — uniform by default
(rack-scale soNUMA), distance-based for multi-rack topologies, or the
full node→rack→spine hierarchy (:class:`HierarchicalFabric`) the
datacenter layer builds on.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Fabric", "UniformFabric", "PodFabric", "HierarchicalFabric"]


class Fabric:
    """Pairwise one-way wire latency between nodes."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {num_nodes!r}")
        self.num_nodes = num_nodes

    def latency_ns(self, src: int, dst: int) -> float:
        """One-way latency from node ``src`` to node ``dst``."""
        raise NotImplementedError

    def _check(self, src: int, dst: int) -> None:
        if not 0 <= src < self.num_nodes:
            raise ValueError(f"src {src!r} out of range")
        if not 0 <= dst < self.num_nodes:
            raise ValueError(f"dst {dst!r} out of range")
        if src == dst:
            raise ValueError("no self-loop traffic in the messaging domain")


class UniformFabric(Fabric):
    """Rack-scale: every pair one hop through the ToR switch."""

    def __init__(self, num_nodes: int, latency_ns: float = 100.0) -> None:
        super().__init__(num_nodes)
        if latency_ns < 0:
            raise ValueError(f"latency must be non-negative, got {latency_ns!r}")
        self._latency_ns = latency_ns

    def latency_ns(self, src: int, dst: int) -> float:
        self._check(src, dst)
        return self._latency_ns


class PodFabric(Fabric):
    """Two-tier topology: cheap intra-pod hops, expensive inter-pod.

    Nodes are grouped into pods of ``pod_size`` in id order; same-pod
    pairs pay ``intra_pod_ns``, others ``inter_pod_ns``. Models a small
    multi-rack deployment.

    A ``pod_size`` that does not divide ``num_nodes`` is allowed and
    leaves a *ragged last pod* (``PodFabric(4, pod_size=3)`` puts node
    3 alone in pod 1) — deliberate, so a partially populated last rack
    is expressible. A ``pod_size >= num_nodes`` is rejected: every pair
    would be intra-pod, which silently degenerates to a
    :class:`UniformFabric` at ``intra_pod_ns`` and is never what a
    multi-pod latency model means.
    """

    def __init__(
        self,
        num_nodes: int,
        pod_size: int,
        intra_pod_ns: float = 100.0,
        inter_pod_ns: float = 500.0,
    ) -> None:
        super().__init__(num_nodes)
        if pod_size < 1:
            raise ValueError(f"pod_size must be >= 1, got {pod_size!r}")
        if pod_size >= num_nodes:
            raise ValueError(
                f"pod_size {pod_size!r} >= num_nodes {num_nodes!r} puts "
                "every node in one pod (an all-intra-pod fabric); use "
                "UniformFabric for a single-latency topology"
            )
        if intra_pod_ns < 0 or inter_pod_ns < 0:
            raise ValueError("latencies must be non-negative")
        self.pod_size = pod_size
        self.intra_pod_ns = intra_pod_ns
        self.inter_pod_ns = inter_pod_ns

    def pod_of(self, node: int) -> int:
        return node // self.pod_size

    def latency_ns(self, src: int, dst: int) -> float:
        self._check(src, dst)
        if self.pod_of(src) == self.pod_of(dst):
            return self.intra_pod_ns
        return self.inter_pod_ns


class HierarchicalFabric(Fabric):
    """Three-tier node→rack→spine distance model for rack-of-racks.

    Nodes are grouped into equal racks of ``rack_size`` in id order,
    each fronted by a ToR router; racks are grouped into spine pods of
    ``racks_per_pod`` racks. A pair in the same rack pays one ToR hop
    (``intra_rack_ns``); different racks under the same spine pod pay
    ToR→spine→ToR (``inter_rack_ns``); different spine pods pay the
    core hop on top (``inter_pod_ns``). With ``racks_per_pod=None``
    (the default) one spine pod spans every rack and the fabric reduces
    to a strict two-level :class:`PodFabric` whose pods divide evenly.

    Unlike :class:`PodFabric` (whose ragged last pod is a documented
    feature), this fabric validates eagerly: ``rack_size`` must divide
    ``num_nodes``, leave at least two racks, and ``racks_per_pod`` must
    divide the rack count — a datacenter sweep mis-sized by one node
    should fail loudly, not silently reshape the hierarchy.
    """

    def __init__(
        self,
        num_nodes: int,
        rack_size: int,
        racks_per_pod: Optional[int] = None,
        intra_rack_ns: float = 100.0,
        inter_rack_ns: float = 500.0,
        inter_pod_ns: float = 1000.0,
    ) -> None:
        super().__init__(num_nodes)
        if rack_size < 1:
            raise ValueError(f"rack_size must be >= 1, got {rack_size!r}")
        if num_nodes % rack_size != 0:
            raise ValueError(
                f"rack_size {rack_size!r} does not divide num_nodes "
                f"{num_nodes!r} (a ragged rack is not a hierarchy; size "
                "the topology explicitly)"
            )
        num_racks = num_nodes // rack_size
        if num_racks < 2:
            raise ValueError(
                f"rack_size {rack_size!r} leaves {num_racks} rack(s) for "
                f"{num_nodes!r} nodes; a hierarchy needs at least 2 racks "
                "(use UniformFabric for one rack)"
            )
        if racks_per_pod is None:
            racks_per_pod = num_racks
        if racks_per_pod < 1:
            raise ValueError(
                f"racks_per_pod must be >= 1, got {racks_per_pod!r}"
            )
        if num_racks % racks_per_pod != 0:
            raise ValueError(
                f"racks_per_pod {racks_per_pod!r} does not divide the "
                f"{num_racks} racks"
            )
        if not 0 <= intra_rack_ns <= inter_rack_ns <= inter_pod_ns:
            raise ValueError(
                "latencies must satisfy 0 <= intra_rack_ns <= "
                f"inter_rack_ns <= inter_pod_ns, got ({intra_rack_ns!r}, "
                f"{inter_rack_ns!r}, {inter_pod_ns!r})"
            )
        self.rack_size = rack_size
        self.num_racks = num_racks
        self.racks_per_pod = racks_per_pod
        self.num_pods = num_racks // racks_per_pod
        self.intra_rack_ns = intra_rack_ns
        self.inter_rack_ns = inter_rack_ns
        self.inter_pod_ns = inter_pod_ns

    def rack_of(self, node: int) -> int:
        return node // self.rack_size

    def pod_of(self, node: int) -> int:
        return self.rack_of(node) // self.racks_per_pod

    def latency_ns(self, src: int, dst: int) -> float:
        self._check(src, dst)
        if self.rack_of(src) == self.rack_of(dst):
            return self.intra_rack_ns
        if self.pod_of(src) == self.pod_of(dst):
            return self.inter_rack_ns
        return self.inter_pod_ns
