"""Inter-node fabric latency model for multi-chip simulations.

The paper's evaluation models one chip and emulates its 199 peers; the
cluster package simulates several *real* chips exchanging RPCs. The
fabric supplies pairwise one-way latencies — uniform by default
(rack-scale soNUMA), or distance-based for multi-rack topologies.
"""

from __future__ import annotations



__all__ = ["Fabric", "UniformFabric", "PodFabric"]


class Fabric:
    """Pairwise one-way wire latency between nodes."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {num_nodes!r}")
        self.num_nodes = num_nodes

    def latency_ns(self, src: int, dst: int) -> float:
        """One-way latency from node ``src`` to node ``dst``."""
        raise NotImplementedError

    def _check(self, src: int, dst: int) -> None:
        if not 0 <= src < self.num_nodes:
            raise ValueError(f"src {src!r} out of range")
        if not 0 <= dst < self.num_nodes:
            raise ValueError(f"dst {dst!r} out of range")
        if src == dst:
            raise ValueError("no self-loop traffic in the messaging domain")


class UniformFabric(Fabric):
    """Rack-scale: every pair one hop through the ToR switch."""

    def __init__(self, num_nodes: int, latency_ns: float = 100.0) -> None:
        super().__init__(num_nodes)
        if latency_ns < 0:
            raise ValueError(f"latency must be non-negative, got {latency_ns!r}")
        self._latency_ns = latency_ns

    def latency_ns(self, src: int, dst: int) -> float:
        self._check(src, dst)
        return self._latency_ns


class PodFabric(Fabric):
    """Two-tier topology: cheap intra-pod hops, expensive inter-pod.

    Nodes are grouped into equal pods; same-pod pairs pay
    ``intra_pod_ns``, others ``inter_pod_ns``. Models a small
    multi-rack deployment.
    """

    def __init__(
        self,
        num_nodes: int,
        pod_size: int,
        intra_pod_ns: float = 100.0,
        inter_pod_ns: float = 500.0,
    ) -> None:
        super().__init__(num_nodes)
        if pod_size < 1:
            raise ValueError(f"pod_size must be >= 1, got {pod_size!r}")
        if intra_pod_ns < 0 or inter_pod_ns < 0:
            raise ValueError("latencies must be non-negative")
        self.pod_size = pod_size
        self.intra_pod_ns = intra_pod_ns
        self.inter_pod_ns = inter_pod_ns

    def pod_of(self, node: int) -> int:
        return node // self.pod_size

    def latency_ns(self, src: int, dst: int) -> float:
        self._check(src, dst)
        if self.pod_of(src) == self.pod_of(dst):
            return self.intra_pod_ns
        return self.inter_pod_ns
