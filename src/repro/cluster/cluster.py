"""Multi-node cluster simulation: several modeled chips, all-to-all RPCs.

The paper's methodology models one chip and emulates its peers with a
traffic generator. This package closes the loop: every node is a full
simulated chip (cores, NIs, dispatcher, messaging buffers), each node
generates open-loop Poisson RPC traffic to its peers, and send-slot
flow control plus replenish routing run across a fabric with per-pair
latencies. It answers deployment-level questions the single-chip setup
cannot: end-to-end behaviour when every node is both client and
server, and sensitivity to fabric topology.

Destinations default to uniformly random peers; installing a
:class:`repro.rack.RackRouter` replaces that spray with a pluggable
inter-server policy driven by (possibly stale) load signals — the
two-level scheduling testbed the ``ext-rack`` experiment sweeps.
Racks can be heterogeneous (``core_counts``/``speed_factors``), and
``telemetry=True`` attaches per-node shared-CQ and send-slot-credit
probes plus router decision/staleness instrumentation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch import Chip, ChipConfig, SendMessage, make_send
from ..balancing import BalancingScheme, SingleQueue
from ..metrics import LatencySummary
from ..sim import Environment, RngRegistry, delayed_call
from ..workloads import MicrobenchCosts, MicrobenchProgram, RpcWorkload
from .fabric import Fabric, UniformFabric

if TYPE_CHECKING:  # pragma: no cover
    from ..rack import RackRouter, RouterStats
    from ..telemetry import TelemetrySnapshot

__all__ = ["Cluster", "ClusterNode", "ClusterResult", "mesh_geometry"]


def mesh_geometry(num_cores: int) -> Tuple[int, int]:
    """A near-square (rows, cols) mesh with ``rows * cols == num_cores``.

    Heterogeneous racks scale per-node core counts; the chip model
    requires a rectangular mesh, so pick the most square factoring
    (16 -> 4x4, 8 -> 2x4, 4 -> 2x2, 2 -> 1x2).
    """
    if num_cores < 1:
        raise ValueError(f"num_cores must be >= 1, got {num_cores!r}")
    rows = int(num_cores**0.5)
    while rows > 1 and num_cores % rows:
        rows -= 1
    return rows, num_cores // rows


def _peer_index(sender: int, receiver: int) -> int:
    """The sender's index in the receiver's messaging domain.

    A node's domain covers its N-1 peers; node ids skip the receiver
    itself.
    """
    return sender if sender < receiver else sender - 1


class ClusterNode:
    """One node: a full chip plus its client-side traffic state."""

    def __init__(
        self,
        cluster: "Cluster",
        node_id: int,
        scheme: BalancingScheme,
    ) -> None:
        self.cluster = cluster
        self.node_id = node_id
        rngs = cluster.rngs.spawn(f"node{node_id}")
        self._rngs = rngs
        self.chip = Chip(
            cluster.env,
            cluster.node_configs[node_id],
            MicrobenchProgram(cluster.costs),
            rngs,
        )
        scheme.install(self.chip, rngs.stream("dispatch"))
        self.chip.on_slot_replenished = self._replenish_returned
        slots = cluster.config.send_slots_per_node
        self._slots_per_peer = slots
        #: Free send slots toward each destination node (by node id).
        self._free_slots: Dict[int, List[int]] = {
            dst: list(range(slots))
            for dst in range(cluster.num_nodes)
            if dst != node_id
        }
        self._pending: Dict[int, Deque[Tuple[int, float, str]]] = {}
        self.generated = 0
        self.stalled = 0
        self._next_msg_id = 0

    # -- client side --------------------------------------------------------

    def start_traffic(self, per_node_rps: float, num_requests: int) -> None:
        self.cluster.env.process(
            self._generate(per_node_rps, num_requests),
            name=f"traffic-node{self.node_id}",
        )

    def _generate(self, per_node_rps: float, num_requests: int):
        env = self.cluster.env
        arrival_rng = self._rngs.stream("arrivals")
        peer_rng = self._rngs.stream("peers")
        service_rng = self._rngs.stream("service")
        mean_gap_ns = 1e9 / per_node_rps
        peers = [n for n in range(self.cluster.num_nodes) if n != self.node_id]
        workload = self.cluster.workload
        router = self.cluster.router
        speeds = self.cluster.speed_factors
        for _ in range(num_requests):
            yield env.timeout(arrival_rng.exponential(mean_gap_ns))
            if router is not None:
                dst = router.choose(self.node_id, peer_rng)
            else:
                dst = peers[int(peer_rng.integers(0, len(peers)))]
            service_ns, label = workload.sample(service_rng)
            if speeds is not None:
                # A node at speed s processes the same RPC in 1/s the
                # time; slower nodes stretch it.
                service_ns /= speeds[dst]
            self.generated += 1
            free = self._free_slots[dst]
            if free:
                self._send(dst, free.pop(), service_ns, label)
            else:
                self.stalled += 1
                self._pending.setdefault(dst, deque()).append(
                    (dst, service_ns, label)
                )

    def _send(self, dst: int, slot: int, service_ns: float, label: str) -> None:
        cluster = self.cluster
        msg = make_send(
            cluster.config,
            msg_id=self._next_msg_id,
            src_node=_peer_index(self.node_id, dst),
            slot=slot,
            size_bytes=cluster.workload.request_size_bytes,
            service_ns=service_ns,
            label=label,
        )
        self._next_msg_id += 1
        #: Record the true sender for replenish routing.
        cluster.sender_of[(dst, msg.src_node, msg.slot)] = self.node_id
        delay = cluster.fabric.latency_ns(self.node_id, dst)
        target_chip = cluster.nodes[dst].chip
        delayed_call(cluster.env, delay, target_chip.submit_message, msg)

    # -- server side: replenish routed back to the true sender ---------------

    def _replenish_returned(self, msg: SendMessage) -> None:
        """Called on the *receiving* chip after its local wire delay.

        Routes the credit across the fabric back to the sender node.
        (The chip already applied ``config.wire_latency_ns``; the
        cluster uses zero-wire chips and applies fabric latency here.)
        """
        cluster = self.cluster
        cluster.completed_total += 1
        sender_id = cluster.sender_of.pop(
            (self.node_id, msg.src_node, msg.slot)
        )
        delay = cluster.fabric.latency_ns(self.node_id, sender_id)
        sender = cluster.nodes[sender_id]
        router = cluster.router
        if router is not None:
            # The completing server's load after this reply is what a
            # piggybacked signal would report to the issuing client.
            reported = router.on_complete(self.node_id)
            if router.wants_reply_reports:
                delayed_call(
                    cluster.env,
                    delay,
                    router.deliver_report,
                    sender_id,
                    self.node_id,
                    reported,
                )
        delayed_call(
            cluster.env, delay, sender._slot_freed, self.node_id, msg.slot
        )

    def _slot_freed(self, dst: int, slot: int) -> None:
        pending = self._pending.get(dst)
        if pending:
            _dst, service_ns, label = pending.popleft()
            self._send(dst, slot, service_ns, label)
        else:
            self._free_slots[dst].append(slot)

    # -- observability -------------------------------------------------------

    def slots_in_use(self) -> int:
        """Send-slot credits currently held across all destinations."""
        return sum(
            self._slots_per_peer - len(free)
            for free in self._free_slots.values()
        )

    def shared_cq_depth(self) -> int:
        """Entries waiting in this node's dispatcher shared CQ(s)."""
        return sum(
            len(dispatcher.shared_cq) for dispatcher in self.chip.dispatchers
        )


@dataclass
class ClusterResult:
    """Aggregate and per-node results of a cluster run."""

    num_nodes: int
    aggregate: LatencySummary
    per_node: List[LatencySummary]
    total_throughput_mrps: float
    stall_fractions: List[float]
    completed: int
    #: RPCs completed at each node (the server-side view of routing).
    per_node_completed: List[int] = field(default_factory=list)
    #: Routing behaviour, when a rack router drove destinations.
    router_stats: Optional["RouterStats"] = None
    #: Telemetry snapshot, when the cluster ran instrumented.
    telemetry: Optional["TelemetrySnapshot"] = None

    @property
    def p99_ns(self) -> float:
        return self.aggregate.p99

    def imbalance(self) -> float:
        """Max/min per-node mean latency — cross-node fairness check."""
        means = [summary.mean for summary in self.per_node if summary.count]
        if not means:
            return float("nan")
        return max(means) / min(means)

    def slowdowns(self) -> List[float]:
        """Per-node p99 relative to the best node's p99."""
        tails = [summary.p99 for summary in self.per_node if summary.count]
        if not tails:
            return []
        best = min(tails)
        return [tail / best for tail in tails]


class Cluster:
    """K fully simulated nodes exchanging RPCs over a fabric."""

    def __init__(
        self,
        num_nodes: int,
        scheme_factory: Callable[[], BalancingScheme] = SingleQueue,
        workload: Optional[RpcWorkload] = None,
        config: Optional[ChipConfig] = None,
        costs: Optional[MicrobenchCosts] = None,
        fabric: Optional[Fabric] = None,
        seed: int = 0,
        interference_factory: Optional[Callable[[int], object]] = None,
        router: Optional["RackRouter"] = None,
        core_counts: Optional[Sequence[int]] = None,
        speed_factors: Optional[Sequence[float]] = None,
        telemetry: bool = False,
        telemetry_interval_ns: Optional[float] = None,
    ) -> None:
        if num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {num_nodes!r}")
        from ..workloads import HerdWorkload

        self.num_nodes = num_nodes
        self.workload = workload if workload is not None else HerdWorkload()
        self.costs = costs if costs is not None else MicrobenchCosts.lean()
        base_config = config if config is not None else ChipConfig()
        # Each node's messaging domain covers its K-1 peers; fabric
        # latency replaces the chip's built-in wire delay.
        self.config = base_config.with_updates(
            num_nodes=num_nodes, wire_latency_ns=0.0
        )
        #: Per-node chip configs; heterogeneous when ``core_counts``
        #: varies (the mesh is refactored to stay rectangular).
        if core_counts is not None:
            if len(core_counts) != num_nodes:
                raise ValueError(
                    f"core_counts has {len(core_counts)} entries for "
                    f"{num_nodes} nodes"
                )
            self.node_configs = [
                self._config_for_cores(int(cores)) for cores in core_counts
            ]
        else:
            self.node_configs = [self.config] * num_nodes
        if speed_factors is not None:
            if len(speed_factors) != num_nodes:
                raise ValueError(
                    f"speed_factors has {len(speed_factors)} entries for "
                    f"{num_nodes} nodes"
                )
            if any(speed <= 0 for speed in speed_factors):
                raise ValueError("speed_factors must be positive")
            self.speed_factors: Optional[List[float]] = [
                float(speed) for speed in speed_factors
            ]
        else:
            self.speed_factors = None
        self.fabric = (
            fabric if fabric is not None else UniformFabric(num_nodes)
        )
        if self.fabric.num_nodes != num_nodes:
            raise ValueError("fabric and cluster disagree on node count")
        self.rngs = RngRegistry(seed)
        self.env = Environment()
        #: (receiver, sender_perspective_index, slot) → sender node id.
        self.sender_of: Dict[Tuple[int, int, int], int] = {}
        #: Completions across all nodes so far (drained-traffic check).
        self.completed_total = 0
        self._expected_total = 0
        #: Rack-level scheduler; None keeps the historical uniform spray.
        self.router = router
        self.telemetry = telemetry
        self.telemetry_interval_ns = telemetry_interval_ns
        self.nodes: List[ClusterNode] = [
            ClusterNode(self, node_id, scheme_factory())
            for node_id in range(num_nodes)
        ]
        if router is not None:
            router.bind(self)
        if interference_factory is not None:
            # Per-node §3.2 interference (e.g. one degraded node):
            # the factory returns None for healthy nodes.
            for node in self.nodes:
                node.chip.interference = interference_factory(node.node_id)

    def _config_for_cores(self, cores: int) -> ChipConfig:
        """The cluster config rescaled to a node with ``cores`` cores."""
        rows, cols = mesh_geometry(cores)
        return self.config.with_updates(
            num_cores=cores,
            mesh_rows=rows,
            mesh_cols=cols,
            num_backends=min(self.config.num_backends, cores),
        )

    def capacity_weight(self, node_id: int) -> float:
        """Relative service capacity of a node (cores x speed)."""
        cores = self.node_configs[node_id].num_cores
        speed = self.speed_factors[node_id] if self.speed_factors else 1.0
        return cores * speed

    def traffic_drained(self) -> bool:
        """True once every generated request has completed."""
        return (
            self._expected_total > 0
            and self.completed_total >= self._expected_total
        )

    def run(
        self,
        per_node_mrps: float,
        requests_per_node: int,
        warmup_fraction: float = 0.1,
    ) -> ClusterResult:
        """Drive every node at ``per_node_mrps`` and collect results."""
        if per_node_mrps <= 0:
            raise ValueError(f"per_node_mrps must be positive, got {per_node_mrps!r}")
        if requests_per_node <= 0:
            raise ValueError(
                f"requests_per_node must be positive, got {requests_per_node!r}"
            )
        self._expected_total = self.num_nodes * requests_per_node
        hub = None
        if self.telemetry:
            from ..telemetry import TelemetryHub, instrument_cluster

            interval = self.telemetry_interval_ns
            if interval is None:
                # ~200 sampler ticks across the expected injection window.
                duration_ns = requests_per_node / (per_node_mrps * 1e6) * 1e9
                interval = max(duration_ns / 200.0, 1.0)
            hub = TelemetryHub(sample_interval=interval)
            instrument_cluster(self, hub)
            self.env.attach_sampler(hub.make_sampler())
        if self.router is not None:
            self.router.start()
        for node in self.nodes:
            node.start_traffic(per_node_mrps * 1e6, requests_per_node)
        self.env.run()

        per_node = [
            node.chip.recorder.summary(warmup_fraction=warmup_fraction)
            for node in self.nodes
        ]
        all_latencies = np.concatenate(
            [
                node.chip.recorder.latencies(warmup_fraction=warmup_fraction)
                for node in self.nodes
            ]
        )
        aggregate = LatencySummary.from_values(all_latencies)
        completed = sum(node.chip.stats.completed for node in self.nodes)
        elapsed_ns = self.env.now
        total_mrps = completed / elapsed_ns * 1e3 if elapsed_ns > 0 else 0.0
        return ClusterResult(
            num_nodes=self.num_nodes,
            aggregate=aggregate,
            per_node=per_node,
            total_throughput_mrps=total_mrps,
            stall_fractions=[
                node.stalled / node.generated if node.generated else 0.0
                for node in self.nodes
            ],
            completed=completed,
            per_node_completed=[
                node.chip.stats.completed for node in self.nodes
            ],
            router_stats=self.router.stats if self.router is not None else None,
            telemetry=hub.snapshot() if hub is not None else None,
        )
