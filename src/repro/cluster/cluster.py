"""Multi-node cluster simulation: several modeled chips, all-to-all RPCs.

The paper's methodology models one chip and emulates its peers with a
traffic generator. This package closes the loop: every node is a full
simulated chip (cores, NIs, dispatcher, messaging buffers), each node
generates open-loop Poisson RPC traffic to its peers, and send-slot
flow control plus replenish routing run across a fabric with per-pair
latencies. It answers deployment-level questions the single-chip setup
cannot: end-to-end behaviour when every node is both client and
server, and sensitivity to fabric topology.

Destinations default to uniformly random peers; installing a
:class:`repro.rack.RackRouter` replaces that spray with a pluggable
inter-server policy driven by (possibly stale) load signals — the
two-level scheduling testbed the ``ext-rack`` experiment sweeps.
Racks can be heterogeneous (``core_counts``/``speed_factors``), and
``telemetry=True`` attaches per-node shared-CQ and send-slot-credit
probes plus router decision/staleness instrumentation.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch import Chip, ChipConfig, SendMessage, make_send
from ..balancing import BalancingScheme, SingleQueue
from ..metrics import LatencyRecorder, LatencySummary
from ..sim import Environment, RngRegistry, delayed_call
from ..workloads import MicrobenchCosts, MicrobenchProgram, RpcWorkload
from .fabric import Fabric, UniformFabric

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultInjector, FaultPlan, FaultStats, RetryConfig
    from ..popload.arrivals import ArrivalProcess
    from ..rack import RackRouter, RouterStats
    from ..telemetry import TelemetrySnapshot
    from ..tracing import TraceBuffer, TraceConfig

__all__ = ["Cluster", "ClusterNode", "ClusterResult", "mesh_geometry"]


def mesh_geometry(num_cores: int) -> Tuple[int, int]:
    """A near-square (rows, cols) mesh with ``rows * cols == num_cores``.

    Heterogeneous racks scale per-node core counts; the chip model
    requires a rectangular mesh, so pick the most square factoring
    (16 -> 4x4, 8 -> 2x4, 4 -> 2x2, 2 -> 1x2). Core counts with no
    non-trivial factorization (primes) degrade to a single 1xN row
    rather than failing — every count >= 1 yields a valid geometry.
    """
    if num_cores < 1:
        raise ValueError(f"num_cores must be >= 1, got {num_cores!r}")
    # isqrt, not int(n**0.5): float sqrt can round up past the true
    # integer root and send the search below the best factor.
    rows = math.isqrt(num_cores)
    while rows > 1 and num_cores % rows:
        rows -= 1
    return rows, num_cores // rows


def _peer_index(sender: int, receiver: int) -> int:
    """The sender's index in the receiver's messaging domain.

    A node's domain covers its N-1 peers; node ids skip the receiver
    itself.
    """
    return sender if sender < receiver else sender - 1


class _Rpc:
    """One logical RPC in robust (fault-injected) mode.

    A logical RPC may spawn several physical attempts (retries, a
    hedge); it resolves exactly once — on its first completion, or as
    lost when the retry budget is exhausted and no attempt remains
    live.
    """

    __slots__ = (
        "service_ns",
        "label",
        "t_start",
        "resolved",
        "retries_used",
        "live",
        "trace",
    )

    def __init__(self, service_ns: float, label: str, t_start: float) -> None:
        self.service_ns = service_ns
        self.label = label
        self.t_start = t_start
        self.resolved = False
        self.retries_used = 0
        #: Attempts issued and not yet concluded (completed or timed out).
        self.live = 0
        #: Span record when this RPC was sampled (None otherwise).
        self.trace = None


class ClusterNode:
    """One node: a full chip plus its client-side traffic state."""

    def __init__(
        self,
        cluster: "Cluster",
        node_id: int,
        scheme: BalancingScheme,
    ) -> None:
        self.cluster = cluster
        self.node_id = node_id
        rngs = cluster.rngs.spawn(f"node{node_id}")
        self._rngs = rngs
        self.chip = Chip(
            cluster.env,
            cluster.node_configs[node_id],
            MicrobenchProgram(cluster.costs),
            rngs,
        )
        scheme.install(self.chip, rngs.stream("dispatch"))
        self.chip.on_slot_replenished = (
            self._replenish_returned_robust
            if cluster.robust
            else self._replenish_returned
        )
        slots = cluster.config.send_slots_per_node
        self._slots_per_peer = slots
        #: Free send slots toward each destination node (by node id).
        self._free_slots: Dict[int, List[int]] = {
            dst: list(range(slots))
            for dst in range(cluster.num_nodes)
            if dst != node_id
        }
        self._pending: Dict[int, Deque[Tuple[int, float, str, object]]] = {}
        #: Legacy-mode traced sends in flight, keyed by (dst, slot):
        #: populated only for sampled RPCs, so it stays tiny.
        self._trace_open: Dict[Tuple[int, int], tuple] = {}
        self.generated = 0
        self.stalled = 0
        self._next_msg_id = 0
        #: Robust-mode state: live attempt records keyed by msg_id, and
        #: queued (not-yet-sent) attempt ids per destination.
        self._attempts: Dict[int, dict] = {}
        self._queued: Dict[int, Deque[int]] = {}
        self._peer_ids: List[int] = [
            n for n in range(cluster.num_nodes) if n != node_id
        ]

    # -- client side --------------------------------------------------------

    def start_traffic(self, per_node_rps: float, num_requests: int) -> None:
        generate = (
            self._generate_robust if self.cluster.robust else self._generate
        )
        self.cluster.env.process(
            generate(per_node_rps, num_requests),
            name=f"traffic-node{self.node_id}",
        )

    def _generate(self, per_node_rps: float, num_requests: int):
        env = self.cluster.env
        arrival_rng = self._rngs.stream("arrivals")
        peer_rng = self._rngs.stream("peers")
        service_rng = self._rngs.stream("service")
        mean_gap_ns = 1e9 / per_node_rps
        peers = [n for n in range(self.cluster.num_nodes) if n != self.node_id]
        workload = self.cluster.workload
        router = self.cluster.router
        speeds = self.cluster.speed_factors
        tracer = self.cluster.tracer
        # Population-driven load: pre-draw this node's whole gap batch
        # from the process; None keeps the historical per-request
        # scalar draws (byte-identical stream consumption).
        process = self.cluster.arrival_process
        gaps = (
            process.sample_gaps(arrival_rng, num_requests)
            if process is not None
            else None
        )
        for index in range(num_requests):
            yield env.timeout(
                float(gaps[index])
                if gaps is not None
                else arrival_rng.exponential(mean_gap_ns)
            )
            trace = None
            if tracer is not None:
                trace = tracer.maybe_trace(self.node_id, env.now)
                if trace is not None and router is not None:
                    router.trace_capture = trace
            if router is not None:
                dst = router.choose(self.node_id, peer_rng)
            else:
                dst = peers[int(peer_rng.integers(0, len(peers)))]
            service_ns, label = workload.sample(service_rng)
            if speeds is not None:
                # A node at speed s processes the same RPC in 1/s the
                # time; slower nodes stretch it.
                service_ns /= speeds[dst]
            self.generated += 1
            if trace is not None:
                trace.label = label
            free = self._free_slots[dst]
            if free:
                self._send(dst, free.pop(), service_ns, label, trace)
            else:
                self.stalled += 1
                self._pending.setdefault(dst, deque()).append(
                    (dst, service_ns, label, trace)
                )

    def _send(
        self,
        dst: int,
        slot: int,
        service_ns: float,
        label: str,
        trace=None,
    ) -> None:
        cluster = self.cluster
        msg = make_send(
            cluster.config,
            msg_id=self._next_msg_id,
            src_node=_peer_index(self.node_id, dst),
            slot=slot,
            size_bytes=cluster.workload.request_size_bytes,
            service_ns=service_ns,
            label=label,
        )
        self._next_msg_id += 1
        #: Record the true sender for replenish routing.
        cluster.sender_of[(dst, msg.src_node, msg.slot)] = self.node_id
        delay = cluster.fabric.latency_ns(self.node_id, dst)
        if trace is not None:
            # Legacy mode: one attempt per RPC, launched at generation
            # time (credit_wait covers any stall in the pending queue).
            span = trace.new_attempt("first", dst, trace.t_init)
            span.t_sent = cluster.env.now
            self._trace_open[(dst, slot)] = (trace, span)
        target_chip = cluster.nodes[dst].chip
        delayed_call(cluster.env, delay, target_chip.submit_message, msg)

    # -- robust client side: timeouts, retries, hedges -----------------------

    def _generate_robust(self, per_node_rps: float, num_requests: int):
        """Open-loop traffic with per-RPC robustness (robust mode only)."""
        cluster = self.cluster
        env = cluster.env
        arrival_rng = self._rngs.stream("arrivals")
        service_rng = self._rngs.stream("service")
        mean_gap_ns = 1e9 / per_node_rps
        workload = cluster.workload
        stats = cluster.injector.stats
        hedge_ns = cluster.retry.hedge_ns
        tracer = cluster.tracer
        process = cluster.arrival_process
        gaps = (
            process.sample_gaps(arrival_rng, num_requests)
            if process is not None
            else None
        )
        for index in range(num_requests):
            yield env.timeout(
                float(gaps[index])
                if gaps is not None
                else arrival_rng.exponential(mean_gap_ns)
            )
            service_ns, label = workload.sample(service_rng)
            rpc = _Rpc(service_ns, label, env.now)
            if tracer is not None:
                trace = tracer.maybe_trace(self.node_id, env.now)
                if trace is not None:
                    trace.label = label
                    rpc.trace = trace
            self.generated += 1
            stats.offered += 1
            self._launch_attempt(rpc)
            if hedge_ns is not None:
                env.schedule_call(hedge_ns, self._maybe_hedge, rpc)

    def _launch_attempt(self, rpc: _Rpc, kind: str = "first") -> None:
        """Issue one physical attempt of ``rpc`` (first, retry, or hedge)."""
        cluster = self.cluster
        peer_rng = self._rngs.stream("peers")
        router = cluster.router
        injector = cluster.injector
        trace = rpc.trace
        if router is not None:
            if trace is not None:
                router.trace_capture = trace
            dst = router.choose(self.node_id, peer_rng)
        else:
            peers = self._peer_ids
            dst = peers[int(peer_rng.integers(0, len(peers)))]
        service_ns = rpc.service_ns
        speed = (
            cluster.speed_factors[dst]
            if cluster.speed_factors is not None
            else 1.0
        )
        # Static heterogeneity composes with any active slowdown fault;
        # both apply at launch time (the speed the RPC starts with).
        speed *= injector.speed_multiplier(dst)
        service_ns /= speed
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        attempt = {
            "rpc": rpc,
            "dst": dst,
            "slot": None,
            "service_ns": service_ns,
            "cancelled": False,
            "vanished": False,
            "reply_lost": False,
            "delivered": False,
            #: The server finished this request (even if the reply was
            #: suppressed) — its receive slot is free, so the send-slot
            #: credit is safe to reclaim at recovery.
            "server_done": False,
            #: True while this attempt holds a +1 in router.outstanding.
            "open": router is not None,
            #: Span record when the logical RPC is traced (None otherwise).
            "span": (
                trace.new_attempt(kind, dst, cluster.env.now)
                if trace is not None
                else None
            ),
        }
        self._attempts[msg_id] = attempt
        rpc.live += 1
        free = self._free_slots[dst]
        if free:
            self._send_attempt(msg_id, attempt, free.pop())
        else:
            self.stalled += 1
            self._queued.setdefault(dst, deque()).append(msg_id)
        cluster.env.schedule_call(
            cluster.retry.timeout_ns, self._attempt_timeout, msg_id
        )

    def _send_attempt(self, msg_id: int, attempt: dict, slot: int) -> None:
        cluster = self.cluster
        dst = attempt["dst"]
        attempt["slot"] = slot
        msg = make_send(
            cluster.config,
            msg_id=msg_id,
            src_node=_peer_index(self.node_id, dst),
            slot=slot,
            size_bytes=cluster.workload.request_size_bytes,
            service_ns=attempt["service_ns"],
            label=attempt["rpc"].label,
        )
        #: Robust mode stores (sender, msg_id) so a reclaimed-and-reissued
        #: slot cannot be credited to the wrong attempt.
        cluster.sender_of[(dst, msg.src_node, slot)] = (self.node_id, msg_id)
        delay = cluster.fabric.latency_ns(self.node_id, dst)
        span = attempt["span"]
        if span is not None:
            span.t_sent = cluster.env.now
        fate = cluster.injector.transmit(
            delay, cluster._deliver_request, self.node_id, dst, msg, msg_id
        )
        if fate == "drop":
            attempt["vanished"] = True
            if span is not None:
                span.add_event("request_dropped", cluster.env.now)

    def _attempt_timeout(self, msg_id: int) -> None:
        attempt = self._attempts.get(msg_id)
        if attempt is None or attempt["cancelled"]:
            return
        cluster = self.cluster
        stats = cluster.injector.stats
        rpc = attempt["rpc"]
        attempt["cancelled"] = True
        stats.timeouts += 1
        rpc.live -= 1
        span = attempt["span"]
        if span is not None:
            span.status = "timeout"
            span.add_event("timeout", cluster.env.now)
        if attempt["open"]:
            attempt["open"] = False
            cluster.router.on_attempt_abandoned(attempt["dst"])
        dst = attempt["dst"]
        slot = attempt["slot"]
        if slot is None:
            # Never sent: drop the record; the queued-id scan skips it.
            del self._attempts[msg_id]
        elif attempt["vanished"] or attempt["reply_lost"]:
            # The message (or its reply) provably died in the fabric;
            # the transport aborts the attempt and returns the credit.
            self._reclaim_attempt(msg_id, attempt)
        # else: leave the record — a late completion may still free the
        # slot, or recovery-time reclaim collects it.
        if rpc.resolved:
            return
        retry = cluster.retry
        if rpc.retries_used < retry.retry_budget:
            rpc.retries_used += 1
            stats.retries += 1
            backoff = retry.backoff_for(rpc.retries_used - 1)
            cluster.env.schedule_call(backoff, self._retry_attempt, rpc)
        elif rpc.live == 0:
            rpc.resolved = True
            cluster.resolved_total += 1
            cluster.lost_total += 1
            stats.lost += 1
            if rpc.trace is not None:
                rpc.trace.finish(cluster.env.now, None, outcome="lost")

    def _retry_attempt(self, rpc: _Rpc) -> None:
        if not rpc.resolved:
            self._launch_attempt(rpc, "retry")

    def _maybe_hedge(self, rpc: _Rpc) -> None:
        if rpc.resolved:
            return
        self.cluster.injector.stats.hedges += 1
        self._launch_attempt(rpc, "hedge")

    def _reply_received(
        self, msg_id: int, server: int, reported_load: Optional[float]
    ) -> None:
        """A completion reply reached this client (robust mode)."""
        cluster = self.cluster
        stats = cluster.injector.stats
        router = cluster.router
        if reported_load is not None and router is not None:
            router.deliver_report(self.node_id, server, reported_load)
        attempt = self._attempts.pop(msg_id, None)
        if attempt is None:
            # Duplicated reply, or the attempt was already reclaimed.
            stats.duplicate_completions += 1
            return
        rpc = attempt["rpc"]
        now = cluster.env.now
        span = attempt["span"]
        if span is not None:
            span.t_reply = now
        if attempt["cancelled"]:
            stats.late_completions += 1
            if span is not None:
                span.add_event("late_completion", now)
        else:
            rpc.live -= 1
        slot = attempt["slot"]
        if slot is not None:
            self._robust_slot_freed(attempt["dst"], slot)
        if not rpc.resolved:
            rpc.resolved = True
            cluster.resolved_total += 1
            stats.completed += 1
            cluster.e2e_recorder.record(now, now - rpc.t_start, rpc.label)
            if rpc.trace is not None:
                # The span's reply time *is* the recorded e2e endpoint,
                # so the phase decomposition sums to the recorded value.
                rpc.trace.finish(now, span)
        else:
            stats.duplicate_completions += 1
            if span is not None:
                span.status = "duplicate"
                span.add_event("duplicate_completion", now)

    def _reclaim_attempt(self, msg_id: int, attempt: dict) -> None:
        """Return a dead attempt's send-slot credit (robust mode)."""
        cluster = self.cluster
        if self._attempts.pop(msg_id, None) is None:
            return
        dst = attempt["dst"]
        slot = attempt["slot"]
        entry = cluster.sender_of.get((dst, _peer_index(self.node_id, dst), slot))
        if entry is not None and entry[1] == msg_id:
            del cluster.sender_of[(dst, _peer_index(self.node_id, dst), slot)]
        cluster.injector.stats.reclaimed_slots += 1
        self._robust_slot_freed(dst, slot)

    def _robust_slot_freed(self, dst: int, slot: int) -> None:
        queued = self._queued.get(dst)
        while queued:
            msg_id = queued.popleft()
            attempt = self._attempts.get(msg_id)
            if attempt is None or attempt["cancelled"]:
                continue
            self._send_attempt(msg_id, attempt, slot)
            return
        self._free_slots[dst].append(slot)

    # -- server side: replenish routed back to the true sender ---------------

    def _replenish_returned(self, msg: SendMessage) -> None:
        """Called on the *receiving* chip after its local wire delay.

        Routes the credit across the fabric back to the sender node.
        (The chip already applied ``config.wire_latency_ns``; the
        cluster uses zero-wire chips and applies fabric latency here.)
        """
        cluster = self.cluster
        cluster.completed_total += 1
        sender_id = cluster.sender_of.pop(
            (self.node_id, msg.src_node, msg.slot)
        )
        delay = cluster.fabric.latency_ns(self.node_id, sender_id)
        sender = cluster.nodes[sender_id]
        if cluster.tracer is not None:
            entry = sender._trace_open.pop((self.node_id, msg.slot), None)
            if entry is not None:
                trace, span = entry
                # Copy stamps now — the chip recycles ``msg`` right
                # after this callback returns.
                span.copy_server(msg)
                span.t_reply = cluster.env.now + delay
                trace.finish(cluster.env.now + delay, span)
        router = cluster.router
        if router is not None:
            # The completing server's load after this reply is what a
            # piggybacked signal would report to the issuing client.
            reported = router.on_complete(self.node_id)
            if router.wants_reply_reports:
                delayed_call(
                    cluster.env,
                    delay,
                    router.deliver_report,
                    sender_id,
                    self.node_id,
                    reported,
                )
        delayed_call(
            cluster.env, delay, sender._slot_freed, self.node_id, msg.slot
        )

    def _replenish_returned_robust(self, msg: SendMessage) -> None:
        """Robust-mode completion path: suppression, dedup, reconciliation.

        Differences from the legacy path: a down node's NI sends
        nothing (reply suppressed); the slot credit is validated
        against the attempt that currently owns it (a reclaimed slot
        may have been reissued); the reply — and any piggybacked load
        report — crosses the fabric through the fault injector, so it
        can be dropped, duplicated, or delayed like any other message.
        """
        cluster = self.cluster
        injector = cluster.injector
        stats = injector.stats
        key = (self.node_id, msg.src_node, msg.slot)
        if not injector.node_up(self.node_id):
            # Down NI: no reply, no replenish. Mark the attempt done at
            # the server so recovery-time reclaim knows the receive
            # slot is free (reclaiming an attempt whose request is
            # still queued in the pipeline would let the reissued send
            # slot collide with the occupied receive slot).
            stats.reply_suppressed += 1
            marker = cluster.sender_of.get(key)
            if marker is not None and marker[1] == msg.msg_id:
                done = cluster.nodes[marker[0]]._attempts.get(msg.msg_id)
                if done is not None:
                    done["server_done"] = True
                    span = done["span"]
                    if span is not None:
                        # Record the burned server work even though no
                        # reply leaves (duplicate-service accounting).
                        span.copy_server(msg)
                        span.add_event("reply_suppressed", cluster.env.now)
            return
        entry = cluster.sender_of.get(key)
        if entry is None:
            return  # attempt reclaimed at recovery; orphan completion
        sender_id, owner_msg_id = entry
        if owner_msg_id != msg.msg_id:
            return  # slot reclaimed and reissued; this reply is orphaned
        del cluster.sender_of[key]
        cluster.completed_total += 1
        sender = cluster.nodes[sender_id]
        attempt = sender._attempts.get(msg.msg_id)
        span = attempt["span"] if attempt is not None else None
        if attempt is not None:
            attempt["server_done"] = True
        if span is not None:
            # Copy stamps before the chip recycles ``msg``; the reply
            # itself may still be dropped or delayed below.
            span.copy_server(msg)
        router = cluster.router
        reported: Optional[float] = None
        if router is not None:
            if attempt is not None and attempt["open"]:
                attempt["open"] = False
                reported = router.on_complete(self.node_id)
            else:
                # Outstanding was already corrected at abandonment.
                reported = float(router.outstanding[self.node_id])
            if not router.wants_reply_reports or injector.signals_dark():
                reported = None
        delay = cluster.fabric.latency_ns(self.node_id, sender_id)
        fate = injector.transmit(
            delay, sender._reply_received, msg.msg_id, self.node_id, reported
        )
        if fate == "drop" and attempt is not None:
            attempt["reply_lost"] = True
            if span is not None:
                span.add_event("reply_dropped", cluster.env.now)
            if attempt["cancelled"]:
                # The timeout already gave up on this attempt; with the
                # reply provably gone, reclaim the credit here.
                sender._reclaim_attempt(msg.msg_id, attempt)

    def _slot_freed(self, dst: int, slot: int) -> None:
        pending = self._pending.get(dst)
        if pending:
            _dst, service_ns, label, trace = pending.popleft()
            self._send(dst, slot, service_ns, label, trace)
        else:
            self._free_slots[dst].append(slot)

    # -- observability -------------------------------------------------------

    def slots_in_use(self) -> int:
        """Send-slot credits currently held across all destinations."""
        return sum(
            self._slots_per_peer - len(free)
            for free in self._free_slots.values()
        )

    def shared_cq_depth(self) -> int:
        """Entries waiting in this node's dispatcher shared CQ(s)."""
        return sum(
            len(dispatcher.shared_cq) for dispatcher in self.chip.dispatchers
        )


@dataclass
class ClusterResult:
    """Aggregate and per-node results of a cluster run."""

    num_nodes: int
    aggregate: LatencySummary
    per_node: List[LatencySummary]
    total_throughput_mrps: float
    stall_fractions: List[float]
    completed: int
    #: RPCs completed at each node (the server-side view of routing).
    per_node_completed: List[int] = field(default_factory=list)
    #: Routing behaviour, when a rack router drove destinations.
    router_stats: Optional["RouterStats"] = None
    #: Telemetry snapshot, when the cluster ran instrumented.
    telemetry: Optional["TelemetrySnapshot"] = None
    #: Robust-mode (fault-injected) results; None on legacy runs.
    #: ``e2e`` is the *client-side* end-to-end latency of each logical
    #: RPC, including queueing for credits, retries, and hedging —
    #: ``aggregate`` keeps its historical server-side meaning.
    e2e: Optional[LatencySummary] = None
    #: Logical RPCs offered / lost to exhausted retry budgets.
    offered: int = 0
    lost: int = 0
    #: Distinct successful RPC completions per unit time, MRPS — the
    #: useful-work counterpart of ``total_throughput_mrps`` (which
    #: counts all server work, retried duplicates included).
    goodput_mrps: float = 0.0
    #: Per-node fraction of the run spent up.
    availability: Optional[List[float]] = None
    fault_stats: Optional["FaultStats"] = None
    #: Sampled per-RPC span trees, when the cluster ran with
    #: ``trace=TraceConfig(...)`` (see :mod:`repro.tracing`).
    spans: Optional["TraceBuffer"] = None

    @property
    def p99_ns(self) -> float:
        return self.aggregate.p99

    @property
    def goodput_fraction(self) -> float:
        """Offered logical RPCs that eventually completed."""
        if self.offered == 0:
            return 1.0
        return (self.offered - self.lost) / self.offered

    def imbalance(self) -> float:
        """Max/min per-node mean latency — cross-node fairness check."""
        means = [summary.mean for summary in self.per_node if summary.count]
        if not means:
            return float("nan")
        return max(means) / min(means)

    def slowdowns(self) -> List[float]:
        """Per-node p99 relative to the best node's p99."""
        tails = [summary.p99 for summary in self.per_node if summary.count]
        if not tails:
            return []
        best = min(tails)
        return [tail / best for tail in tails]


class Cluster:
    """K fully simulated nodes exchanging RPCs over a fabric."""

    def __init__(
        self,
        num_nodes: int,
        scheme_factory: Callable[[], BalancingScheme] = SingleQueue,
        workload: Optional[RpcWorkload] = None,
        config: Optional[ChipConfig] = None,
        costs: Optional[MicrobenchCosts] = None,
        fabric: Optional[Fabric] = None,
        seed: int = 0,
        interference_factory: Optional[Callable[[int], object]] = None,
        router: Optional["RackRouter"] = None,
        core_counts: Optional[Sequence[int]] = None,
        speed_factors: Optional[Sequence[float]] = None,
        telemetry: bool = False,
        telemetry_interval_ns: Optional[float] = None,
        faults: Optional["FaultPlan"] = None,
        retry: Optional["RetryConfig"] = None,
        trace: Optional["TraceConfig"] = None,
        arrival_process: Optional["ArrivalProcess"] = None,
    ) -> None:
        if num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {num_nodes!r}")
        from ..workloads import HerdWorkload

        if arrival_process is not None:
            from ..popload.arrivals import ArrivalProcess as _ArrivalProcess

            if not isinstance(arrival_process, _ArrivalProcess):
                raise TypeError(
                    "arrival_process must be a repro.popload "
                    f"ArrivalProcess, got {type(arrival_process).__name__}"
                )
        #: Optional :mod:`repro.popload` arrival stream, applied at every
        #: node (each node consumes its own named "arrivals" RNG stream,
        #: so realizations stay independent). None keeps the historical
        #: per-node stationary Poisson, byte-identical.
        self.arrival_process = arrival_process
        self.num_nodes = num_nodes
        self.workload = workload if workload is not None else HerdWorkload()
        self.costs = costs if costs is not None else MicrobenchCosts.lean()
        base_config = config if config is not None else ChipConfig()
        # Each node's messaging domain covers its K-1 peers; fabric
        # latency replaces the chip's built-in wire delay.
        self.config = base_config.with_updates(
            num_nodes=num_nodes, wire_latency_ns=0.0
        )
        #: Per-node chip configs; heterogeneous when ``core_counts``
        #: varies (the mesh is refactored to stay rectangular).
        if core_counts is not None:
            if len(core_counts) != num_nodes:
                raise ValueError(
                    f"core_counts has {len(core_counts)} entries for "
                    f"{num_nodes} nodes"
                )
            self.node_configs = [
                self._config_for_cores(int(cores)) for cores in core_counts
            ]
        else:
            self.node_configs = [self.config] * num_nodes
        if speed_factors is not None:
            if len(speed_factors) != num_nodes:
                raise ValueError(
                    f"speed_factors has {len(speed_factors)} entries for "
                    f"{num_nodes} nodes"
                )
            if any(speed <= 0 for speed in speed_factors):
                raise ValueError("speed_factors must be positive")
            self.speed_factors: Optional[List[float]] = [
                float(speed) for speed in speed_factors
            ]
        else:
            self.speed_factors = None
        self.fabric = (
            fabric if fabric is not None else UniformFabric(num_nodes)
        )
        if self.fabric.num_nodes != num_nodes:
            raise ValueError("fabric and cluster disagree on node count")
        self.seed = seed
        self.rngs = RngRegistry(seed)
        self.env = Environment()
        #: (receiver, sender_perspective_index, slot) → sender node id
        #: (legacy mode) or (sender node id, msg_id) (robust mode).
        self.sender_of: Dict[Tuple[int, int, int], object] = {}
        #: Completions across all nodes so far (drained-traffic check).
        self.completed_total = 0
        self._expected_total = 0
        #: Rack-level scheduler; None keeps the historical uniform spray.
        self.router = router
        self.telemetry = telemetry
        self.telemetry_interval_ns = telemetry_interval_ns
        #: Robust mode: fault injection and/or client-side retries. The
        #: legacy path (both None) is byte-identical to previous behaviour.
        self.robust = faults is not None or retry is not None
        self.injector: Optional["FaultInjector"] = None
        self.retry: Optional["RetryConfig"] = None
        self.e2e_recorder: Optional[LatencyRecorder] = None
        #: Logical RPCs resolved (completed once, or declared lost).
        self.resolved_total = 0
        self.lost_total = 0
        if self.robust:
            from ..faults import FaultInjector, FaultPlan, RetryConfig

            self.fault_plan = faults if faults is not None else FaultPlan()
            self.retry = retry if retry is not None else RetryConfig()
            self.injector = FaultInjector(self.fault_plan, self)
            self.injector.on_recovery.append(self._reclaim_after_recovery)
            self.e2e_recorder = LatencyRecorder()
        else:
            self.fault_plan = None
        #: Span tracer; None keeps every instrumented site a dead branch.
        self.tracer = None
        if trace is not None:
            from ..tracing import Tracer

            self.tracer = Tracer(trace)
            if self.injector is not None:
                self.injector.tracer = self.tracer
        self.nodes: List[ClusterNode] = [
            ClusterNode(self, node_id, scheme_factory())
            for node_id in range(num_nodes)
        ]
        if router is not None:
            router.bind(self)
        if interference_factory is not None:
            # Per-node §3.2 interference (e.g. one degraded node):
            # the factory returns None for healthy nodes.
            for node in self.nodes:
                node.chip.interference = interference_factory(node.node_id)

    def _config_for_cores(self, cores: int) -> ChipConfig:
        """The cluster config rescaled to a node with ``cores`` cores."""
        rows, cols = mesh_geometry(cores)
        return self.config.with_updates(
            num_cores=cores,
            mesh_rows=rows,
            mesh_cols=cols,
            num_backends=min(self.config.num_backends, cores),
        )

    def capacity_weight(self, node_id: int) -> float:
        """Relative service capacity of a node (cores x speed)."""
        cores = self.node_configs[node_id].num_cores
        speed = self.speed_factors[node_id] if self.speed_factors else 1.0
        return cores * speed

    def traffic_drained(self) -> bool:
        """True once every generated request has completed.

        In robust mode, "completed" means every logical RPC *resolved*
        — completed once or declared lost — so heartbeat / broadcast /
        detector processes terminate even when some requests die to
        injected faults.
        """
        if self.robust:
            return (
                self._expected_total > 0
                and self.resolved_total >= self._expected_total
            )
        return (
            self._expected_total > 0
            and self.completed_total >= self._expected_total
        )

    # -- robust-mode fabric delivery and recovery reclaim --------------------

    def _deliver_request(
        self, src: int, dst: int, msg: SendMessage, msg_id: int
    ) -> None:
        """One request arrives at ``dst``'s NI (robust mode only)."""
        attempt = self.nodes[src]._attempts.get(msg_id)
        if not self.injector.node_up(dst):
            self.injector.stats.crash_drops += 1
            if attempt is not None:
                attempt["vanished"] = True
                span = attempt["span"]
                if span is not None:
                    span.add_event("crash_drop", self.env.now)
                if attempt["cancelled"]:
                    # A delay spike pushed arrival past the client's
                    # timeout; reclaim the credit now that the message
                    # provably died.
                    self.nodes[src]._reclaim_attempt(msg_id, attempt)
            return
        if attempt is not None:
            if attempt["delivered"]:
                return  # NI sequence-number dedup of a duplicated request
            attempt["delivered"] = True
        self.nodes[dst].chip.submit_message(msg)

    def _reclaim_after_recovery(self, node: int) -> None:
        """Ground-truth recovery of ``node``: reconnect and reclaim.

        Every sender drops its abandoned attempts toward the recovered
        node and takes the leaked send-slot credits back — the
        transport-level reconnect a real client performs when a dead
        peer returns.
        """
        for sender in self.nodes:
            if sender.node_id == node:
                continue
            stale = [
                (msg_id, attempt)
                for msg_id, attempt in sender._attempts.items()
                if attempt["dst"] == node
                and attempt["cancelled"]
                and attempt["slot"] is not None
                and attempt["server_done"]
            ]
            for msg_id, attempt in stale:
                sender._reclaim_attempt(msg_id, attempt)

    def run(
        self,
        per_node_mrps: float,
        requests_per_node: int,
        warmup_fraction: float = 0.1,
    ) -> ClusterResult:
        """Drive every node at ``per_node_mrps`` and collect results."""
        if per_node_mrps <= 0:
            raise ValueError(f"per_node_mrps must be positive, got {per_node_mrps!r}")
        if requests_per_node <= 0:
            raise ValueError(
                f"requests_per_node must be positive, got {requests_per_node!r}"
            )
        self._expected_total = self.num_nodes * requests_per_node
        #: Expected injection window; the fault plan materializes its
        #: rate-based events over this horizon.
        injection_ns = requests_per_node / (per_node_mrps * 1e6) * 1e9
        if self.injector is not None:
            self.injector.start(injection_ns)
        hub = None
        if self.telemetry:
            from ..telemetry import TelemetryHub, instrument_cluster

            interval = self.telemetry_interval_ns
            if interval is None:
                # ~200 sampler ticks across the expected injection window.
                interval = max(injection_ns / 200.0, 1.0)
            hub = TelemetryHub(sample_interval=interval)
            instrument_cluster(self, hub)
            self.env.attach_sampler(hub.make_sampler())
        if self.router is not None:
            self.router.start()
        for node in self.nodes:
            node.start_traffic(per_node_mrps * 1e6, requests_per_node)
        self.env.run()

        per_node = [
            node.chip.recorder.summary(warmup_fraction=warmup_fraction)
            for node in self.nodes
        ]
        all_latencies = np.concatenate(
            [
                node.chip.recorder.latencies(warmup_fraction=warmup_fraction)
                for node in self.nodes
            ]
        )
        aggregate = LatencySummary.from_values(all_latencies)
        completed = sum(node.chip.stats.completed for node in self.nodes)
        elapsed_ns = self.env.now
        total_mrps = completed / elapsed_ns * 1e3 if elapsed_ns > 0 else 0.0
        e2e = None
        offered = 0
        lost = 0
        goodput = 0.0
        availability = None
        fault_stats = None
        if self.robust:
            fault_stats = self.injector.stats
            e2e = self.e2e_recorder.summary(warmup_fraction=warmup_fraction)
            offered = fault_stats.offered
            lost = self.lost_total
            goodput = (
                fault_stats.completed / elapsed_ns * 1e3
                if elapsed_ns > 0
                else 0.0
            )
            availability = self.injector.availability(elapsed_ns)
        return ClusterResult(
            num_nodes=self.num_nodes,
            aggregate=aggregate,
            per_node=per_node,
            total_throughput_mrps=total_mrps,
            stall_fractions=[
                node.stalled / node.generated if node.generated else 0.0
                for node in self.nodes
            ],
            completed=completed,
            per_node_completed=[
                node.chip.stats.completed for node in self.nodes
            ],
            router_stats=self.router.stats if self.router is not None else None,
            telemetry=hub.snapshot() if hub is not None else None,
            e2e=e2e,
            offered=offered,
            lost=lost,
            goodput_mrps=goodput,
            availability=availability,
            fault_stats=fault_stats,
            spans=self.tracer.buffer if self.tracer is not None else None,
        )
