"""Finite-buffer queueing: the theory behind send-slot flow control.

§4.2's messaging buffers bound the number of in-flight RPCs: a sender
with no free slot *blocks*. In queueing terms the server becomes a
finite-capacity system — M/M/c/K — whose stationary distribution is
closed-form. These results let tests and capacity planning connect the
simulator's slot-exhaustion stalls to textbook blocking probabilities
(what fraction of arrivals find the system full) and to the Erlang-B
loss formula in the zero-buffer limit.
"""

from __future__ import annotations

import math
from typing import List

__all__ = [
    "mmck_distribution",
    "mmck_blocking_probability",
    "mmck_mean_jobs",
    "mmck_throughput",
    "erlang_b",
]


def mmck_distribution(
    num_servers: int, capacity: int, arrival_rate: float, service_rate: float
) -> List[float]:
    """Stationary distribution of an M/M/c/K system.

    ``capacity`` K is the total number of jobs admitted (in service +
    waiting); requires K >= c. Valid for any utilization (finite
    systems are always stable).
    """
    if num_servers <= 0:
        raise ValueError(f"num_servers must be positive, got {num_servers!r}")
    if capacity < num_servers:
        raise ValueError(
            f"capacity ({capacity!r}) must be >= num_servers ({num_servers!r})"
        )
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    offered = arrival_rate / service_rate
    weights: List[float] = []
    for jobs in range(capacity + 1):
        if jobs <= num_servers:
            weight = offered**jobs / math.factorial(jobs)
        else:
            weight = (
                offered**jobs
                / (
                    math.factorial(num_servers)
                    * num_servers ** (jobs - num_servers)
                )
            )
        weights.append(weight)
    total = sum(weights)
    return [weight / total for weight in weights]


def mmck_blocking_probability(
    num_servers: int, capacity: int, arrival_rate: float, service_rate: float
) -> float:
    """P(arrival finds the system full) — PASTA makes this P[N=K]."""
    distribution = mmck_distribution(
        num_servers, capacity, arrival_rate, service_rate
    )
    return distribution[-1]


def mmck_mean_jobs(
    num_servers: int, capacity: int, arrival_rate: float, service_rate: float
) -> float:
    """Mean number of jobs in the system."""
    distribution = mmck_distribution(
        num_servers, capacity, arrival_rate, service_rate
    )
    return sum(jobs * p for jobs, p in enumerate(distribution))


def mmck_throughput(
    num_servers: int, capacity: int, arrival_rate: float, service_rate: float
) -> float:
    """Accepted-arrival rate: λ·(1 − P_block)."""
    blocking = mmck_blocking_probability(
        num_servers, capacity, arrival_rate, service_rate
    )
    return arrival_rate * (1.0 - blocking)


def erlang_b(num_servers: int, offered_load: float) -> float:
    """Erlang-B blocking (M/M/c/c — no waiting room).

    The K=c special case of :func:`mmck_blocking_probability`, computed
    with the standard numerically stable recurrence.
    """
    if num_servers <= 0:
        raise ValueError(f"num_servers must be positive, got {num_servers!r}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be non-negative, got {offered_load!r}")
    if offered_load == 0:
        return 0.0
    blocking = 1.0
    for k in range(1, num_servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return blocking
