"""Preemptive single-queue scheduling (the §7 Shinjuku combination).

The paper's related work discusses Shinjuku [Kaffes et al., NSDI'19],
which preempts long-running RPCs every 5–15µs instead of running to
completion, and observes that "a system combining Shinjuku and RPCValet
would rigorously handle RPCs of a broad runtime range". This module
provides the queueing-model side of that combination: an exact
event-driven simulation of a single-queue multi-server system with
**preemptive quantum scheduling** — a job that exceeds the quantum is
put back at the tail of the shared queue.

Against the Masstree-like mixture (99% ~1µs gets + 1% 60–120µs scans),
preemption bounds the time a get can be stuck behind a scan to one
quantum, at the cost of context-switch overhead per preemption — the
trade Shinjuku's evaluation explores, reproduced here on RPCValet's
single-queue substrate (see ``benchmarks/bench_extensions.py``).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Tuple

import numpy as np

__all__ = ["simulate_preemptive_queue", "PreemptionResult"]


class PreemptionResult:
    """Sojourn times plus preemption accounting."""

    __slots__ = ("sojourns", "preemptions", "jobs")

    def __init__(self, sojourns: np.ndarray, preemptions: int, jobs: int) -> None:
        self.sojourns = sojourns
        self.preemptions = preemptions
        self.jobs = jobs

    @property
    def preemptions_per_job(self) -> float:
        return self.preemptions / self.jobs if self.jobs else 0.0


def simulate_preemptive_queue(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    num_servers: int,
    quantum: float,
    preemption_overhead: float = 0.0,
) -> PreemptionResult:
    """Single FIFO queue, ``num_servers`` servers, quantum preemption.

    A job runs for up to ``quantum``; if work remains it pays
    ``preemption_overhead`` (context save/restore) and re-enters the
    queue tail. The overhead is added to the job's remaining work — it
    occupies the core and is itself subject to slicing, so a job of
    size s experiences total occupancy T solving
    ``T = s + o·(ceil(T/q) − 1)``. ``quantum = inf`` degenerates to
    run-to-completion FIFO (verified against
    :func:`simulate_fifo_queue` in the tests).

    Returns sojourn times in arrival order.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    services = np.asarray(service_times, dtype=float)
    if arrivals.shape != services.shape:
        raise ValueError("arrivals and services must have identical shapes")
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    if np.any(services < 0):
        raise ValueError("service times must be non-negative")
    if num_servers <= 0:
        raise ValueError(f"num_servers must be positive, got {num_servers!r}")
    if quantum <= 0:
        raise ValueError(f"quantum must be positive, got {quantum!r}")
    if preemption_overhead < 0:
        raise ValueError("preemption_overhead must be non-negative")

    n = arrivals.size
    sojourns = np.empty(n, dtype=float)
    remaining = services.copy()
    queue: Deque[int] = deque()
    # Completion/preemption events: (time, seq, server_free_marker, job).
    events: List[Tuple[float, int, int]] = []
    idle_servers = num_servers
    next_arrival = 0
    seq = 0
    preemptions = 0

    def start(job: int, now: float) -> None:
        nonlocal idle_servers, seq
        idle_servers -= 1
        slice_length = remaining[job] if remaining[job] <= quantum else quantum
        heapq.heappush(events, (now + slice_length, seq, job))
        seq += 1

    time = 0.0
    while next_arrival < n or events:
        next_event_time = events[0][0] if events else np.inf
        next_arrival_time = arrivals[next_arrival] if next_arrival < n else np.inf
        if next_arrival_time <= next_event_time:
            time = next_arrival_time
            job = next_arrival
            next_arrival += 1
            if idle_servers > 0:
                start(job, time)
            else:
                queue.append(job)
        else:
            time, _seq, job = heapq.heappop(events)
            ran = remaining[job] if remaining[job] <= quantum else quantum
            remaining[job] -= ran
            if remaining[job] > 1e-12:
                # Preempted: pay the overhead, requeue at the tail.
                preemptions += 1
                remaining[job] += preemption_overhead
                queue.append(job)
            else:
                sojourns[job] = time - arrivals[job]
            # The server is free; take the next queued job or go idle.
            idle_servers += 1
            if queue:
                start(queue.popleft(), time)
    return PreemptionResult(sojourns, preemptions, n)
