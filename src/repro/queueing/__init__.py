"""Theoretical queueing models (paper §2.2, Fig. 2; Fig. 9's model side)."""

from .analytic import (
    erlang_c,
    gg1_mean_wait_kingman,
    mgc_mean_wait_allen_cunneen,
    mg1_mean_sojourn,
    mg1_mean_wait,
    mm1_mean_sojourn,
    mm1_sojourn_percentile,
    mmc_mean_sojourn,
    mmc_mean_wait,
    mmc_sojourn_cdf,
    mmc_sojourn_percentile,
    mmc_wait_percentile,
)
from .fastsim import poisson_arrivals, simulate_fifo_queue, sojourn_times
from .finite import (
    erlang_b,
    mmck_blocking_probability,
    mmck_distribution,
    mmck_mean_jobs,
    mmck_throughput,
)
from .hedging import HedgingResult, simulate_hedged_queues
from .kernelsim import kernel_sojourn_times
from .nonstationary import (
    nonhomogeneous_poisson,
    sinusoidal_rate,
    square_wave_rate,
)
from .preemption import PreemptionResult, simulate_preemptive_queue
from .policies import (
    JIQRouter,
    JSQRouter,
    PowerOfDRouter,
    RandomRouter,
    RoundRobinRouter,
    Router,
    simulate_routed_queues,
)
from .system import PAPER_CONFIGS, QueueingSystem, composite_service
from .validation import ValidationRow, run_validation

__all__ = [
    "QueueingSystem",
    "composite_service",
    "PAPER_CONFIGS",
    "simulate_fifo_queue",
    "sojourn_times",
    "poisson_arrivals",
    "kernel_sojourn_times",
    "Router",
    "RandomRouter",
    "RoundRobinRouter",
    "JSQRouter",
    "PowerOfDRouter",
    "JIQRouter",
    "simulate_routed_queues",
    "simulate_preemptive_queue",
    "PreemptionResult",
    "simulate_hedged_queues",
    "HedgingResult",
    "ValidationRow",
    "run_validation",
    "erlang_c",
    "mm1_mean_sojourn",
    "mm1_sojourn_percentile",
    "mmc_mean_wait",
    "mmc_mean_sojourn",
    "mmc_wait_percentile",
    "mmc_sojourn_cdf",
    "mmc_sojourn_percentile",
    "mg1_mean_wait",
    "mg1_mean_sojourn",
    "mgc_mean_wait_allen_cunneen",
    "gg1_mean_wait_kingman",
    "mmck_distribution",
    "mmck_blocking_probability",
    "mmck_mean_jobs",
    "mmck_throughput",
    "erlang_b",
    "nonhomogeneous_poisson",
    "square_wave_rate",
    "sinusoidal_rate",
]
