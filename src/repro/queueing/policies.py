"""Load-aware routing policies from the related work (§7).

The paper contrasts its NI dispatch with cluster-level algorithms —
Join-Shortest-Queue, Power-of-d, Join-Idle-Queue. This module provides
an exact event-driven simulator for *routed* multi-queue systems where
an arrival is steered by a policy that inspects queue state, so those
algorithms can be compared against the paper's uniform-spray Q×U models
and against RPCValet's single-queue behaviour.
"""

from __future__ import annotations

import abc
import heapq
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

__all__ = [
    "Router",
    "RandomRouter",
    "RoundRobinRouter",
    "JSQRouter",
    "PowerOfDRouter",
    "JIQRouter",
    "simulate_routed_queues",
]


class Router(abc.ABC):
    """Chooses the destination queue for each arrival."""

    name = "router"

    @abc.abstractmethod
    def choose(
        self,
        queue_lengths: List[int],
        idle_servers: List[int],
        rng: np.random.Generator,
    ) -> int:
        """Return the destination queue index.

        ``queue_lengths[q]`` counts waiting + in-service requests at
        queue q; ``idle_servers[q]`` counts its free serving units.
        """


class RandomRouter(Router):
    """Uniformly random spray — the paper's Q×U baseline behaviour."""

    name = "random"

    def choose(self, queue_lengths, idle_servers, rng):
        return int(rng.integers(0, len(queue_lengths)))


class RoundRobinRouter(Router):
    """Cyclic assignment, oblivious to load."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, queue_lengths, idle_servers, rng):
        choice = self._next
        self._next = (self._next + 1) % len(queue_lengths)
        return choice


class JSQRouter(Router):
    """Join-Shortest-Queue [Gupta et al.]: full state, shortest queue."""

    name = "jsq"

    def choose(self, queue_lengths, idle_servers, rng):
        shortest = min(queue_lengths)
        candidates = [
            index
            for index, length in enumerate(queue_lengths)
            if length == shortest
        ]
        if len(candidates) == 1:
            return candidates[0]
        return int(candidates[rng.integers(0, len(candidates))])


class PowerOfDRouter(Router):
    """Power-of-d choices [Bramson et al.]: sample d, pick the shortest."""

    name = "power_of_d"

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d!r}")
        self.d = d
        self.name = f"power_of_{d}"

    def choose(self, queue_lengths, idle_servers, rng):
        num_queues = len(queue_lengths)
        samples = rng.integers(0, num_queues, size=min(self.d, num_queues))
        best = int(samples[0])
        for queue_index in samples[1:]:
            if queue_lengths[queue_index] < queue_lengths[best]:
                best = int(queue_index)
        return best


class JIQRouter(Router):
    """Join-Idle-Queue [Lu et al.]: idle queue if any, else random."""

    name = "jiq"

    def choose(self, queue_lengths, idle_servers, rng):
        idle = [index for index, count in enumerate(idle_servers) if count > 0]
        if idle:
            return int(idle[rng.integers(0, len(idle))])
        return int(rng.integers(0, len(queue_lengths)))


def simulate_routed_queues(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    num_queues: int,
    servers_per_queue: int,
    router: Router,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Exact simulation of ``num_queues`` FIFO queues with routed arrivals.

    Returns sojourn times in arrival order. The router sees queue state
    *at the arrival instant* (departures at exactly the arrival time are
    processed first, matching the convention that the NI observes
    completed work before dispatching).
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    services = np.asarray(service_times, dtype=float)
    if arrivals.shape != services.shape:
        raise ValueError("arrivals and services must have identical shapes")
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    if num_queues <= 0 or servers_per_queue <= 0:
        raise ValueError("num_queues and servers_per_queue must be positive")
    if rng is None:
        rng = np.random.default_rng(0)

    queue_lengths = [0] * num_queues
    idle_servers = [servers_per_queue] * num_queues
    waiting: List[Deque[Tuple[int, float]]] = [deque() for _ in range(num_queues)]
    # Heap entries: (departure_time, seq, queue_id, request_index).
    departures_heap: List[Tuple[float, int, int, int]] = []
    sojourns = np.empty(arrivals.size, dtype=float)
    seq = 0

    def start_service(queue_id: int, now: float, index: int, arrived: float) -> None:
        nonlocal seq
        idle_servers[queue_id] -= 1
        depart = now + services[index]
        sojourns[index] = depart - arrived
        heapq.heappush(departures_heap, (depart, seq, queue_id, index))
        seq += 1

    def process_departure() -> None:
        depart_time, _seq, queue_id, _index = heapq.heappop(departures_heap)
        queue_lengths[queue_id] -= 1
        idle_servers[queue_id] += 1
        if waiting[queue_id]:
            next_index, next_arrived = waiting[queue_id].popleft()
            start_service(queue_id, depart_time, next_index, next_arrived)

    for index in range(arrivals.size):
        now = arrivals[index]
        while departures_heap and departures_heap[0][0] <= now:
            process_departure()
        queue_id = router.choose(queue_lengths, idle_servers, rng)
        if not 0 <= queue_id < num_queues:
            raise ValueError(
                f"{router.name} chose invalid queue {queue_id!r} of {num_queues}"
            )
        queue_lengths[queue_id] += 1
        if idle_servers[queue_id] > 0:
            start_service(queue_id, now, index, now)
        else:
            waiting[queue_id].append((index, now))

    while departures_heap:
        process_departure()
    return sojourns
