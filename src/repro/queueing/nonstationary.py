"""Nonstationary arrivals: bursts and diurnal load swings.

The paper's Poisson arrivals are stationary; real RPC traffic has
flash bursts (fan-out storms) and slow rate swings. This module keeps
the queueing-level convenience rate shapes (square wave, sinusoid) and
re-exports the **nonhomogeneous Poisson** thinner from
:mod:`repro.popload.arrivals` — the population-driven workload
subsystem now owns the single implementation, and this import path
stays for existing consumers (bit-identical streams). Two regimes
(both verified in the tests): bursts that stay below system capacity
are absorbed by the single queue but transiently overload 16×1's
unlucky queues — the relative gap *widens*; bursts far past capacity
build the same backlog in both systems and the relative gap compresses
(while absolute tails explode).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..popload.arrivals import nonhomogeneous_poisson

__all__ = [
    "nonhomogeneous_poisson",
    "square_wave_rate",
    "sinusoidal_rate",
]


def square_wave_rate(
    base_rate: float, burst_rate: float, period: float, burst_fraction: float
) -> Tuple[Callable[[float], float], float]:
    """Flash-burst profile: ``burst_rate`` for the first
    ``burst_fraction`` of each period, ``base_rate`` otherwise.

    Returns ``(rate_fn, rate_max)`` ready for
    :func:`nonhomogeneous_poisson`.
    """
    if base_rate < 0 or burst_rate < base_rate:
        raise ValueError("need 0 <= base_rate <= burst_rate")
    if period <= 0 or not 0 < burst_fraction < 1:
        raise ValueError("period must be positive and burst_fraction in (0,1)")

    def rate_fn(t: float) -> float:
        phase = (t % period) / period
        return burst_rate if phase < burst_fraction else base_rate

    return rate_fn, burst_rate


def sinusoidal_rate(
    mean_rate: float, amplitude: float, period: float
) -> Tuple[Callable[[float], float], float]:
    """Diurnal-style smooth swing: mean ± amplitude over one period."""
    if mean_rate <= 0 or not 0 <= amplitude < mean_rate:
        raise ValueError("need mean_rate > 0 and 0 <= amplitude < mean_rate")
    if period <= 0:
        raise ValueError("period must be positive")
    two_pi = 2.0 * np.pi

    def rate_fn(t: float) -> float:
        return mean_rate + amplitude * np.sin(two_pi * t / period)

    return rate_fn, mean_rate + amplitude
