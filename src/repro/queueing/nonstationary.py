"""Nonstationary arrivals: bursts and diurnal load swings.

The paper's Poisson arrivals are stationary; real RPC traffic has
flash bursts (fan-out storms) and slow rate swings. This module
generates **nonhomogeneous Poisson** arrival times by thinning, plus a
convenience square-wave burst profile, so the Q×U comparison can be
re-run under bursty load. Two regimes (both verified in the tests):
bursts that stay below system capacity are absorbed by the single
queue but transiently overload 16×1's unlucky queues — the relative
gap *widens*; bursts far past capacity build the same backlog in both
systems and the relative gap compresses (while absolute tails explode).
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

__all__ = [
    "nonhomogeneous_poisson",
    "square_wave_rate",
    "sinusoidal_rate",
]


def nonhomogeneous_poisson(
    rng: np.random.Generator,
    rate_fn: Callable[[float], float],
    rate_max: float,
    horizon: float,
) -> np.ndarray:
    """Arrival times on [0, horizon) with intensity ``rate_fn(t)``.

    Standard thinning (Lewis & Shedler): candidates from a homogeneous
    Poisson at ``rate_max`` are accepted with probability
    ``rate_fn(t)/rate_max``. ``rate_fn`` must never exceed ``rate_max``.
    """
    if rate_max <= 0:
        raise ValueError(f"rate_max must be positive, got {rate_max!r}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon!r}")
    # Generate candidates in blocks to stay vectorized.
    expected = rate_max * horizon
    block = max(int(expected * 1.2) + 16, 64)
    times = []
    t = 0.0
    while t < horizon:
        gaps = rng.exponential(1.0 / rate_max, size=block)
        candidates = t + np.cumsum(gaps)
        candidates = candidates[candidates < horizon]
        if candidates.size == 0 and t + gaps.sum() >= horizon:
            break
        accept = rng.uniform(size=candidates.size)
        for when, u in zip(candidates, accept):
            rate = rate_fn(float(when))
            if rate < 0 or rate > rate_max * (1 + 1e-9):
                raise ValueError(
                    f"rate_fn({when}) = {rate} outside [0, rate_max={rate_max}]"
                )
            if u < rate / rate_max:
                times.append(float(when))
        t = float(candidates[-1]) if candidates.size else t + gaps.sum()
    return np.asarray(times)


def square_wave_rate(
    base_rate: float, burst_rate: float, period: float, burst_fraction: float
) -> Tuple[Callable[[float], float], float]:
    """Flash-burst profile: ``burst_rate`` for the first
    ``burst_fraction`` of each period, ``base_rate`` otherwise.

    Returns ``(rate_fn, rate_max)`` ready for
    :func:`nonhomogeneous_poisson`.
    """
    if base_rate < 0 or burst_rate < base_rate:
        raise ValueError("need 0 <= base_rate <= burst_rate")
    if period <= 0 or not 0 < burst_fraction < 1:
        raise ValueError("period must be positive and burst_fraction in (0,1)")

    def rate_fn(t: float) -> float:
        phase = (t % period) / period
        return burst_rate if phase < burst_fraction else base_rate

    return rate_fn, burst_rate


def sinusoidal_rate(
    mean_rate: float, amplitude: float, period: float
) -> Tuple[Callable[[float], float], float]:
    """Diurnal-style smooth swing: mean ± amplitude over one period."""
    if mean_rate <= 0 or not 0 <= amplitude < mean_rate:
        raise ValueError("need mean_rate > 0 and 0 <= amplitude < mean_rate")
    if period <= 0:
        raise ValueError("period must be positive")
    two_pi = 2.0 * np.pi

    def rate_fn(t: float) -> float:
        return mean_rate + amplitude * np.sin(two_pi * t / period)

    return rate_fn, mean_rate + amplitude
