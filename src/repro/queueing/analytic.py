"""Closed-form queueing results used as test oracles.

These are not part of the paper's evaluation, but they pin down the
correctness of the simulators: an M/M/1, M/M/c, or M/G/1 run of
:mod:`repro.queueing.fastsim` must converge to these values.
"""

from __future__ import annotations

import math

__all__ = [
    "mm1_mean_sojourn",
    "mm1_sojourn_percentile",
    "erlang_c",
    "mmc_mean_wait",
    "mmc_mean_sojourn",
    "mmc_wait_percentile",
    "mmc_sojourn_cdf",
    "mmc_sojourn_percentile",
    "mg1_mean_wait",
    "mg1_mean_sojourn",
    "mgc_mean_wait_allen_cunneen",
    "gg1_mean_wait_kingman",
]


def _check_stability(rho: float) -> None:
    if not 0 <= rho < 1:
        raise ValueError(f"utilization must be in [0,1) for a stable queue, got {rho!r}")


def mm1_mean_sojourn(arrival_rate: float, service_rate: float) -> float:
    """Mean sojourn time of an M/M/1 queue: 1/(µ−λ)."""
    rho = arrival_rate / service_rate
    _check_stability(rho)
    return 1.0 / (service_rate - arrival_rate)


def mm1_sojourn_percentile(
    arrival_rate: float, service_rate: float, quantile: float
) -> float:
    """Percentile of M/M/1 sojourn time (exponential with rate µ−λ).

    ``quantile`` in (0, 1): e.g. 0.99 for the p99.
    """
    if not 0 < quantile < 1:
        raise ValueError(f"quantile must be in (0,1), got {quantile!r}")
    rho = arrival_rate / service_rate
    _check_stability(rho)
    return -math.log(1.0 - quantile) / (service_rate - arrival_rate)


def erlang_c(num_servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait in M/M/c.

    ``offered_load`` is a = λ/µ (in Erlangs); requires a < c.
    """
    if num_servers <= 0:
        raise ValueError(f"num_servers must be positive, got {num_servers!r}")
    if not 0 <= offered_load < num_servers:
        raise ValueError(
            f"offered load {offered_load!r} must be in [0, c={num_servers}) for stability"
        )
    if offered_load == 0:
        return 0.0
    # Iterative Erlang-B then convert, numerically stable for large c.
    blocking = 1.0
    for k in range(1, num_servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / num_servers
    return blocking / (1.0 - rho + rho * blocking)


def mmc_mean_wait(
    num_servers: int, arrival_rate: float, service_rate: float
) -> float:
    """Mean waiting time (excluding service) in M/M/c."""
    offered = arrival_rate / service_rate
    probability_wait = erlang_c(num_servers, offered)
    return probability_wait / (num_servers * service_rate - arrival_rate)


def mmc_mean_sojourn(
    num_servers: int, arrival_rate: float, service_rate: float
) -> float:
    """Mean sojourn time (wait + service) in M/M/c."""
    return mmc_mean_wait(num_servers, arrival_rate, service_rate) + 1.0 / service_rate


def mmc_wait_percentile(
    num_servers: int, arrival_rate: float, service_rate: float, quantile: float
) -> float:
    """Percentile of the M/M/c *waiting* time.

    The wait is 0 with probability 1−P_wait and exponential with rate
    (cµ−λ) otherwise, so the percentile is 0 below that mass.
    """
    if not 0 < quantile < 1:
        raise ValueError(f"quantile must be in (0,1), got {quantile!r}")
    offered = arrival_rate / service_rate
    probability_wait = erlang_c(num_servers, offered)
    if quantile <= 1.0 - probability_wait:
        return 0.0
    conditional_quantile = 1.0 - (1.0 - quantile) / probability_wait
    rate = num_servers * service_rate - arrival_rate
    return -math.log(1.0 - conditional_quantile) / rate


def mg1_mean_wait(
    arrival_rate: float, mean_service: float, second_moment_service: float
) -> float:
    """Pollaczek–Khinchine mean wait for M/G/1: λE[S²] / (2(1−ρ))."""
    rho = arrival_rate * mean_service
    _check_stability(rho)
    if second_moment_service < mean_service**2:
        raise ValueError("E[S^2] cannot be below E[S]^2")
    return arrival_rate * second_moment_service / (2.0 * (1.0 - rho))


def mg1_mean_sojourn(
    arrival_rate: float, mean_service: float, second_moment_service: float
) -> float:
    """Mean M/G/1 sojourn time: P-K wait + mean service."""
    return (
        mg1_mean_wait(arrival_rate, mean_service, second_moment_service)
        + mean_service
    )


def mgc_mean_wait_allen_cunneen(
    num_servers: int,
    arrival_rate: float,
    mean_service: float,
    scv_service: float,
) -> float:
    """Allen–Cunneen approximation for the M/G/c mean waiting time.

    ``W_MGc ≈ W_MMc · (1 + cs²) / 2`` where cs² is the service-time
    squared coefficient of variation. Exact for M/M/c (cs²=1) and
    M/G/1 (it reduces to Pollaczek–Khinchine); a few-percent
    approximation otherwise — the standard first-order tool for sizing
    multi-server systems with non-exponential service.
    """
    if mean_service <= 0:
        raise ValueError(f"mean_service must be positive, got {mean_service!r}")
    if scv_service < 0:
        raise ValueError(f"scv_service must be non-negative, got {scv_service!r}")
    base_wait = mmc_mean_wait(num_servers, arrival_rate, 1.0 / mean_service)
    return base_wait * (1.0 + scv_service) / 2.0


def gg1_mean_wait_kingman(
    arrival_rate: float,
    mean_service: float,
    scv_arrival: float,
    scv_service: float,
) -> float:
    """Kingman's heavy-traffic approximation for the G/G/1 mean wait.

    ``W ≈ (ρ/(1−ρ)) · ((ca² + cs²)/2) · E[S]``. Exact for M/M/1;
    asymptotically exact as ρ→1. The workhorse bound for arrival
    processes that are not Poisson.
    """
    if scv_arrival < 0 or scv_service < 0:
        raise ValueError("squared coefficients of variation must be >= 0")
    rho = arrival_rate * mean_service
    _check_stability(rho)
    return (
        (rho / (1.0 - rho))
        * ((scv_arrival + scv_service) / 2.0)
        * mean_service
    )


def mmc_sojourn_cdf(
    num_servers: int, arrival_rate: float, service_rate: float, t: float
) -> float:
    """Exact CDF of the M/M/c FIFO sojourn time at ``t``.

    In M/M/c the waiting time W is independent of the tagged customer's
    own service S, so T = W + S with W a point mass at 0 plus an
    exponential tail: closed-form convolution. This pins the Fig. 2a
    exponential curves analytically (both 1×16 = M/M/16 and each queue
    of 16×1 = M/M/1).
    """
    if t < 0:
        return 0.0
    mu = service_rate
    probability_wait = erlang_c(num_servers, arrival_rate / mu)
    theta = num_servers * mu - arrival_rate  # conditional wait rate
    # P(T <= t) = (1 - Pw) * P(S <= t) + Pw * P(S + W' <= t).
    no_wait_part = (1.0 - probability_wait) * (1.0 - math.exp(-mu * t))
    if abs(theta - mu) < 1e-12 * mu:
        # S and W' share the rate: Erlang-2 convolution.
        wait_part = probability_wait * (
            1.0 - math.exp(-mu * t) * (1.0 + mu * t)
        )
    else:
        wait_part = probability_wait * (
            1.0
            - (theta * math.exp(-mu * t) - mu * math.exp(-theta * t))
            / (theta - mu)
        )
    return no_wait_part + wait_part


def mmc_sojourn_percentile(
    num_servers: int,
    arrival_rate: float,
    service_rate: float,
    quantile: float,
    tolerance: float = 1e-10,
) -> float:
    """Exact M/M/c FIFO sojourn percentile (bisection on the CDF)."""
    if not 0 < quantile < 1:
        raise ValueError(f"quantile must be in (0,1), got {quantile!r}")
    rho = arrival_rate / (num_servers * service_rate)
    _check_stability(rho)
    low, high = 0.0, 1.0 / service_rate
    while mmc_sojourn_cdf(num_servers, arrival_rate, service_rate, high) < quantile:
        high *= 2.0
        if high > 1e12 / service_rate:  # pragma: no cover - guard
            raise RuntimeError("percentile search diverged")
    while high - low > tolerance * high:
        mid = 0.5 * (low + high)
        if mmc_sojourn_cdf(num_servers, arrival_rate, service_rate, mid) < quantile:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)
