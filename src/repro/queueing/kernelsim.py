"""Generic-kernel implementation of the Q×U queueing system.

Deliberately slow and obviously correct: queues are kernel Stores and
serving units are processes. Tests cross-check
:mod:`repro.queueing.fastsim` against this implementation on identical
arrival/service sequences — they must agree exactly (both are exact
simulations of the same FIFO discipline).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sim import Environment, Store

__all__ = ["kernel_sojourn_times"]


def kernel_sojourn_times(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    queue_ids: np.ndarray,
    num_queues: int,
    servers_per_queue: int,
) -> np.ndarray:
    """Sojourn times of a Q×U run, computed with the DES kernel.

    ``queue_ids`` gives the FIFO each request was sprayed to; all three
    arrays share arrival order.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    services = np.asarray(service_times, dtype=float)
    queues_of = np.asarray(queue_ids, dtype=int)
    if not (arrivals.shape == services.shape == queues_of.shape):
        raise ValueError("arrays must have identical shapes")
    if np.any((queues_of < 0) | (queues_of >= num_queues)):
        raise ValueError("queue id out of range")

    env = Environment()
    stores: List[Store] = [Store(env) for _ in range(num_queues)]
    sojourns = np.full(arrivals.size, np.nan)
    remaining = [int((queues_of == q).sum()) for q in range(num_queues)]

    def arrival_process():
        previous = 0.0
        for index in range(arrivals.size):
            yield env.timeout(arrivals[index] - previous)
            previous = arrivals[index]
            stores[queues_of[index]].put(
                (index, arrivals[index], services[index])
            )

    def server(queue_id: int):
        store = stores[queue_id]
        while remaining[queue_id] > 0:
            index, arrived, service = yield store.get()
            remaining[queue_id] -= 1
            yield env.timeout(service)
            sojourns[index] = env.now - arrived

    env.process(arrival_process())
    for queue_id in range(num_queues):
        for _ in range(servers_per_queue):
            env.process(server(queue_id))
    env.run()
    if np.isnan(sojourns).any():  # pragma: no cover - sanity net
        raise RuntimeError("some requests never completed")
    return sojourns
