"""Client-side request hedging (the §7 "tail at scale" alternative).

The paper contrasts RPCValet with client-side techniques that
"duplicate/hedge requests across multiple servers" [Dean & Barroso]:
hedging shrinks the tail but *increases global load* — and at µs scale
the extra load is substantial because duplication must be aggressive.
This module simulates hedged dispatch over partitioned queues so the
trade-off can be quantified against RPCValet's server-side approach
(see ``benchmarks/bench_extensions.py``).

Model: every request is sent to ``copies`` distinct uniformly chosen
queues; the first copy to *finish* wins. Copies are cancelled when a
sibling completes only if ``cancel_on_completion`` — and cancellation
removes only copies still waiting in a queue (a copy already occupying
a server runs to completion, which is how practical cancellation
behaves at µs scale, where the cancel message races the work itself).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Set, Tuple

import numpy as np

__all__ = ["simulate_hedged_queues", "HedgingResult"]


class HedgingResult:
    """Sojourns of the winning copies plus wasted-work accounting."""

    __slots__ = ("sojourns", "wasted_work", "total_work")

    def __init__(self, sojourns: np.ndarray, wasted_work: float, total_work: float) -> None:
        self.sojourns = sojourns
        self.wasted_work = wasted_work
        self.total_work = total_work

    @property
    def waste_fraction(self) -> float:
        """Fraction of executed server work that was redundant."""
        return self.wasted_work / self.total_work if self.total_work else 0.0


def simulate_hedged_queues(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    num_queues: int,
    copies: int = 2,
    cancel_on_completion: bool = True,
    rng: np.random.Generator = None,
) -> HedgingResult:
    """Hedge each request across ``copies`` single-server FIFO queues.

    Each copy re-samples nothing: both copies carry the same service
    requirement (the duplicate does the same work). Returns the
    first-completion sojourn per request.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    services = np.asarray(service_times, dtype=float)
    if arrivals.shape != services.shape:
        raise ValueError("arrivals and services must have identical shapes")
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    if num_queues < 2:
        raise ValueError(f"need at least 2 queues to hedge, got {num_queues!r}")
    if not 1 <= copies <= num_queues:
        raise ValueError(f"copies must be in [1, num_queues], got {copies!r}")
    if rng is None:
        rng = np.random.default_rng(0)

    n = arrivals.size
    sojourns = np.full(n, np.nan)
    done: Set[int] = set()
    queues: List[Deque[int]] = [deque() for _ in range(num_queues)]
    busy: List[bool] = [False] * num_queues
    # (completion_time, seq, queue_id, request)
    events: List[Tuple[float, int, int, int]] = []
    seq = 0
    next_arrival = 0
    total_work = 0.0

    def start(queue_id: int, request: int, now: float) -> None:
        nonlocal seq, total_work
        busy[queue_id] = True
        total_work += services[request]
        heapq.heappush(events, (now + services[request], seq, queue_id, request))
        seq += 1

    def pump(queue_id: int, now: float) -> None:
        """Start the next un-cancelled copy waiting at this queue."""
        while queues[queue_id]:
            request = queues[queue_id].popleft()
            if cancel_on_completion and request in done:
                continue  # cancelled while waiting
            start(queue_id, request, now)
            return
        busy[queue_id] = False

    time = 0.0
    while next_arrival < n or events:
        next_event_time = events[0][0] if events else np.inf
        next_arrival_time = arrivals[next_arrival] if next_arrival < n else np.inf
        if next_arrival_time <= next_event_time:
            time = next_arrival_time
            request = next_arrival
            next_arrival += 1
            targets = rng.choice(num_queues, size=copies, replace=False)
            for queue_id in targets:
                queue_id = int(queue_id)
                if not busy[queue_id]:
                    start(queue_id, request, time)
                else:
                    queues[queue_id].append(request)
        else:
            time, _seq, queue_id, request = heapq.heappop(events)
            if request not in done:
                done.add(request)
                sojourns[request] = time - arrivals[request]
            pump(queue_id, time)

    if np.isnan(sojourns).any():  # pragma: no cover - sanity net
        raise RuntimeError("some hedged requests never completed")
    # Exactly one copy per request is useful work; the rest is waste.
    # (max() guards the floating-point residue of the two summations.)
    wasted_work = max(0.0, total_work - float(services.sum()))
    return HedgingResult(sojourns, wasted_work, total_work)
