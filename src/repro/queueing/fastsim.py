"""Exact event simulation of a FIFO multi-server queue.

This is the performance-critical inner loop of the theoretical queueing
experiments (Fig. 2, Fig. 9's "Model" series), so it avoids the generic
DES kernel: for a FIFO queue with ``c`` identical servers, a request's
start time is ``max(arrival, earliest-free-server)``, which a heap of
server-free times computes exactly in O(n log c).

Correctness is cross-checked in the tests against (a) analytic M/M/1 and
M/M/c results and (b) a slow generic-kernel implementation
(:mod:`repro.queueing.kernelsim`).
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = [
    "simulate_fifo_queue",
    "sojourn_times",
    "queue_length_series",
    "queue_depth_at_arrivals",
    "poisson_arrivals",
    "validate_queue_inputs",
]


def validate_queue_inputs(arrivals: np.ndarray, services: np.ndarray) -> None:
    """Check monotone arrivals / non-negative services.

    The single shared home of the O(n) input validation: external call
    paths run it once at their boundary; internal correct-by-construction
    callers (cumsums of non-negative gaps, samples from non-negative
    distributions) skip it with ``validate=False`` instead of paying the
    temporaries on every hot call.
    """
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    if np.any(services < 0):
        raise ValueError("service times must be non-negative")


def simulate_fifo_queue(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    num_servers: int,
    validate: bool = True,
) -> np.ndarray:
    """Simulate one FIFO queue with ``num_servers`` servers.

    Parameters
    ----------
    arrival_times:
        Non-decreasing absolute arrival times.
    service_times:
        Per-request service times (same length as arrivals).
    num_servers:
        Number of identical serving units pulling from this FIFO.
    validate:
        Check monotone arrivals / non-negative services before
        simulating. These checks allocate O(n) temporaries, which is
        measurable on this inner loop; internal callers whose inputs
        are correct by construction (a cumsum of non-negative gaps,
        samples from a non-negative distribution) pass ``False``.

    Returns
    -------
    numpy.ndarray
        Departure times, one per request, in arrival order.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    services = np.asarray(service_times, dtype=float)
    if arrivals.shape != services.shape:
        raise ValueError(
            f"arrivals and services differ in length: {arrivals.shape} vs {services.shape}"
        )
    if arrivals.ndim != 1:
        raise ValueError("expected 1-D arrays")
    if num_servers <= 0:
        raise ValueError(f"num_servers must be positive, got {num_servers!r}")
    if validate:
        validate_queue_inputs(arrivals, services)

    departures = np.empty_like(arrivals)
    if num_servers == 1:
        # Lindley recurrence, the common case for the 16x1 model.
        free_at = 0.0
        for index in range(arrivals.size):
            start = arrivals[index] if arrivals[index] > free_at else free_at
            free_at = start + services[index]
            departures[index] = free_at
        return departures

    free_heap = [0.0] * num_servers
    heapq.heapify(free_heap)
    pop = heapq.heappop
    push = heapq.heappush
    for index in range(arrivals.size):
        free = pop(free_heap)
        arrival = arrivals[index]
        start = arrival if arrival > free else free
        depart = start + services[index]
        push(free_heap, depart)
        departures[index] = depart
    return departures


def sojourn_times(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    num_servers: int,
    warmup_fraction: float = 0.0,
    validate: bool = True,
) -> np.ndarray:
    """Sojourn (queueing + service) times for a FIFO multi-server queue.

    ``warmup_fraction`` drops the earliest-arriving fraction of requests
    so transient start-up bias does not pollute tail estimates.
    ``validate=False`` skips the O(n) input checks (see
    :func:`simulate_fifo_queue`).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup_fraction must be in [0,1), got {warmup_fraction!r}")
    departures = simulate_fifo_queue(
        arrival_times, service_times, num_servers, validate=validate
    )
    sojourns = departures - np.asarray(arrival_times, dtype=float)
    if warmup_fraction > 0.0 and sojourns.size:
        skip = int(sojourns.size * warmup_fraction)
        sojourns = sojourns[skip:]
    return sojourns


def queue_length_series(
    arrival_times: np.ndarray, departure_times: np.ndarray
) -> tuple:
    """Number-in-system step function from arrival/departure times.

    Returns ``(times, lengths)``: the event instants (arrivals and
    departures, time-ordered) and the queue length *after* each event.
    At a tie the arrival is counted before the departure, so transient
    spikes are visible rather than cancelled. Used by the telemetry
    layer to export per-queue length time series for the theoretical
    Q×U models (the vectorized analogue of the DES sampler's probes).
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    departures = np.asarray(departure_times, dtype=float)
    if arrivals.shape != departures.shape or arrivals.ndim != 1:
        raise ValueError("expected matching 1-D arrival/departure arrays")
    times = np.concatenate([arrivals, departures])
    deltas = np.concatenate(
        [np.ones(arrivals.size, dtype=np.int64), -np.ones(departures.size, dtype=np.int64)]
    )
    # Stable sort + arrivals listed first = arrivals win ties.
    order = np.argsort(times, kind="stable")
    return times[order], np.cumsum(deltas[order])


def queue_depth_at_arrivals(
    arrival_times: np.ndarray, departure_times: np.ndarray
) -> np.ndarray:
    """Number-in-system seen by each arrival (including itself).

    ``depth[i] = (i + 1) - |{j : departure_j <= arrival_i}|`` — an
    arrival-sampled queue-depth distribution, the quantity RPCValet's
    dispatcher threshold acts on. Departures at exactly the arrival
    instant count as already departed.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    departures = np.asarray(departure_times, dtype=float)
    if arrivals.shape != departures.shape or arrivals.ndim != 1:
        raise ValueError("expected matching 1-D arrival/departure arrays")
    departed = np.searchsorted(np.sort(departures), arrivals, side="right")
    return np.arange(1, arrivals.size + 1) - departed


def poisson_arrivals(
    rng: np.random.Generator, rate: float, count: int, start: float = 0.0
) -> np.ndarray:
    """Absolute arrival times of a Poisson process with the given rate."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count!r}")
    gaps = rng.exponential(1.0 / rate, size=count)
    return start + np.cumsum(gaps)
