"""Self-validation of the queueing simulators against closed forms.

Runs the exact FIFO simulator across an (arrival, service, servers)
grid and compares means/tails to textbook results (M/M/1, M/M/c via
Erlang-C, M/G/1 via Pollaczek–Khinchine). This is the "why should I
trust this simulator" artifact: run it any time with

    python -m repro.experiments validate
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .analytic import (
    mg1_mean_sojourn,
    mm1_mean_sojourn,
    mm1_sojourn_percentile,
    mmc_mean_sojourn,
)
from .fastsim import poisson_arrivals, sojourn_times

__all__ = ["ValidationRow", "run_validation"]


@dataclass(frozen=True)
class ValidationRow:
    """One simulated-vs-analytic comparison."""

    system: str
    metric: str
    analytic: float
    simulated: float

    @property
    def relative_error(self) -> float:
        if self.analytic == 0:
            return float("nan")
        return abs(self.simulated - self.analytic) / self.analytic


def run_validation(
    num_requests: int = 300_000, seed: int = 0
) -> List[ValidationRow]:
    """Compare the FIFO simulator to closed forms across a grid."""
    if num_requests < 1_000:
        raise ValueError("validation needs a meaningful sample size")
    rng = np.random.default_rng(seed)
    rows: List[ValidationRow] = []

    # --- M/M/1 at several utilizations --------------------------------------
    for rho in (0.3, 0.6, 0.8):
        arrivals = poisson_arrivals(rng, rho, num_requests)
        services = rng.exponential(1.0, num_requests)
        sojourns = sojourn_times(
            arrivals, services, 1, warmup_fraction=0.1, validate=False
        )
        rows.append(
            ValidationRow(
                f"M/M/1 rho={rho}",
                "mean sojourn",
                mm1_mean_sojourn(rho, 1.0),
                float(sojourns.mean()),
            )
        )
        rows.append(
            ValidationRow(
                f"M/M/1 rho={rho}",
                "p99 sojourn",
                mm1_sojourn_percentile(rho, 1.0, 0.99),
                float(np.percentile(sojourns, 99)),
            )
        )

    # --- M/M/c (the paper's 16 serving units) --------------------------------
    for servers, rho in ((4, 0.7), (16, 0.8), (16, 0.95)):
        rate = rho * servers
        arrivals = poisson_arrivals(rng, rate, num_requests)
        services = rng.exponential(1.0, num_requests)
        sojourns = sojourn_times(
            arrivals, services, servers, warmup_fraction=0.1, validate=False
        )
        rows.append(
            ValidationRow(
                f"M/M/{servers} rho={rho}",
                "mean sojourn",
                mmc_mean_sojourn(servers, rate, 1.0),
                float(sojourns.mean()),
            )
        )

    # --- M/G/1 with two service shapes ---------------------------------------
    for label, sampler, second_moment in (
        ("M/D/1", lambda n: np.full(n, 1.0), 1.0),
        ("M/U(0,2)/1", lambda n: rng.uniform(0.0, 2.0, n), 4.0 / 3.0),
    ):
        rho = 0.7
        arrivals = poisson_arrivals(rng, rho, num_requests)
        services = sampler(num_requests)
        sojourns = sojourn_times(
            arrivals, services, 1, warmup_fraction=0.1, validate=False
        )
        rows.append(
            ValidationRow(
                f"{label} rho={rho}",
                "mean sojourn",
                mg1_mean_sojourn(rho, 1.0, second_moment),
                float(sojourns.mean()),
            )
        )
    return rows
