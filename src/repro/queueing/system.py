"""The paper's Q×U queueing systems (§2.2, Fig. 1/2; Fig. 9 model side).

``Model Q×U`` denotes Q FIFOs with U serving units each; arrivals are
Poisson and each arriving request is assigned to one of the Q FIFOs
uniformly at random (``uni[0, Q-1]`` in Fig. 1). The invariant across
the paper's configurations is Q·U = 16.

Fig. 9 additionally needs a *composite* service time: a fixed component
(the microbenchmark's non-emulated work, S̄−D) plus a distributed
component D. :func:`composite_service` builds that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..dists import Distribution, Shifted
from ..metrics import LatencySummary, SweepPoint, SweepResult
from ..runner import map_points, spawn_point_seeds
from ..sim import RngRegistry
from ..telemetry import Histogram, TelemetrySnapshot, TimeSeries
from .fastsim import (
    poisson_arrivals,
    queue_depth_at_arrivals,
    queue_length_series,
    simulate_fifo_queue,
    sojourn_times,
)

__all__ = ["QueueingSystem", "composite_service", "PAPER_CONFIGS", "run_queueing_task"]

#: The five configurations of Fig. 2a, as (num_queues, servers_per_queue).
PAPER_CONFIGS = ((1, 16), (2, 8), (4, 4), (8, 2), (16, 1))


def composite_service(
    distributed: Distribution, fixed_part: float, name: Optional[str] = None
) -> Distribution:
    """Service time = ``fixed_part`` + D, with D ~ ``distributed``.

    This is §6.3's model construction: "D of the service time follows a
    certain distribution ... and S̄−D of the service time is fixed".
    """
    if fixed_part < 0:
        raise ValueError(f"fixed_part must be non-negative, got {fixed_part!r}")
    if fixed_part == 0:
        return distributed
    return Shifted(
        distributed, fixed_part, name=name or f"{distributed.name}+fixed"
    )


@dataclass(frozen=True)
class QueueingSystem:
    """A Q×U system: ``num_queues`` FIFOs × ``servers_per_queue`` units.

    Parameters
    ----------
    num_queues, servers_per_queue:
        The Q and U of the paper's Model Q×U notation.
    service:
        Service-time distribution (any time unit).
    seed:
        Experiment seed; identical seeds reproduce identical runs and
        share random draws across configurations (common random
        numbers), which sharpens A/B comparisons like Fig. 2a.
    """

    num_queues: int
    servers_per_queue: int
    service: Distribution
    seed: int = 0
    #: When True, :meth:`run` also captures per-queue length telemetry
    #: (arrival-sampled depth histograms + a step time series per FIFO)
    #: in ``point.extra["telemetry"]``; see :mod:`repro.telemetry`.
    telemetry: bool = False
    #: Cap on retained time-series events per queue (the histograms are
    #: always complete; only the step series is decimated).
    telemetry_series_points: int = 512

    def __post_init__(self) -> None:
        if self.num_queues <= 0 or self.servers_per_queue <= 0:
            raise ValueError(
                f"need positive Q and U, got {self.num_queues}x{self.servers_per_queue}"
            )

    @property
    def total_servers(self) -> int:
        """Q·U — the total number of serving units (16 in the paper)."""
        return self.num_queues * self.servers_per_queue

    @property
    def label(self) -> str:
        return f"{self.num_queues}x{self.servers_per_queue}"

    def run(
        self,
        load: float,
        num_requests: int = 200_000,
        warmup_fraction: float = 0.1,
    ) -> SweepPoint:
        """Simulate at utilization ``load`` ∈ (0, 1).

        The system-wide arrival rate is ``load * total_servers /
        E[service]``; each request is sprayed to a uniformly random
        FIFO. Latencies are sojourn times in multiples of the mean
        service time S̄ (matching Fig. 2's y-axis).
        """
        if not 0 < load:
            raise ValueError(f"load must be positive, got {load!r}")
        if num_requests <= 0:
            raise ValueError(f"num_requests must be positive, got {num_requests!r}")
        mean_service = self.service.mean
        if not np.isfinite(mean_service) or mean_service <= 0:
            raise ValueError(f"service distribution has invalid mean {mean_service!r}")

        rngs = RngRegistry(self.seed)
        arrival_rng = rngs.stream("arrivals")
        spray_rng = rngs.stream("spray")
        service_rng = rngs.stream("service")

        rate = load * self.total_servers / mean_service
        arrivals = poisson_arrivals(arrival_rng, rate, num_requests)
        services = self.service.sample_array(service_rng, num_requests)
        queue_ids = spray_rng.integers(0, self.num_queues, size=num_requests)

        all_sojourns = []
        snapshot: Optional[TelemetrySnapshot] = (
            TelemetrySnapshot() if self.telemetry else None
        )
        for queue_id in range(self.num_queues):
            mask = queue_ids == queue_id
            if not mask.any():
                continue
            if snapshot is None:
                all_sojourns.append(
                    sojourn_times(
                        arrivals[mask],
                        services[mask],
                        self.servers_per_queue,
                        warmup_fraction=warmup_fraction,
                        # Arrivals are a cumsum of non-negative gaps and
                        # services come straight from the distributions:
                        # skip fastsim's O(n) input validation on this hot path.
                        validate=False,
                    )
                )
                continue
            # Telemetry path: keep the departure times around so the
            # queue-length telemetry can be derived from them.
            queue_arrivals = arrivals[mask]
            departures = simulate_fifo_queue(
                queue_arrivals,
                services[mask],
                self.servers_per_queue,
                validate=False,
            )
            sojourns = departures - queue_arrivals
            skip = int(sojourns.size * warmup_fraction)
            all_sojourns.append(sojourns[skip:])
            self._record_queue_telemetry(
                snapshot, queue_id, queue_arrivals, departures
            )
        sojourns = (
            np.concatenate(all_sojourns) if all_sojourns else np.empty(0)
        )
        normalized = sojourns / mean_service
        summary = LatencySummary.from_values(normalized)
        extra = {"mean_service": mean_service, "arrival_rate": rate}
        if snapshot is not None:
            extra["telemetry"] = snapshot
        return SweepPoint(
            offered_load=load,
            achieved_throughput=load,
            summary=summary,
            extra=extra,
        )

    def _record_queue_telemetry(
        self,
        snapshot: TelemetrySnapshot,
        queue_id: int,
        arrivals: np.ndarray,
        departures: np.ndarray,
    ) -> None:
        """Capture one FIFO's length telemetry into ``snapshot``.

        Per-queue *and* systemwide arrival-sampled depth histograms
        (both mergeable across workers) plus a decimated number-in-
        system step series per queue.
        """
        depths = queue_depth_at_arrivals(arrivals, departures).astype(float)
        per_queue = Histogram(f"queueing.depth[q{queue_id}]")
        per_queue.record_many(depths)
        snapshot.histograms[per_queue.name] = per_queue
        combined = snapshot.histograms.get("queueing.depth")
        if combined is None:
            combined = snapshot.histograms["queueing.depth"] = Histogram(
                "queueing.depth"
            )
        combined.record_many(depths)
        times, lengths = queue_length_series(arrivals, departures)
        stride = max(1, times.size // self.telemetry_series_points)
        series = TimeSeries(f"queue_len[q{queue_id}]")
        series.times = times[::stride].tolist()
        series.values = lengths[::stride].astype(float).tolist()
        snapshot.series[series.name] = series

    def sweep(
        self,
        loads: Sequence[float],
        num_requests: int = 200_000,
        warmup_fraction: float = 0.1,
        label: Optional[str] = None,
        workers: Optional[int] = None,
        experiment: Optional[str] = None,
        failures: Optional[List[str]] = None,
    ) -> SweepResult:
        """Run :meth:`run` across ``loads`` and collect a curve.

        Load points fan out through :func:`repro.runner.map_points`
        (serial when ``workers <= 1``), each under a deterministic seed
        spawned from ``(experiment, label, load index, seed)`` — the
        curve is bit-identical for every worker count. Failed points
        are dropped and described in ``failures`` when a list is given.
        """
        name = label or self.label
        sorted_loads = sorted(loads)
        seeds = spawn_point_seeds(
            experiment or name, name, self.seed, len(sorted_loads)
        )
        tasks = [
            (self, load, num_requests, warmup_fraction, seed)
            for load, seed in zip(sorted_loads, seeds)
        ]
        outcome = map_points(
            run_queueing_task,
            tasks,
            workers=workers,
            labels=[
                f"{name}[{index}]@{load:g} (seed {seed})"
                for index, (load, seed) in enumerate(zip(sorted_loads, seeds))
            ],
            progress_label=experiment or name,
            # Cold-cache scheduling hint: higher load simulates longer.
            cost_hints=sorted_loads,
        )
        if failures is not None:
            failures.extend(outcome.findings())
        return SweepResult(
            label=name,
            points=[point for point in outcome.results if point is not None],
        )


def run_queueing_task(
    task: Tuple["QueueingSystem", float, int, float, int],
) -> SweepPoint:
    """Execute one (system, load) queueing task under an explicit seed.

    Module-level so it pickles into pool workers; the frozen system is
    rebuilt with the task's seed via :func:`dataclasses.replace`.
    """
    system, load, num_requests, warmup_fraction, seed = task
    return replace(system, seed=seed).run(
        load, num_requests=num_requests, warmup_fraction=warmup_fraction
    )
