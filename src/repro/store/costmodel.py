"""Cost model: skip-list work → simulated nanoseconds.

Maps an operation's :class:`~repro.store.skiplist.OpStats` to a
processing time on the modeled core. The constants are chosen so a
get on a ~1M-key store costs ≈1.25µs (matching Fig. 6c's measured
Masstree mean) and a 100-key scan lands in the paper's 60–120µs band:
pointer chases on a large trie-like store miss the cache frequently, so
the per-hop cost is of DRAM-access magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .skiplist import OpStats

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Per-unit costs (ns) for converting OpStats into processing time."""

    #: Fixed per-request software overhead (request parse, reply build).
    fixed_ns: float = 350.0
    #: Cost per horizontal node traversal (likely LLC/DRAM miss).
    per_node_ns: float = 45.0
    #: Cost per level descent (mostly cache-resident).
    per_level_ns: float = 12.0
    #: Cost per item materialized by a scan (copy + next-pointer chase).
    per_scan_item_ns: float = 900.0
    #: Multiplicative jitter std (models TLB misses, interference).
    jitter_std_fraction: float = 0.12

    def __post_init__(self) -> None:
        for name in ("fixed_ns", "per_node_ns", "per_level_ns", "per_scan_item_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0 <= self.jitter_std_fraction < 1:
            raise ValueError("jitter_std_fraction must be in [0, 1)")

    def base_cost_ns(self, stats: OpStats) -> float:
        """Deterministic cost of the work performed."""
        return (
            self.fixed_ns
            + stats.nodes_traversed * self.per_node_ns
            + stats.levels_descended * self.per_level_ns
            + stats.items_scanned * self.per_scan_item_ns
        )

    def cost_ns(self, stats: OpStats, rng: np.random.Generator) -> float:
        """Jittered cost (truncated at 10% of the base, never negative)."""
        base = self.base_cost_ns(stats)
        if self.jitter_std_fraction == 0:
            return base
        jittered = base * rng.normal(1.0, self.jitter_std_fraction)
        return max(jittered, 0.1 * base)
