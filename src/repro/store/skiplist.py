"""A real skip-list ordered map.

§3.2 of the paper motivates NI-driven balancing with "a data serving
tier such as Redis, maintaining a sorted array in memory. Since the
implementation of its sorted list container uses a skip list...". This
module implements that container for the execution-driven Masstree-like
workload: operations return both the result and the *work performed*
(nodes traversed, levels descended), which a cost model converts into
simulated processing time.

The implementation is a textbook randomized skip list with geometric
level promotion (p = 1/2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["SkipList", "OpStats"]

_MAX_LEVEL = 32
_P_NUMERATOR = 1  # promotion probability 1/2
_P_DENOMINATOR = 2


@dataclass(frozen=True)
class OpStats:
    """Work performed by one skip-list operation."""

    #: Horizontal node-to-node moves during the search.
    nodes_traversed: int
    #: Vertical level descents during the search.
    levels_descended: int
    #: Items touched by a scan (0 for point ops).
    items_scanned: int = 0

    @property
    def total_hops(self) -> int:
        return self.nodes_traversed + self.levels_descended + self.items_scanned


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """Ordered map with O(log n) expected point ops and ordered scans."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        value, _stats = self.get(key)
        return value is not None or self._has_key(key)

    def _has_key(self, key: Any) -> bool:
        node, _stats = self._find(key)
        return node is not None and node.key == key

    @property
    def level(self) -> int:
        """Current number of active levels."""
        return self._level

    def _random_level(self) -> int:
        level = 1
        while (
            level < _MAX_LEVEL
            and self._rng.integers(0, _P_DENOMINATOR) < _P_NUMERATOR
        ):
            level += 1
        return level

    def _find(self, key: Any) -> Tuple[Optional[_Node], OpStats]:
        """Locate the node with ``key`` (or None), counting work."""
        node = self._head
        nodes_traversed = 0
        levels_descended = 0
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
                nodes_traversed += 1
            levels_descended += 1
        candidate = node.forward[0]
        stats = OpStats(nodes_traversed, levels_descended)
        if candidate is not None and candidate.key == key:
            return candidate, stats
        return None, stats

    # -- public operations -------------------------------------------------------

    def get(self, key: Any) -> Tuple[Optional[Any], OpStats]:
        """Return ``(value, stats)``; value is None when absent."""
        node, stats = self._find(key)
        return (node.value if node is not None else None), stats

    def put(self, key: Any, value: Any) -> OpStats:
        """Insert or update ``key``."""
        update: List[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        nodes_traversed = 0
        levels_descended = 0
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
                nodes_traversed += 1
            update[level] = node
            levels_descended += 1
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return OpStats(nodes_traversed, levels_descended)
        new_level = self._random_level()
        if new_level > self._level:
            self._level = new_level
        new_node = _Node(key, value, new_level)
        for level in range(new_level):
            new_node.forward[level] = update[level].forward[level]
            update[level].forward[level] = new_node
        self._size += 1
        return OpStats(nodes_traversed, levels_descended)

    def delete(self, key: Any) -> Tuple[bool, OpStats]:
        """Remove ``key``; returns (removed?, stats)."""
        update: List[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        nodes_traversed = 0
        levels_descended = 0
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
                nodes_traversed += 1
            update[level] = node
            levels_descended += 1
        target = node.forward[0]
        stats = OpStats(nodes_traversed, levels_descended)
        if target is None or target.key != key:
            return False, stats
        for level in range(len(target.forward)):
            if update[level].forward[level] is target:
                update[level].forward[level] = target.forward[level]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True, stats

    def scan(self, start_key: Any, count: int) -> Tuple[List[Tuple[Any, Any]], OpStats]:
        """Return up to ``count`` items with key >= start_key, in order."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count!r}")
        node = self._head
        nodes_traversed = 0
        levels_descended = 0
        for level in range(self._level - 1, -1, -1):
            while (
                node.forward[level] is not None
                and node.forward[level].key < start_key
            ):
                node = node.forward[level]
                nodes_traversed += 1
            levels_descended += 1
        items: List[Tuple[Any, Any]] = []
        cursor = node.forward[0]
        while cursor is not None and len(items) < count:
            items.append((cursor.key, cursor.value))
            cursor = cursor.forward[0]
        stats = OpStats(nodes_traversed, levels_descended, items_scanned=len(items))
        return items, stats

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All items in key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key
