"""A chained hash table with work accounting — HERD's index structure.

HERD [Kalia et al.] serves GET/PUT against a hash-indexed key-value
store. For execution-driven HERD simulation (the counterpart of the
skip-list-backed Masstree mode), this module provides a real chained
hash table whose operations report the work performed (buckets probed,
chain links walked), convertible to simulated time through the same
:class:`repro.store.costmodel.CostModel` machinery.

The table intentionally does **not** auto-resize by default: HERD-style
stores provision their index for a known dataset, and a fixed bucket
count keeps chain lengths (and thus the service-time distribution)
stationary during an experiment. ``resize()`` is available for explicit
use.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from .costmodel import CostModel
from .skiplist import OpStats

__all__ = ["HashTable", "TimedHashKV"]


class HashTable:
    """Separate-chaining hash table with per-op work statistics."""

    def __init__(self, num_buckets: int = 1024) -> None:
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets!r}")
        self._buckets: List[List[Tuple[Any, Any]]] = [
            [] for _ in range(num_buckets)
        ]
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    @property
    def load_factor(self) -> float:
        return self._size / len(self._buckets)

    def _bucket_of(self, key: Any) -> int:
        return hash(key) % len(self._buckets)

    def get(self, key: Any) -> Tuple[Optional[Any], OpStats]:
        """Return ``(value, stats)``; value None when absent.

        ``nodes_traversed`` counts chain links walked;
        ``levels_descended`` is 1 (the bucket-array probe).
        """
        bucket = self._buckets[self._bucket_of(key)]
        for position, (stored_key, value) in enumerate(bucket):
            if stored_key == key:
                return value, OpStats(position + 1, 1)
        return None, OpStats(len(bucket), 1)

    def put(self, key: Any, value: Any) -> OpStats:
        bucket = self._buckets[self._bucket_of(key)]
        for position, (stored_key, _value) in enumerate(bucket):
            if stored_key == key:
                bucket[position] = (key, value)
                return OpStats(position + 1, 1)
        bucket.append((key, value))
        self._size += 1
        return OpStats(len(bucket), 1)

    def delete(self, key: Any) -> Tuple[bool, OpStats]:
        bucket = self._buckets[self._bucket_of(key)]
        for position, (stored_key, _value) in enumerate(bucket):
            if stored_key == key:
                del bucket[position]
                self._size -= 1
                return True, OpStats(position + 1, 1)
        return False, OpStats(len(bucket), 1)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for bucket in self._buckets:
            yield from bucket

    def resize(self, num_buckets: int) -> None:
        """Rebuild with a new bucket count (explicit, never automatic)."""
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets!r}")
        entries = list(self.items())
        self._buckets = [[] for _ in range(num_buckets)]
        self._size = 0
        for key, value in entries:
            self.put(key, value)


class TimedHashKV:
    """HashTable + CostModel: execution-driven HERD service times.

    Plugs into :class:`repro.workloads.HerdWorkload` via the same
    interface shape as :class:`repro.store.TimedKVStore`: ``timed_get``
    / ``timed_put`` return simulated nanoseconds for real operations.

    The default cost model lands the mean get on a ~4x-loaded table at
    ≈330ns — the paper's measured HERD mean.
    """

    def __init__(
        self,
        num_keys: int,
        buckets_per_key: float = 0.25,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
    ) -> None:
        if num_keys <= 0:
            raise ValueError(f"num_keys must be positive, got {num_keys!r}")
        if buckets_per_key <= 0:
            raise ValueError(f"buckets_per_key must be positive, got {buckets_per_key!r}")
        self.num_keys = num_keys
        self.table = HashTable(max(1, int(num_keys * buckets_per_key)))
        self.cost_model = (
            cost_model
            if cost_model is not None
            else CostModel(
                fixed_ns=180.0,
                per_node_ns=35.0,  # chain link: dependent pointer chase
                per_level_ns=60.0,  # bucket probe: likely DRAM miss
                per_scan_item_ns=0.0,
                jitter_std_fraction=0.12,
            )
        )
        for key in range(num_keys):
            self.table.put(key, f"value-{key}")
        self._expected_get_ns = self._measure_mean_get()

    def _measure_mean_get(self, samples: int = 512) -> float:
        rng = np.random.default_rng(999)
        total = 0.0
        for _ in range(samples):
            key = int(rng.integers(0, self.num_keys))
            _value, stats = self.table.get(key)
            total += self.cost_model.base_cost_ns(stats)
        return total / samples

    @property
    def expected_get_ns(self) -> float:
        return self._expected_get_ns

    def timed_get(self, rng: np.random.Generator) -> float:
        key = int(rng.integers(0, self.num_keys))
        value, stats = self.table.get(key)
        if value is None:
            raise RuntimeError(f"preloaded key {key} missing")
        return self.cost_model.cost_ns(stats, rng)

    def timed_put(self, rng: np.random.Generator) -> float:
        key = int(rng.integers(0, self.num_keys))
        stats = self.table.put(key, "updated")
        return self.cost_model.cost_ns(stats, rng)
