"""Execution-driven stores: skip list (Masstree-like), hash table (HERD)."""

from .costmodel import CostModel
from .hashtable import HashTable, TimedHashKV
from .kvstore import KVStore, TimedKVStore
from .skiplist import OpStats, SkipList

__all__ = [
    "SkipList",
    "OpStats",
    "KVStore",
    "TimedKVStore",
    "HashTable",
    "TimedHashKV",
    "CostModel",
]
