"""An execution-driven key-value service over the skip list.

:class:`TimedKVStore` is the object the Masstree workload plugs in for
execution-driven mode: every sampled request actually runs against the
skip list, and its processing time is derived from the measured work
through the cost model. The service layer (:class:`KVStore`) is also
usable directly by examples as a plain ordered KV store.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from .costmodel import CostModel
from .skiplist import OpStats, SkipList

__all__ = ["KVStore", "TimedKVStore"]


class KVStore:
    """Ordered KV service: get/put/delete/scan with work accounting."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._list = SkipList(rng=rng)
        #: Cumulative work counters (observability).
        self.ops = 0
        self.total_hops = 0

    def __len__(self) -> int:
        return len(self._list)

    def _account(self, stats: OpStats) -> OpStats:
        self.ops += 1
        self.total_hops += stats.total_hops
        return stats

    def get(self, key: Any) -> Tuple[Optional[Any], OpStats]:
        value, stats = self._list.get(key)
        return value, self._account(stats)

    def put(self, key: Any, value: Any) -> OpStats:
        return self._account(self._list.put(key, value))

    def delete(self, key: Any) -> Tuple[bool, OpStats]:
        removed, stats = self._list.delete(key)
        return removed, self._account(stats)

    def scan(self, start_key: Any, count: int) -> Tuple[List[Tuple[Any, Any]], OpStats]:
        items, stats = self._list.scan(start_key, count)
        return items, self._account(stats)


class TimedKVStore:
    """KVStore + CostModel: requests return simulated processing times.

    Satisfies the interface :class:`repro.workloads.MasstreeWorkload`
    expects for execution-driven mode (``timed_get`` / ``timed_scan`` /
    ``expected_get_ns`` / ``expected_scan_ns``).
    """

    def __init__(
        self,
        num_keys: int,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
    ) -> None:
        if num_keys <= 0:
            raise ValueError(f"num_keys must be positive, got {num_keys!r}")
        self._rng = np.random.default_rng(seed)
        self.store = KVStore(rng=self._rng)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.num_keys = num_keys
        for key in range(num_keys):
            self.store.put(key, f"value-{key}")
        # Calibrate expectations empirically on this store instance.
        self._expected_get_ns = self._measure_mean_get()

    def _measure_mean_get(self, samples: int = 512) -> float:
        rng = np.random.default_rng(12345)
        total = 0.0
        for _ in range(samples):
            key = int(rng.integers(0, self.num_keys))
            _value, stats = self.store._list.get(key)
            total += self.cost_model.base_cost_ns(stats)
        return total / samples

    # -- the workload-facing interface -------------------------------------------

    def timed_get(self, rng: np.random.Generator) -> float:
        key = int(rng.integers(0, self.num_keys))
        value, stats = self.store.get(key)
        if value is None:
            raise RuntimeError(f"preloaded key {key} missing")
        return self.cost_model.cost_ns(stats, rng)

    def timed_scan(self, count: int, rng: np.random.Generator) -> float:
        start = int(rng.integers(0, self.num_keys))
        _items, stats = self.store.scan(start, count)
        return self.cost_model.cost_ns(stats, rng)

    @property
    def expected_get_ns(self) -> float:
        """Mean get processing time on this store (measured)."""
        return self._expected_get_ns

    def expected_scan_ns(self, count: int) -> float:
        """Approximate mean scan cost: get-like search + items."""
        return (
            self._expected_get_ns
            + count * self.cost_model.per_scan_item_ns
        )
