"""Parallel sweep execution engine with deterministic per-task seeding.

Every figure in the reproduction is a load sweep: dozens of independent
(scheme, load-point) simulations. This module fans those tasks out
across a process pool while guaranteeing that **results are bit-identical
regardless of worker count** — including the serial fallback — so
parallelism is purely a wall-clock optimization, never a source of
noise between runs.

Determinism contract
--------------------
Each task owns a private RNG seed derived with
:class:`numpy.random.SeedSequence` spawning, keyed on
``(experiment, scheme, load index, experiment seed)``:

* the root sequence's entropy is ``(seed, hash(experiment), hash(scheme))``;
* the per-load-point child is ``root.spawn(n)[load_index]``.

SeedSequence spawning guarantees the children are statistically
independent and collision-free across keys (tested in
``tests/test_runner.py``), and the derivation depends only on the key —
not on scheduling order, worker count, or which process runs the task.

Worker-count control
--------------------
``map_points(..., workers=N)`` runs serially when ``N <= 1`` (the
default — keeps pdb/profilers usable in tests) and on a
``ProcessPoolExecutor`` otherwise. When ``workers`` is ``None`` the
``REPRO_WORKERS`` environment variable decides; the experiments CLI
exposes ``--workers``.

Live progress
-------------
With progress enabled (``--progress`` on the CLI, the
``REPRO_PROGRESS=1`` environment variable, or
``map_points(..., progress=True)``), each completed task emits a
stderr status line with the done/total count, the task's label, and an
ETA extrapolated from the completed tasks' mean wall-clock. Progress is
reporting only — results and their order are unaffected.

Graceful degradation
--------------------
A task that raises inside a worker is retried once serially; if the
retry also fails, the task's slot is ``None`` and the failure is
reported through :meth:`MapOutcome.findings` (figure drivers surface
these in ``ExperimentResult.findings``) instead of killing the sweep.
Failure records identify the exact task (index plus the caller's label
— figure sweeps label tasks ``scheme[load_index]@load (seed N)``) and
the exception from each attempt.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, TextIO

import numpy as np

__all__ = [
    "ENV_WORKERS",
    "ENV_PROGRESS",
    "MapOutcome",
    "ProgressReporter",
    "TaskFailure",
    "map_points",
    "progress_enabled",
    "resolve_workers",
    "set_progress",
    "spawn_point_seeds",
    "task_seed",
]

#: Environment variable consulted when ``workers`` is not given.
ENV_WORKERS = "REPRO_WORKERS"

#: Environment variable enabling live progress lines ("1"/"true"/"yes").
ENV_PROGRESS = "REPRO_PROGRESS"

#: Process-wide progress override (set by the CLI's ``--progress``);
#: ``None`` defers to :data:`ENV_PROGRESS`.
_PROGRESS_OVERRIDE: Optional[bool] = None


def set_progress(enabled: Optional[bool]) -> None:
    """Force progress reporting on/off process-wide (None = env decides)."""
    global _PROGRESS_OVERRIDE
    _PROGRESS_OVERRIDE = enabled


def progress_enabled(progress: Optional[bool] = None) -> bool:
    """Effective progress switch: explicit arg, else override, else env."""
    if progress is not None:
        return progress
    if _PROGRESS_OVERRIDE is not None:
        return _PROGRESS_OVERRIDE
    return os.environ.get(ENV_PROGRESS, "").strip().lower() in ("1", "true", "yes")


def _key_hash(key: object) -> int:
    """Stable 64-bit integer from an arbitrary key (seed entropy word)."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_point_seeds(
    experiment: object, scheme: object, seed: int, num_points: int
) -> List[int]:
    """Per-load-point seeds for one (experiment, scheme, seed) sweep.

    The root :class:`numpy.random.SeedSequence` is keyed on the
    experiment id, the scheme label, and the experiment seed; one child
    is spawned per load point. The result depends only on the key, so
    serial and parallel execution (any worker count) see identical
    streams, while distinct (experiment, scheme, load index) tuples
    never share one.
    """
    if num_points < 0:
        raise ValueError(f"num_points must be non-negative, got {num_points!r}")
    root = np.random.SeedSequence(
        entropy=(int(seed), _key_hash(experiment), _key_hash(scheme))
    )
    return [
        int(child.generate_state(1, np.uint64)[0])
        for child in root.spawn(num_points)
    ]


def task_seed(experiment: object, scheme: object, load_index: int, seed: int) -> int:
    """The seed of one (experiment, scheme, load index, seed) task."""
    if load_index < 0:
        raise ValueError(f"load_index must be non-negative, got {load_index!r}")
    return spawn_point_seeds(experiment, scheme, seed, load_index + 1)[load_index]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``REPRO_WORKERS``, else 1.

    Anything ``<= 1`` (or unparsable) means serial execution.
    """
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "")
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    return max(1, int(workers))


@dataclass(frozen=True)
class TaskFailure:
    """One task that raised (possibly twice: in a worker and on retry)."""

    label: str
    error: str
    #: True when a serial retry was attempted after a worker failure.
    retried: bool
    #: True when the retry (or serial first attempt) also failed, so the
    #: task produced no result.
    fatal: bool
    #: Position of the task in the ``map_points`` call (result slot).
    index: int = -1

    def describe(self) -> str:
        where = f"task {self.label}" if self.index < 0 else (
            f"task #{self.index} ({self.label})"
        )
        if not self.fatal:
            return (
                f"{where} failed in a worker ({self.error}); "
                "serial retry succeeded"
            )
        attempt = "after serial retry" if self.retried else "serially"
        return f"{where} failed {attempt}: {self.error}; point dropped"


@dataclass
class MapOutcome:
    """Results of one :func:`map_points` call, in task order.

    ``results[i]`` is ``None`` when task *i* failed both attempts.
    """

    results: List[Any]
    failures: List[TaskFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(failure.fatal for failure in self.failures)

    def findings(self) -> List[str]:
        """Human-readable failure lines for ``ExperimentResult.findings``."""
        return [failure.describe() for failure in self.failures]


class ProgressReporter:
    """Per-task completion lines with an ETA, written to stderr.

    ``elapsed / done * remaining`` is a fine ETA model here because
    sweep tasks are close to equal-cost; the point is a liveness signal
    during multi-minute parallel sweeps, not a scheduler.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.25,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.done = 0
        self._started = time.monotonic()
        self._last_print = float("-inf")

    def task_done(self, task_label: str) -> None:
        """Record one completed task and (rate-limited) print a line."""
        self.done += 1
        now = time.monotonic()
        final = self.done >= self.total
        if not final and now - self._last_print < self.min_interval_s:
            return
        self._last_print = now
        elapsed = now - self._started
        eta = elapsed / self.done * (self.total - self.done)
        percent = 100.0 * self.done / self.total
        print(
            f"[{self.label}] {self.done}/{self.total} ({percent:.0f}%) "
            f"elapsed {elapsed:.1f}s ETA {eta:.1f}s — {task_label}",
            file=self.stream,
            flush=True,
        )


def _task_label(labels: Optional[Sequence[str]], index: int) -> str:
    if labels is not None and index < len(labels):
        return str(labels[index])
    return f"task[{index}]"


def _map_serial(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    labels: Optional[Sequence[str]],
    reporter: Optional[ProgressReporter] = None,
) -> MapOutcome:
    outcome = MapOutcome(results=[None] * len(tasks))
    for index, task in enumerate(tasks):
        try:
            outcome.results[index] = fn(task)
        except Exception as exc:  # noqa: BLE001 - reported, not silenced
            outcome.failures.append(
                TaskFailure(
                    label=_task_label(labels, index),
                    error=f"{type(exc).__name__}: {exc}",
                    retried=False,
                    fatal=True,
                    index=index,
                )
            )
        if reporter is not None:
            reporter.task_done(_task_label(labels, index))
    return outcome


def map_points(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
    progress: Optional[bool] = None,
    progress_label: str = "sweep",
) -> MapOutcome:
    """Run ``fn`` over ``tasks``, serially or on a process pool.

    Parameters
    ----------
    fn:
        A module-level (picklable) callable of one task.
    tasks:
        Picklable task descriptions. Each task must be self-contained —
        in particular it must carry its own RNG seed (see
        :func:`spawn_point_seeds`) so the result does not depend on
        which process runs it.
    workers:
        Worker count; ``None`` consults ``REPRO_WORKERS``. ``<= 1``
        runs serially in-process.
    labels:
        Optional per-task labels used in failure reports and progress
        lines.
    progress:
        Live per-task progress/ETA on stderr; ``None`` consults
        :func:`set_progress` / ``REPRO_PROGRESS``.
    progress_label:
        Prefix of progress lines (the CLI passes the experiment id).

    Returns
    -------
    MapOutcome
        Results in task order (``None`` for tasks that failed twice)
        plus structured failure records.
    """
    tasks = list(tasks)
    count = resolve_workers(workers)
    reporter = (
        ProgressReporter(len(tasks), label=progress_label)
        if progress_enabled(progress) and tasks
        else None
    )
    if count <= 1 or len(tasks) <= 1:
        return _map_serial(fn, tasks, labels, reporter)

    try:
        executor = ProcessPoolExecutor(max_workers=min(count, len(tasks)))
    except (OSError, ValueError):  # no usable multiprocessing: degrade
        return _map_serial(fn, tasks, labels, reporter)

    outcome = MapOutcome(results=[None] * len(tasks))
    with executor:
        index_of = {
            executor.submit(fn, task): index for index, task in enumerate(tasks)
        }
        # Collect in completion order (for live progress), report in
        # task order below — the outcome never depends on scheduling.
        worker_errors: dict = {}
        pending = set(index_of)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                index = index_of[future]
                try:
                    outcome.results[index] = future.result()
                except Exception as exc:  # noqa: BLE001 - worker died or task raised
                    worker_errors[index] = f"{type(exc).__name__}: {exc}"
                if reporter is not None:
                    reporter.task_done(_task_label(labels, index))
    # Graceful degradation: retry failed tasks once, serially, in task
    # order (deterministic findings regardless of completion order).
    for index in sorted(worker_errors):
        label = _task_label(labels, index)
        try:
            outcome.results[index] = fn(tasks[index])
        except Exception as exc:  # noqa: BLE001
            outcome.failures.append(
                TaskFailure(
                    label=label,
                    error=(
                        f"worker: {worker_errors[index]}; "
                        f"retry: {type(exc).__name__}: {exc}"
                    ),
                    retried=True,
                    fatal=True,
                    index=index,
                )
            )
        else:
            outcome.failures.append(
                TaskFailure(
                    label=label,
                    error=worker_errors[index],
                    retried=True,
                    fatal=False,
                    index=index,
                )
            )
    return outcome
