"""Parallel sweep execution engine with deterministic per-task seeding.

Every figure in the reproduction is a load sweep: dozens of independent
(scheme, load-point) simulations. This module fans those tasks out
across a process pool while guaranteeing that **results are bit-identical
regardless of worker count** — including the serial fallback — so
parallelism is purely a wall-clock optimization, never a source of
noise between runs.

Determinism contract
--------------------
Each task owns a private RNG seed derived with
:class:`numpy.random.SeedSequence` spawning, keyed on
``(experiment, scheme, load index, experiment seed)``:

* the root sequence's entropy is ``(seed, hash(experiment), hash(scheme))``;
* the per-load-point child is ``root.spawn(n)[load_index]``.

SeedSequence spawning guarantees the children are statistically
independent and collision-free across keys (tested in
``tests/test_runner.py``), and the derivation depends only on the key —
not on scheduling order, worker count, or which process runs the task.

Worker-count control
--------------------
``map_points(..., workers=N)`` runs serially when ``N <= 1`` (the
default — keeps pdb/profilers usable in tests) and on a
``ProcessPoolExecutor`` otherwise. When ``workers`` is ``None`` the
``REPRO_WORKERS`` environment variable decides; the experiments CLI
exposes ``--workers``.

Graceful degradation
--------------------
A task that raises inside a worker is retried once serially; if the
retry also fails, the task's slot is ``None`` and the failure is
reported through :meth:`MapOutcome.findings` (figure drivers surface
these in ``ExperimentResult.findings``) instead of killing the sweep.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

__all__ = [
    "ENV_WORKERS",
    "MapOutcome",
    "TaskFailure",
    "map_points",
    "resolve_workers",
    "spawn_point_seeds",
    "task_seed",
]

#: Environment variable consulted when ``workers`` is not given.
ENV_WORKERS = "REPRO_WORKERS"


def _key_hash(key: object) -> int:
    """Stable 64-bit integer from an arbitrary key (seed entropy word)."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_point_seeds(
    experiment: object, scheme: object, seed: int, num_points: int
) -> List[int]:
    """Per-load-point seeds for one (experiment, scheme, seed) sweep.

    The root :class:`numpy.random.SeedSequence` is keyed on the
    experiment id, the scheme label, and the experiment seed; one child
    is spawned per load point. The result depends only on the key, so
    serial and parallel execution (any worker count) see identical
    streams, while distinct (experiment, scheme, load index) tuples
    never share one.
    """
    if num_points < 0:
        raise ValueError(f"num_points must be non-negative, got {num_points!r}")
    root = np.random.SeedSequence(
        entropy=(int(seed), _key_hash(experiment), _key_hash(scheme))
    )
    return [
        int(child.generate_state(1, np.uint64)[0])
        for child in root.spawn(num_points)
    ]


def task_seed(experiment: object, scheme: object, load_index: int, seed: int) -> int:
    """The seed of one (experiment, scheme, load index, seed) task."""
    if load_index < 0:
        raise ValueError(f"load_index must be non-negative, got {load_index!r}")
    return spawn_point_seeds(experiment, scheme, seed, load_index + 1)[load_index]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``REPRO_WORKERS``, else 1.

    Anything ``<= 1`` (or unparsable) means serial execution.
    """
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "")
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    return max(1, int(workers))


@dataclass(frozen=True)
class TaskFailure:
    """One task that raised (possibly twice: in a worker and on retry)."""

    label: str
    error: str
    #: True when a serial retry was attempted after a worker failure.
    retried: bool
    #: True when the retry (or serial first attempt) also failed, so the
    #: task produced no result.
    fatal: bool

    def describe(self) -> str:
        if not self.fatal:
            return (
                f"task {self.label} failed in a worker ({self.error}); "
                "serial retry succeeded"
            )
        attempt = "after serial retry" if self.retried else "serially"
        return f"task {self.label} failed {attempt}: {self.error}; point dropped"


@dataclass
class MapOutcome:
    """Results of one :func:`map_points` call, in task order.

    ``results[i]`` is ``None`` when task *i* failed both attempts.
    """

    results: List[Any]
    failures: List[TaskFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(failure.fatal for failure in self.failures)

    def findings(self) -> List[str]:
        """Human-readable failure lines for ``ExperimentResult.findings``."""
        return [failure.describe() for failure in self.failures]


def _task_label(labels: Optional[Sequence[str]], index: int) -> str:
    if labels is not None and index < len(labels):
        return str(labels[index])
    return f"task[{index}]"


def _map_serial(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    labels: Optional[Sequence[str]],
) -> MapOutcome:
    outcome = MapOutcome(results=[None] * len(tasks))
    for index, task in enumerate(tasks):
        try:
            outcome.results[index] = fn(task)
        except Exception as exc:  # noqa: BLE001 - reported, not silenced
            outcome.failures.append(
                TaskFailure(
                    label=_task_label(labels, index),
                    error=f"{type(exc).__name__}: {exc}",
                    retried=False,
                    fatal=True,
                )
            )
    return outcome


def map_points(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
) -> MapOutcome:
    """Run ``fn`` over ``tasks``, serially or on a process pool.

    Parameters
    ----------
    fn:
        A module-level (picklable) callable of one task.
    tasks:
        Picklable task descriptions. Each task must be self-contained —
        in particular it must carry its own RNG seed (see
        :func:`spawn_point_seeds`) so the result does not depend on
        which process runs it.
    workers:
        Worker count; ``None`` consults ``REPRO_WORKERS``. ``<= 1``
        runs serially in-process.
    labels:
        Optional per-task labels used in failure reports.

    Returns
    -------
    MapOutcome
        Results in task order (``None`` for tasks that failed twice)
        plus structured failure records.
    """
    tasks = list(tasks)
    count = resolve_workers(workers)
    if count <= 1 or len(tasks) <= 1:
        return _map_serial(fn, tasks, labels)

    try:
        executor = ProcessPoolExecutor(max_workers=min(count, len(tasks)))
    except (OSError, ValueError):  # no usable multiprocessing: degrade
        return _map_serial(fn, tasks, labels)

    outcome = MapOutcome(results=[None] * len(tasks))
    with executor:
        futures = [executor.submit(fn, task) for task in tasks]
        for index, future in enumerate(futures):
            try:
                outcome.results[index] = future.result()
                continue
            except Exception as exc:  # noqa: BLE001 - worker died or task raised
                worker_error = f"{type(exc).__name__}: {exc}"
            # Graceful degradation: retry the failed task once, serially.
            try:
                outcome.results[index] = fn(tasks[index])
            except Exception as exc:  # noqa: BLE001
                outcome.failures.append(
                    TaskFailure(
                        label=_task_label(labels, index),
                        error=f"{type(exc).__name__}: {exc}",
                        retried=True,
                        fatal=True,
                    )
                )
            else:
                outcome.failures.append(
                    TaskFailure(
                        label=_task_label(labels, index),
                        error=worker_error,
                        retried=True,
                        fatal=False,
                    )
                )
    return outcome
