"""Parallel sweep execution engine with deterministic per-task seeding.

Every figure in the reproduction is a load sweep: dozens of independent
(scheme, load-point) simulations. This module fans those tasks out
across a process pool while guaranteeing that **results are bit-identical
regardless of worker count** — including the serial fallback — so
parallelism is purely a wall-clock optimization, never a source of
noise between runs.

Determinism contract
--------------------
Each task owns a private RNG seed derived with
:class:`numpy.random.SeedSequence` spawning, keyed on
``(experiment, scheme, load index, experiment seed)``:

* the root sequence's entropy is ``(seed, hash(experiment), hash(scheme))``;
* the per-load-point child is ``root.spawn(n)[load_index]``.

SeedSequence spawning guarantees the children are statistically
independent and collision-free across keys (tested in
``tests/test_runner.py``), and the derivation depends only on the key —
not on scheduling order, worker count, or which process runs the task.

Worker-count control
--------------------
``map_points(..., workers=N)`` runs serially when ``N <= 1`` (the
default — keeps pdb/profilers usable in tests) and on a
``ProcessPoolExecutor`` otherwise. When ``workers`` is ``None`` the
``REPRO_WORKERS`` environment variable decides; the experiments CLI
exposes ``--workers``.

Result caching
--------------
Because each task is a pure function of its config and seed, results
are content-addressable. With caching enabled (``--cache`` on the CLI,
``REPRO_CACHE``, or ``map_points(..., cache=True)``), every task is
looked up in the on-disk store of :mod:`repro.cache` first; hits are
returned instantly and only misses are dispatched. The merged outcome
is bit-identical to an uncached run at any worker count — a cached
value is the pickled result of the exact same deterministic
computation. See :mod:`repro.cache` for the key derivation and
invalidation story.

Makespan-aware scheduling
-------------------------
Pool submission order is the only scheduling freedom a deterministic
sweep has, and it matters: a long task landing last serializes the tail
of the sweep behind one worker (the classic straggler effect). Misses
are therefore submitted longest-expected-first, using per-label
wall-clock EWMAs recorded into the cache on every run; on a cold start
the order falls back to the caller's ``cost_hints`` (figure drivers
pass the offered load — higher load simulates longer) and finally to
descending task index, which approximates descending load index for
sweeps built low-to-high. Results are keyed by task index, so ordering
never changes the outcome, only the makespan.

Live progress
-------------
With progress enabled (``--progress`` on the CLI, the
``REPRO_PROGRESS=1`` environment variable, or
``map_points(..., progress=True)``), each completed task emits a
stderr status line with the done/total count, the task's label, an ETA
extrapolated from the completed tasks' mean wall-clock, cache
hit counts, and straggler stats (slowest task vs mean).

Graceful degradation
--------------------
A task that raises inside a worker is retried once serially; if the
retry also fails, the task's slot is ``None`` and the failure is
reported through :meth:`MapOutcome.findings` (figure drivers surface
these in ``ExperimentResult.findings``) instead of killing the sweep.
Failure records identify the exact task (index plus the caller's label
— figure sweeps label tasks ``scheme[load_index]@load (seed N)``) and
the exception from each attempt.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, TextIO, Union

import numpy as np

__all__ = [
    "ENV_WORKERS",
    "ENV_PROGRESS",
    "MapOutcome",
    "ProgressReporter",
    "TaskFailure",
    "map_points",
    "progress_enabled",
    "resolve_workers",
    "schedule_order",
    "set_progress",
    "spawn_point_seeds",
    "task_seed",
]

#: Environment variable consulted when ``workers`` is not given.
ENV_WORKERS = "REPRO_WORKERS"

#: Environment variable enabling live progress lines ("1"/"true"/"yes").
ENV_PROGRESS = "REPRO_PROGRESS"

#: Process-wide progress override (set by the CLI's ``--progress``);
#: ``None`` defers to :data:`ENV_PROGRESS`.
_PROGRESS_OVERRIDE: Optional[bool] = None


def set_progress(enabled: Optional[bool]) -> None:
    """Force progress reporting on/off process-wide (None = env decides)."""
    global _PROGRESS_OVERRIDE
    _PROGRESS_OVERRIDE = enabled


def progress_enabled(progress: Optional[bool] = None) -> bool:
    """Effective progress switch: explicit arg, else override, else env."""
    if progress is not None:
        return progress
    if _PROGRESS_OVERRIDE is not None:
        return _PROGRESS_OVERRIDE
    return os.environ.get(ENV_PROGRESS, "").strip().lower() in ("1", "true", "yes")


def _key_hash(key: object) -> int:
    """Stable 64-bit integer from an arbitrary key (seed entropy word)."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_point_seeds(
    experiment: object, scheme: object, seed: int, num_points: int
) -> List[int]:
    """Per-load-point seeds for one (experiment, scheme, seed) sweep.

    The root :class:`numpy.random.SeedSequence` is keyed on the
    experiment id, the scheme label, and the experiment seed; one child
    is spawned per load point. The result depends only on the key, so
    serial and parallel execution (any worker count) see identical
    streams, while distinct (experiment, scheme, load index) tuples
    never share one.
    """
    if num_points < 0:
        raise ValueError(f"num_points must be non-negative, got {num_points!r}")
    root = np.random.SeedSequence(
        entropy=(int(seed), _key_hash(experiment), _key_hash(scheme))
    )
    return [
        int(child.generate_state(1, np.uint64)[0])
        for child in root.spawn(num_points)
    ]


def task_seed(experiment: object, scheme: object, load_index: int, seed: int) -> int:
    """The seed of one (experiment, scheme, load index, seed) task."""
    if load_index < 0:
        raise ValueError(f"load_index must be non-negative, got {load_index!r}")
    return spawn_point_seeds(experiment, scheme, seed, load_index + 1)[load_index]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``REPRO_WORKERS``, else 1.

    Anything ``<= 1`` (or unparsable) means serial execution.
    """
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "")
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    return max(1, int(workers))


@dataclass(frozen=True)
class TaskFailure:
    """One task that raised (possibly twice: in a worker and on retry)."""

    label: str
    error: str
    #: True when a serial retry was attempted after a worker failure.
    retried: bool
    #: True when the retry (or serial first attempt) also failed, so the
    #: task produced no result.
    fatal: bool
    #: Position of the task in the ``map_points`` call (result slot).
    index: int = -1

    def describe(self) -> str:
        where = f"task {self.label}" if self.index < 0 else (
            f"task #{self.index} ({self.label})"
        )
        if not self.fatal:
            return (
                f"{where} failed in a worker ({self.error}); "
                "serial retry succeeded"
            )
        attempt = "after serial retry" if self.retried else "serially"
        return f"{where} failed {attempt}: {self.error}; point dropped"


@dataclass
class MapOutcome:
    """Results of one :func:`map_points` call, in task order.

    ``results[i]`` is ``None`` when task *i* failed both attempts.
    """

    results: List[Any]
    failures: List[TaskFailure] = field(default_factory=list)
    #: Tasks answered from the result cache / dispatched for compute.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-task wall-clock seconds (0.0 for cache hits, None for
    #: failures); absent when the call predates timing.
    task_wall_s: Optional[List[Optional[float]]] = None

    @property
    def ok(self) -> bool:
        return not any(failure.fatal for failure in self.failures)

    def findings(self) -> List[str]:
        """Human-readable failure lines for ``ExperimentResult.findings``."""
        return [failure.describe() for failure in self.failures]


class ProgressReporter:
    """Per-task completion lines with ETA, cache, and straggler stats.

    ``elapsed / done * remaining`` is a fine ETA model here because
    sweep tasks are close to equal-cost; the point is a liveness signal
    during multi-minute parallel sweeps, not a scheduler. Once measured
    per-task wall-clocks exist, each line also reports the slowest
    task's cost relative to the mean — the straggler ratio that the
    longest-expected-first submission order exists to hide.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.25,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.done = 0
        self.cached = 0
        self._walls: List[float] = []
        self._started = time.monotonic()
        self._last_print = float("-inf")

    def straggler_stats(self) -> Optional[str]:
        """``slowest Xs = Y.Yx mean`` over the measured tasks, if any."""
        if len(self._walls) < 2:
            return None
        slowest = max(self._walls)
        mean = sum(self._walls) / len(self._walls)
        if mean <= 0:
            # Every measured task took ~0s (e.g. trivial smoke tasks);
            # a ratio would be inf/NaN noise, so say nothing.
            return None
        return f"slowest {slowest:.1f}s = {slowest / mean:.1f}x mean"

    def eta_s(self, elapsed: float) -> Optional[float]:
        """Seconds remaining, or ``None`` when there is no evidence yet.

        Extrapolates from the mean wall-clock of *computed* tasks only:
        cache hits complete in ~0s and must not drag the rate estimate
        to infinity (the all-hits sweep would otherwise print a
        division-by-zero ETA, and a first task finishing in ~0s would
        predict 0s for an hour of remaining work). The rate denominator
        is clamped so a pathological ~0 elapsed stays finite.
        """
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        computed = self.done - self.cached
        if computed <= 0:
            # Only cache hits so far: no compute-rate evidence. If the
            # remaining tasks also hit they finish in ~0s; if not, any
            # extrapolation would be fiction. Report "unknown".
            return None
        rate = computed / max(elapsed, 1e-9)
        return remaining / rate

    def task_done(
        self,
        task_label: str,
        wall_s: Optional[float] = None,
        cached: bool = False,
    ) -> None:
        """Record one completed task and (rate-limited) print a line."""
        self.done += 1
        if cached:
            self.cached += 1
        elif wall_s is not None:
            self._walls.append(wall_s)
        now = time.monotonic()
        final = self.done >= self.total
        if not final and now - self._last_print < self.min_interval_s:
            return
        self._last_print = now
        elapsed = now - self._started
        eta = self.eta_s(elapsed)
        eta_text = "--" if eta is None else f"{eta:.1f}s"
        percent = 100.0 * self.done / self.total
        extras = []
        if self.cached:
            extras.append(f"cache {self.cached}/{self.done}")
        stragglers = self.straggler_stats()
        if stragglers:
            extras.append(stragglers)
        suffix = f" [{'; '.join(extras)}]" if extras else ""
        print(
            f"[{self.label}] {self.done}/{self.total} ({percent:.0f}%) "
            f"elapsed {elapsed:.1f}s ETA {eta_text}{suffix} — {task_label}",
            file=self.stream,
            flush=True,
        )


def _task_label(labels: Optional[Sequence[str]], index: int) -> str:
    if labels is not None and index < len(labels):
        return str(labels[index])
    return f"task[{index}]"


def schedule_order(
    indices: Sequence[int],
    fn: Optional[Callable[[Any], Any]] = None,
    labels: Optional[Sequence[str]] = None,
    store=None,
    cost_hints: Optional[Sequence[float]] = None,
) -> List[int]:
    """Submission order for pool tasks: longest-expected-first.

    Expected cost per task, best evidence first:

    1. the cache's per-label wall-clock EWMA from previous runs;
    2. the caller's ``cost_hints`` (figure drivers pass the offered
       load — simulation cost grows with load);
    3. descending task index (sweeps are built in ascending-load order,
       so the highest load indices run longest).

    The tiers sort as (evidence, value) tuples, so measured tasks lead,
    hinted tasks follow, and unknown tasks trail — within each tier,
    most-expensive first. Results are slotted by task index, so this
    reorders *execution* only; outcomes are unchanged.
    """
    def rank(index: int):
        if store is not None and labels is not None and index < len(labels):
            estimate = store.expected_duration(
                store.duration_key(fn, labels[index])
            )
            if estimate is not None:
                return (2, estimate)
        if cost_hints is not None and index < len(cost_hints):
            return (1, float(cost_hints[index]))
        return (0, float(index))

    return sorted(indices, key=rank, reverse=True)


def _call_timed(fn: Callable[[Any], Any], task: Any):
    """Run one task under a wall-clock timer (module-level: pool-picklable)."""
    started = time.perf_counter()
    result = fn(task)
    return result, time.perf_counter() - started


def _record(store, fn, keys, labels, index, result, wall_s) -> None:
    """Persist one computed result + its wall-clock into the cache."""
    if store is None:
        return
    key = keys[index]
    if key is not None:
        store.store(key, result, wall_s)
    store.record_duration(
        store.duration_key(fn, _task_label(labels, index)), wall_s
    )


def _map_serial(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    indices: Sequence[int],
    labels: Optional[Sequence[str]],
    outcome: MapOutcome,
    reporter: Optional[ProgressReporter] = None,
    store=None,
    keys: Optional[List[Optional[str]]] = None,
) -> MapOutcome:
    for index in indices:
        started = time.perf_counter()
        try:
            result = fn(tasks[index])
        except Exception as exc:  # noqa: BLE001 - reported, not silenced
            outcome.failures.append(
                TaskFailure(
                    label=_task_label(labels, index),
                    error=f"{type(exc).__name__}: {exc}",
                    retried=False,
                    fatal=True,
                    index=index,
                )
            )
            if reporter is not None:
                reporter.task_done(_task_label(labels, index))
            continue
        wall_s = time.perf_counter() - started
        outcome.results[index] = result
        if outcome.task_wall_s is not None:
            outcome.task_wall_s[index] = wall_s
        _record(store, fn, keys or [], labels, index, result, wall_s)
        if reporter is not None:
            reporter.task_done(_task_label(labels, index), wall_s=wall_s)
    return outcome


def map_points(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
    progress: Optional[bool] = None,
    progress_label: str = "sweep",
    cache: Union[None, bool, Any] = None,
    cost_hints: Optional[Sequence[float]] = None,
) -> MapOutcome:
    """Run ``fn`` over ``tasks``, serially or on a process pool.

    Parameters
    ----------
    fn:
        A module-level (picklable) callable of one task.
    tasks:
        Picklable task descriptions. Each task must be self-contained —
        in particular it must carry its own RNG seed (see
        :func:`spawn_point_seeds`) so the result does not depend on
        which process runs it.
    workers:
        Worker count; ``None`` consults ``REPRO_WORKERS``. ``<= 1``
        runs serially in-process.
    labels:
        Optional per-task labels used in failure reports, progress
        lines, and the cache's per-label duration estimates.
    progress:
        Live per-task progress/ETA on stderr; ``None`` consults
        :func:`set_progress` / ``REPRO_PROGRESS``.
    progress_label:
        Prefix of progress lines (the CLI passes the experiment id).
    cache:
        Result caching: ``None`` consults ``repro.cache`` process
        state / ``REPRO_CACHE``; ``True``/``False`` force; a
        :class:`repro.cache.ResultCache` is used directly. Cached
        points return instantly; only misses are computed, and the
        merged outcome is bit-identical to an uncached run.
    cost_hints:
        Optional per-task relative cost estimates (any unit — figure
        drivers pass the offered load) used to submit misses
        longest-expected-first on a cold cache; see
        :func:`schedule_order`.

    Returns
    -------
    MapOutcome
        Results in task order (``None`` for tasks that failed twice)
        plus structured failure records and cache hit/miss counts.
    """
    from .cache import resolve_cache

    tasks = list(tasks)
    total = len(tasks)
    count = resolve_workers(workers)
    store = resolve_cache(cache)
    outcome = MapOutcome(
        results=[None] * total, task_wall_s=[None] * total
    )
    reporter = (
        ProgressReporter(total, label=progress_label)
        if progress_enabled(progress) and tasks
        else None
    )

    keys: List[Optional[str]] = [None] * total
    pending: List[int] = list(range(total))
    if store is not None:
        pending = []
        for index, task in enumerate(tasks):
            key = store.key_for(fn, task)
            keys[index] = key
            if key is not None:
                hit, value, _wall_s = store.lookup(key)
                if hit:
                    outcome.results[index] = value
                    outcome.task_wall_s[index] = 0.0
                    outcome.cache_hits += 1
                    if reporter is not None:
                        reporter.task_done(
                            _task_label(labels, index), wall_s=0.0, cached=True
                        )
                    continue
            pending.append(index)
        outcome.cache_misses = len(pending)
        if not pending:
            return outcome

    if count <= 1 or len(pending) <= 1:
        return _map_serial(
            fn, tasks, pending, labels, outcome, reporter, store, keys
        )

    order = schedule_order(pending, fn, labels, store, cost_hints)
    try:
        executor = ProcessPoolExecutor(max_workers=min(count, len(pending)))
    except (OSError, ValueError):  # no usable multiprocessing: degrade
        return _map_serial(
            fn, tasks, pending, labels, outcome, reporter, store, keys
        )

    with executor:
        index_of = {
            executor.submit(_call_timed, fn, tasks[index]): index
            for index in order
        }
        # Collect in completion order (for live progress), report in
        # task order below — the outcome never depends on scheduling.
        worker_errors: dict = {}
        waiting = set(index_of)
        while waiting:
            finished, waiting = wait(waiting, return_when=FIRST_COMPLETED)
            for future in finished:
                index = index_of[future]
                try:
                    result, wall_s = future.result()
                except Exception as exc:  # noqa: BLE001 - worker died or task raised
                    worker_errors[index] = f"{type(exc).__name__}: {exc}"
                    if reporter is not None:
                        reporter.task_done(_task_label(labels, index))
                    continue
                outcome.results[index] = result
                outcome.task_wall_s[index] = wall_s
                _record(store, fn, keys, labels, index, result, wall_s)
                if reporter is not None:
                    reporter.task_done(
                        _task_label(labels, index), wall_s=wall_s
                    )
    # Graceful degradation: retry failed tasks once, serially, in task
    # order (deterministic findings regardless of completion order).
    for index in sorted(worker_errors):
        label = _task_label(labels, index)
        started = time.perf_counter()
        try:
            result = fn(tasks[index])
        except Exception as exc:  # noqa: BLE001
            outcome.failures.append(
                TaskFailure(
                    label=label,
                    error=(
                        f"worker: {worker_errors[index]}; "
                        f"retry: {type(exc).__name__}: {exc}"
                    ),
                    retried=True,
                    fatal=True,
                    index=index,
                )
            )
        else:
            wall_s = time.perf_counter() - started
            outcome.results[index] = result
            outcome.task_wall_s[index] = wall_s
            _record(store, fn, keys, labels, index, result, wall_s)
            outcome.failures.append(
                TaskFailure(
                    label=label,
                    error=worker_errors[index],
                    retried=True,
                    fatal=False,
                    index=index,
                )
            )
    return outcome
