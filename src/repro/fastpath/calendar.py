"""Calendar queue: a bucketed future-event scheduler.

The generic DES kernel orders *every* event through one ``heapq`` —
O(log n) per operation with n in the tens of thousands during a rack
run, dominated by Timeout/Callback departure traffic whose timestamps
are tightly clustered around "now". A calendar queue [Brown, CACM'88]
exploits that clustering: events hash into fixed-width time buckets
(days), the scheduler walks the current day's bucket and wraps around
the year, and both ``push`` and ``pop`` are O(1) when the bucket width
matches the mean event spacing.

The fast cluster engine (:mod:`repro.fastpath.fastcluster`) uses this
for its departure stream — the traffic that would otherwise be the
dominant Timeout/Callback load on ``sim/engine.py``'s heap. Ordering
is a deterministic total order on ``(time, seq)``: ties fire in
insertion order, exactly like the DES heap's ``(time, priority, eid)``
key, and the tests cross-check it against ``heapq`` on random streams.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, List, Optional, Tuple

__all__ = ["CalendarQueue"]


class CalendarQueue:
    """A bucketed priority queue of ``(time, payload)`` events."""

    __slots__ = ("_width", "_buckets", "_num", "_seq", "_size", "_cursor", "_top")

    def __init__(self, bucket_width: float, num_buckets: int = 256) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width!r}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets!r}")
        self._width = float(bucket_width)
        self._num = num_buckets
        self._buckets: List[List[Tuple[float, int, Any]]] = [
            [] for _ in range(num_buckets)
        ]
        self._seq = 0
        self._size = 0
        #: The bucket the next pop starts scanning from, and the end of
        #: its current day: events at time >= _top belong to a later
        #: year and are skipped until the scan wraps around to them.
        self._cursor = 0
        self._top = self._width

    def __len__(self) -> int:
        return self._size

    def push(self, time: float, payload: Any = None) -> None:
        """Schedule ``payload`` at ``time`` (>= 0)."""
        if time < 0:
            raise ValueError(f"negative event time {time!r}")
        index = int(time / self._width) % self._num
        insort(self._buckets[index], (time, self._seq, payload))
        self._seq += 1
        self._size += 1

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled time, or None when empty (O(1) amortized)."""
        if self._size == 0:
            return None
        cursor, top = self._find_next()
        return self._buckets[cursor][0][0]

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)`` event."""
        if self._size == 0:
            raise IndexError("pop from an empty CalendarQueue")
        self._cursor, self._top = self._find_next()
        time, _seq, payload = self._buckets[self._cursor].pop(0)
        self._size -= 1
        return time, payload

    def _find_next(self) -> Tuple[int, float]:
        """Advance the (cursor, day-top) scan to the next due bucket.

        Walks at most one full year; if no bucket holds an event within
        its current day (the schedule jumped far ahead), jumps directly
        to the year of the globally earliest event.
        """
        cursor = self._cursor
        top = self._top
        width = self._width
        buckets = self._buckets
        num = self._num
        for _ in range(num):
            bucket = buckets[cursor]
            if bucket and bucket[0][0] < top:
                return cursor, top
            cursor = (cursor + 1) % num
            top += width
        # Sparse regime: nothing due this year anywhere. Jump to the
        # earliest event's own day.
        earliest = min(
            (bucket[0][0] for bucket in buckets if bucket),
        )
        day = int(earliest / width)
        return day % num, (day + 1) * width
