"""Engine selection: ``des`` | ``fast`` | ``fluid`` | ``auto``.

One tiny module so every engine-aware driver (``ext-rack``,
``headline``, ``ext-scale``) resolves the knob identically:

* ``des`` — the bit-exact per-RPC ground truth (the default).
* ``fast`` — the vectorized surrogate (per-RPC, calibrated chip).
* ``fluid`` — the mean-field tier (no per-RPC state at all).
* ``auto`` — ``fast`` up to :data:`DEFAULT_FLUID_THRESHOLD` nodes,
  ``fluid`` above, where the mean-field approximation is accurate
  (its error shrinks as 1/K) and per-RPC cost would dominate.

``REPRO_ENGINE`` overrides the programmatic choice, mirroring how
``REPRO_WORKERS`` / ``REPRO_CACHE`` already behave.
"""

from __future__ import annotations

import os

__all__ = [
    "DEFAULT_FLUID_THRESHOLD",
    "ENGINES",
    "resolve_engine",
    "require_des",
]

ENGINES = ("des", "fast", "fluid", "auto")

#: Node count above which ``auto`` switches from ``fast`` to ``fluid``.
DEFAULT_FLUID_THRESHOLD = 128


def resolve_engine(
    engine: str,
    num_nodes: int,
    threshold: int = DEFAULT_FLUID_THRESHOLD,
) -> str:
    """Resolve the ``engine=`` knob to a concrete tier for one run.

    The ``REPRO_ENGINE`` environment variable, when set to a valid
    engine name, wins over the programmatic value (including "auto",
    which is then resolved by node count as usual).
    """
    override = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if override:
        if override not in ENGINES:
            raise ValueError(
                f"REPRO_ENGINE={override!r} is not one of {ENGINES}"
            )
        engine = override
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "auto":
        return "fast" if num_nodes <= threshold else "fluid"
    return engine


def require_des(experiment: str, engine: str, num_nodes: int, reason: str) -> str:
    """Resolve the engine knob for a DES-only experiment.

    Some experiments instrument or depend on the discrete-event hot
    paths themselves (span tracing, per-request arrival processes), so
    the surrogate tiers cannot run them. This gate resolves the knob
    exactly like :func:`resolve_engine` — so ``REPRO_ENGINE`` behaves
    consistently — and raises a uniform, actionable error for any
    non-DES tier.
    """
    resolved = resolve_engine(engine, num_nodes)
    if resolved != "des":
        raise ValueError(
            f"{experiment} requires engine='des' — {reason}, which the "
            f"{resolved!r} tier does not execute (pass --engine des, or "
            "unset REPRO_ENGINE)"
        )
    return resolved
