"""Engine selection: ``des`` | ``fast`` | ``fluid`` | ``auto``.

One tiny module so every engine-aware driver (``ext-rack``,
``headline``, ``ext-scale``, ``ext-diurnal``) resolves the knob
identically:

* ``des`` — the bit-exact per-RPC ground truth (the default).
* ``fast`` — the vectorized surrogate (per-RPC, calibrated chip).
* ``fluid`` — the mean-field tier (no per-RPC state at all).
* ``auto`` — ``fast`` up to :data:`DEFAULT_FLUID_THRESHOLD` nodes,
  ``fluid`` above, where the mean-field approximation is accurate
  (its error shrinks as 1/K) and per-RPC cost would dominate.

Not every tier executes every scenario feature, so resolution is
capability-aware: callers describe what the run needs (shaped arrival
process, fault plan, span tracing, single-chip scheme surrogates) and
:func:`resolve_engine` checks the request against
:data:`ENGINE_CAPABILITIES`. ``auto`` falls back down the fidelity
ladder (``fluid`` -> ``fast`` -> ``des``) until the need is met — it
never silently drops a requested feature — while an *explicitly*
requested tier that lacks a capability raises an actionable error.

``REPRO_ENGINE`` overrides the programmatic choice, mirroring how
``REPRO_WORKERS`` / ``REPRO_CACHE`` already behave.
"""

from __future__ import annotations

import os
from typing import FrozenSet, Mapping, Optional

__all__ = [
    "DEFAULT_FLUID_THRESHOLD",
    "ENGINES",
    "ENGINE_CAPABILITIES",
    "arrival_capability",
    "required_capabilities",
    "engine_supports",
    "resolve_engine",
    "require_des",
]

ENGINES = ("des", "fast", "fluid", "auto")

#: Node count above which ``auto`` switches from ``fast`` to ``fluid``.
DEFAULT_FLUID_THRESHOLD = 128

#: What each concrete tier can execute (the engine-capability matrix;
#: the README/EXPERIMENTS.md table renders this):
#:
#: * ``arrivals:profile`` — arrivals shaped by a deterministic
#:   :class:`~repro.popload.RateProfile` intensity (diurnal, flash,
#:   piecewise). The fluid tier integrates the transient mean-field
#:   ODE against λ(t); the per-RPC tiers thin/redraw the real process.
#: * ``arrivals:stochastic`` — arrival processes with no deterministic
#:   intensity (MMPP state redraws, recorded traces): per-RPC only.
#: * ``faults`` — :class:`~repro.faults.FaultPlan` timelines (crashes,
#:   slowdowns, fabric degradation).
#: * ``tracing`` — per-RPC span capture (``ext-tails``): instruments
#:   the discrete-event hot paths themselves.
#: * ``chip`` — single-chip balancing-scheme surrogates (1x16/16x1
#:   queueing structure inside one node, e.g. ``ext-diurnal``).
#: * ``hierarchy`` — two-level rack-of-racks routing
#:   (:mod:`repro.datacenter`): per-rack aggregates and ToR hold
#:   queues are per-RPC state the mean-field tier cannot express.
ENGINE_CAPABILITIES: Mapping[str, FrozenSet[str]] = {
    "des": frozenset(
        {
            "arrivals:profile",
            "arrivals:stochastic",
            "faults",
            "tracing",
            "chip",
            "hierarchy",
        }
    ),
    "fast": frozenset(
        {
            "arrivals:profile",
            "arrivals:stochastic",
            "faults",
            "chip",
            "hierarchy",
        }
    ),
    "fluid": frozenset({"arrivals:profile"}),
}

#: ``auto``'s fallback ladder when the node-count tier lacks a needed
#: capability: nearest per-RPC tier first, ground truth last. Never
#: ``fluid`` — falling *up* the fidelity ladder cannot lose features.
_AUTO_FALLBACK = ("fast", "des")


def arrival_capability(arrival_process) -> Optional[str]:
    """Capability token an arrival process needs, or None if stationary.

    Constant-rate processes (``None`` or a
    :class:`~repro.popload.StationaryPoisson`) need nothing beyond the
    legacy Poisson stream. Profile-backed processes (a ``.profile``
    that is a :class:`~repro.popload.RateProfile`) expose the
    deterministic intensity λ(t) the fluid tier can integrate; anything
    else (MMPP, recorded traces, third-party processes) is stochastic
    and needs a per-RPC tier.
    """
    if arrival_process is None:
        return None
    from ..popload.arrivals import RateProfile, StationaryPoisson

    if isinstance(arrival_process, StationaryPoisson):
        return None
    if isinstance(getattr(arrival_process, "profile", None), RateProfile):
        return "arrivals:profile"
    return "arrivals:stochastic"


def required_capabilities(
    arrival_process=None,
    faults=None,
    tracing: bool = False,
    chip: bool = False,
    hierarchy: bool = False,
) -> FrozenSet[str]:
    """The capability set one run needs (see :data:`ENGINE_CAPABILITIES`)."""
    need = set()
    token = arrival_capability(arrival_process)
    if token is not None:
        need.add(token)
    if faults is not None and not getattr(faults, "is_trivial", False):
        need.add("faults")
    if tracing:
        need.add("tracing")
    if chip:
        need.add("chip")
    if hierarchy:
        need.add("hierarchy")
    return frozenset(need)


def engine_supports(engine: str, capabilities) -> bool:
    """True when concrete tier ``engine`` executes all ``capabilities``."""
    if engine not in ENGINE_CAPABILITIES:
        raise ValueError(
            f"engine must be one of {tuple(ENGINE_CAPABILITIES)}, got {engine!r}"
        )
    return frozenset(capabilities) <= ENGINE_CAPABILITIES[engine]


def resolve_engine(
    engine: str,
    num_nodes: int,
    threshold: int = DEFAULT_FLUID_THRESHOLD,
    *,
    arrival_process=None,
    faults=None,
    tracing: bool = False,
    chip: bool = False,
    hierarchy: bool = False,
) -> str:
    """Resolve the ``engine=`` knob to a concrete tier for one run.

    The ``REPRO_ENGINE`` environment variable, when set to a valid
    engine name, wins over the programmatic value (including "auto",
    which is then resolved by node count as usual).

    The keyword-only arguments describe the run's needs: ``auto``
    resolves by node count and then walks the fallback ladder
    (``fast``, then ``des`` — never ``fluid``) until every needed
    capability is supported, so a shaped or faulty sweep above the
    fluid threshold degrades to a slower tier instead of silently
    producing stationary fault-free results. An explicit engine that
    lacks a needed capability raises.
    """
    override = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if override:
        if override not in ENGINES:
            raise ValueError(
                f"REPRO_ENGINE={override!r} is not one of {ENGINES}"
            )
        engine = override
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    need = required_capabilities(
        arrival_process=arrival_process,
        faults=faults,
        tracing=tracing,
        chip=chip,
        hierarchy=hierarchy,
    )
    if engine == "auto":
        resolved = "fast" if num_nodes <= threshold else "fluid"
        if not engine_supports(resolved, need):
            for fallback in _AUTO_FALLBACK:
                if engine_supports(fallback, need):
                    resolved = fallback
                    break
        return resolved
    if not engine_supports(engine, need):
        missing = ", ".join(sorted(need - ENGINE_CAPABILITIES[engine]))
        supported = ", ".join(
            name
            for name in ("des", "fast", "fluid")
            if engine_supports(name, need)
        )
        raise ValueError(
            f"engine={engine!r} does not support: {missing} (see the "
            "engine-capability matrix in EXPERIMENTS.md 'Engine tiers'); "
            f"use one of: {supported or 'des'} — or engine='auto' to pick "
            "automatically (and unset REPRO_ENGINE if it forces a tier)"
        )
    return engine


def require_des(experiment: str, engine: str, num_nodes: int, reason: str) -> str:
    """Resolve the engine knob for a DES-only experiment.

    Some experiments instrument or depend on the discrete-event hot
    paths themselves (span tracing), so the surrogate tiers cannot run
    them. This gate resolves the knob exactly like
    :func:`resolve_engine` — so ``REPRO_ENGINE`` behaves consistently —
    and raises a uniform, actionable error for any non-DES tier.
    """
    resolved = resolve_engine(engine, num_nodes)
    if resolved != "des":
        raise ValueError(
            f"{experiment} requires engine='des' — {reason}, which the "
            f"{resolved!r} tier does not execute (pass --engine des, or "
            "unset REPRO_ENGINE)"
        )
    return resolved
