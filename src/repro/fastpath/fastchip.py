"""Vectorized single-chip surrogates for the headline sweeps.

The headline run re-measures four paper claims; three of them are
throughput/tail comparisons between balancing schemes, each a full
architectural DES sweep. This module replaces those sweeps with the
queueing-theoretic surrogate the repo already trusts for Fig. 9's
"Model" series: a FIFO service process with the workload's processing
distribution plus a *calibrated* fixed part (measured S̄ minus
processing mean, the exact recipe of
:func:`repro.experiments.fig9.model_vs_simulation`), simulated by
``fastsim``'s O(n log c) loop instead of the per-event kernel.

Scheme surrogates:

* ``1x16`` — one 16-server FIFO (the paper's single-queue optimum);
* ``4x4`` — uniform spray over four 4-server FIFOs;
* ``16x1`` — uniform spray over sixteen single-server FIFOs;
* ``sw-1x16`` — a tandem queue: the MCS lock's serialized hand-off is
  a single-server deterministic stage (~200ns => the ~5 MRPS software
  ceiling), feeding 16 servers that each pay the post-dequeue critical
  section on top of the RPC's service time.

Fig. 9's model-vs-simulation claim is *about* the DES and always runs
on it; these surrogates only stand in for scheme-vs-scheme ratios,
within the tolerance bands in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..balancing.software import DEFAULT_CRITICAL_NS
from ..balancing import SoftwareSingleQueue
from ..dists import Distribution
from ..metrics import LatencySummary, SweepPoint, SweepResult
from ..queueing.fastsim import poisson_arrivals, simulate_fifo_queue
from ..runner import task_seed

__all__ = ["fast_scheme_sweep"]

_TOTAL_CORES = 16


def _spray_departures(
    arrivals: np.ndarray,
    services: np.ndarray,
    num_queues: int,
    servers_per_queue: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform random spray over ``num_queues`` independent FIFOs."""
    picks = rng.integers(0, num_queues, size=arrivals.size)
    departures = np.empty_like(arrivals)
    for queue in range(num_queues):
        mask = picks == queue
        departures[mask] = simulate_fifo_queue(
            arrivals[mask], services[mask], servers_per_queue, validate=False
        )
    return departures


def _scheme_departures(
    scheme: str,
    arrivals: np.ndarray,
    services: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    if scheme == "1x16":
        return simulate_fifo_queue(arrivals, services, _TOTAL_CORES, validate=False)
    if scheme == "4x4":
        return _spray_departures(arrivals, services, 4, 4, rng)
    if scheme == "16x1":
        return _spray_departures(arrivals, services, 16, 1, rng)
    if scheme == "sw-1x16":
        # Tandem: serialized MCS hand-off, then the 16 cores (each RPC
        # additionally pays the post-dequeue critical section). A
        # single-server FIFO's departures are non-decreasing, so they
        # are valid arrivals for the second stage.
        software = SoftwareSingleQueue()
        handoff = np.full(arrivals.size, software.serialized_cost_ns)
        dequeued = simulate_fifo_queue(arrivals, handoff, 1, validate=False)
        return simulate_fifo_queue(
            dequeued, services + DEFAULT_CRITICAL_NS, _TOTAL_CORES, validate=False
        )
    raise ValueError(f"no fast surrogate for scheme {scheme!r}")


def fast_scheme_sweep(
    scheme: str,
    processing: Distribution,
    loads_mrps: Sequence[float],
    num_requests: int,
    seed: int,
    mean_service_ns: float,
    label: str,
    experiment: str = "fastchip",
    warmup_fraction: float = 0.1,
) -> SweepResult:
    """Sweep one scheme surrogate over offered loads (MRPS).

    ``mean_service_ns`` is the DES-calibrated effective service time;
    the surrogate adds ``mean_service_ns - processing.mean`` of fixed
    per-RPC cost to every sampled processing time. Each load point
    draws its RNG from the same ``task_seed`` discipline as the DES
    sweeps, so results are bit-identical at any worker count.
    """
    fixed_ns = mean_service_ns - processing.mean
    if fixed_ns < 0:
        raise ValueError(
            f"calibrated mean {mean_service_ns!r} below processing mean "
            f"{processing.mean!r}"
        )
    points = []
    for index, load in enumerate(loads_mrps):
        rng = np.random.default_rng(task_seed(experiment, label, index, seed))
        rate_per_ns = load * 1e-3
        arrivals = poisson_arrivals(rng, rate_per_ns, num_requests)
        services = processing.sample_array(rng, num_requests) + fixed_ns
        departures = _scheme_departures(scheme, arrivals, services, rng)
        sojourns = departures - arrivals
        skip = int(num_requests * warmup_fraction)
        summary = LatencySummary.from_values(sojourns[skip:])
        # Achieved throughput mirrors the DES exactly: warmup cutoff is
        # the completion-time quantile, and the rate is measured over
        # the completion window (including the drain tail), so the
        # >=97%-sustained filter in the headline run behaves the same
        # on both engines.
        cutoff = float(np.quantile(departures, warmup_fraction))
        kept = departures[departures >= cutoff]
        achieved = 0.0
        if kept.size >= 2:
            start = max(cutoff, float(kept.min()))
            duration = float(kept.max()) - start
            if duration > 0:
                achieved = kept.size / duration * 1e3
        points.append(
            SweepPoint(
                offered_load=float(load),
                achieved_throughput=achieved,
                summary=summary,
            )
        )
    return SweepResult(label=label, points=points)
