"""Vectorized single-chip surrogates for the headline sweeps.

The headline run re-measures four paper claims; three of them are
throughput/tail comparisons between balancing schemes, each a full
architectural DES sweep. This module replaces those sweeps with the
queueing-theoretic surrogate the repo already trusts for Fig. 9's
"Model" series: a FIFO service process with the workload's processing
distribution plus a *calibrated* fixed part (measured S̄ minus
processing mean, the exact recipe of
:func:`repro.experiments.fig9.model_vs_simulation`), simulated by
``fastsim``'s O(n log c) loop instead of the per-event kernel.

Scheme surrogates:

* ``1x16`` — one 16-server FIFO (the paper's single-queue optimum);
* ``4x4`` — uniform spray over four 4-server FIFOs;
* ``16x1`` — uniform spray over sixteen single-server FIFOs;
* ``sw-1x16`` — a tandem queue: the MCS lock's serialized hand-off is
  a single-server deterministic stage (~200ns => the ~5 MRPS software
  ceiling), feeding 16 servers that each pay the post-dequeue critical
  section on top of the RPC's service time.

Fig. 9's model-vs-simulation claim is *about* the DES and always runs
on it; these surrogates only stand in for scheme-vs-scheme ratios,
within the tolerance bands in EXPERIMENTS.md.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from ..balancing.software import DEFAULT_CRITICAL_NS
from ..balancing import SoftwareSingleQueue
from ..dists import Distribution
from ..metrics import LatencySummary, SweepPoint, SweepResult
from ..queueing.fastsim import poisson_arrivals, simulate_fifo_queue
from ..runner import task_seed

__all__ = [
    "calibrated_chip_profile",
    "fast_scheme_sweep",
    "fast_chip_point",
]

_TOTAL_CORES = 16

#: Mid-load probe for the single-chip occupancy split (~0.8x the HERD
#: capacity of one 16-core chip — the regime the shaped sweeps peak in).
_CHIP_PROBE_MRPS = 23.0
_CHIP_PROBE_REQUESTS = 1500


def _spray_departures(
    arrivals: np.ndarray,
    services: np.ndarray,
    num_queues: int,
    servers_per_queue: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform random spray over ``num_queues`` independent FIFOs."""
    picks = rng.integers(0, num_queues, size=arrivals.size)
    departures = np.empty_like(arrivals)
    for queue in range(num_queues):
        mask = picks == queue
        departures[mask] = simulate_fifo_queue(
            arrivals[mask], services[mask], servers_per_queue, validate=False
        )
    return departures


def _scheme_departures(
    scheme: str,
    arrivals: np.ndarray,
    services: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    if scheme == "1x16":
        return simulate_fifo_queue(arrivals, services, _TOTAL_CORES, validate=False)
    if scheme == "4x4":
        return _spray_departures(arrivals, services, 4, 4, rng)
    if scheme == "16x1":
        return _spray_departures(arrivals, services, 16, 1, rng)
    if scheme == "sw-1x16":
        # Tandem: serialized MCS hand-off, then the 16 cores (each RPC
        # additionally pays the post-dequeue critical section). A
        # single-server FIFO's departures are non-decreasing, so they
        # are valid arrivals for the second stage.
        software = SoftwareSingleQueue()
        handoff = np.full(arrivals.size, software.serialized_cost_ns)
        dequeued = simulate_fifo_queue(arrivals, handoff, 1, validate=False)
        return simulate_fifo_queue(
            dequeued, services + DEFAULT_CRITICAL_NS, _TOTAL_CORES, validate=False
        )
    raise ValueError(f"no fast surrogate for scheme {scheme!r}")


@lru_cache(maxsize=None)
def calibrated_chip_profile(
    scheme: str, probe_seed: int = 0
) -> Tuple[float, float]:
    """DES-anchored ``(occupancy_ns, shift_ns)`` for one single chip.

    The single-chip counterpart of
    :func:`~repro.fastpath.fastcluster.calibrated_scheme_profile`,
    anchored against ``make_system`` (the NI + chip DES) instead of the
    rack cluster — the two pipelines pay different overheads, so the
    rack split does not transfer.

    A light-load DES probe (1 MRPS, where queueing is negligible)
    measures the total per-RPC latency overhead L = mean sojourn minus
    mean processing. For ``1x16`` all of L occupies the shared
    16-server queue (occupancy = L, shift = 0; the DES cross-checks in
    the agreement tests confirm the split is insensitive there). For
    ``16x1`` the per-core FIFOs are very sensitive to occupancy, so a
    second mid-load probe (:data:`_CHIP_PROBE_MRPS`) anchors the split:
    bisect the occupancy until :func:`fast_chip_point` reproduces the
    probe's mean sojourn on the identical scenario, and book the
    remainder of L as a pure latency shift. Cached per
    ``(scheme, probe_seed)``: one diurnal sweep pays for two probes.
    """
    from ..core import make_system
    from ..workloads import HerdWorkload

    workload = HerdWorkload()
    system = make_system(scheme, "herd", seed=probe_seed)
    light = system.run_point(
        1.0, num_requests=_CHIP_PROBE_REQUESTS, warmup_fraction=0.1
    )
    overhead = max(
        light.point.summary.mean - workload.mean_processing_ns, 0.0
    )
    if scheme == "1x16":
        return overhead, 0.0

    mid_seed = task_seed("fastchip-probe", scheme, 0, probe_seed)
    probe_system = make_system(scheme, "herd", seed=mid_seed)
    target = probe_system.run_point(
        _CHIP_PROBE_MRPS,
        num_requests=_CHIP_PROBE_REQUESTS,
        warmup_fraction=0.1,
    ).point.summary.mean

    def engine_mean(occupancy: float) -> float:
        point = fast_chip_point(
            scheme,
            workload,
            _CHIP_PROBE_MRPS,
            _CHIP_PROBE_REQUESTS,
            mid_seed,
            (occupancy, overhead - occupancy),
        )
        return point.summary.mean

    low, high = 0.0, overhead
    for _ in range(10):
        mid = (low + high) / 2.0
        if engine_mean(mid) > target:
            high = mid
        else:
            low = mid
    occupancy = (low + high) / 2.0
    return occupancy, overhead - occupancy


def fast_chip_point(
    scheme: str,
    workload,
    offered_mrps: float,
    num_requests: int,
    seed: int,
    profile: Tuple[float, float],
    arrival_process=None,
    warmup_fraction: float = 0.1,
) -> SweepPoint:
    """One single-chip load point under an arbitrary arrival process.

    The shaped-load counterpart of :func:`fast_scheme_sweep`, built for
    ``ext-diurnal``'s ``engine="fast"`` path. It consumes the *same*
    named RNG streams as the DES system (``"arrivals"`` for the gap
    batch — through the process's own ``sample_gaps`` — ``"service"``
    for the workload batch, and ``"group_spray"`` for 16x1's
    per-message core picks, exactly as the DES chip sprays), so for a
    given ``seed`` the fast tier sees bit-identical arrival times,
    service draws, and core assignments to the DES run it stands in
    for: the engines differ only in the queueing model (calibrated
    FIFO vs per-event NI pipeline), which is what keeps the agreement
    bands tight under diurnal/flash/MMPP shapes.

    ``profile`` is the ``(occupancy_ns, shift_ns)`` split from
    :func:`calibrated_chip_profile`: occupancy is added to every
    service time (it contends for cores), the shift to every sojourn
    (NI pipeline stages overlapped with other requests). Warmup and
    achieved-throughput semantics mirror ``RpcValetSystem.run_point``
    (completion-time quantile cutoff).
    """
    from ..sim import RngRegistry

    if offered_mrps <= 0:
        raise ValueError(f"offered_mrps must be positive, got {offered_mrps!r}")
    if num_requests <= 0:
        raise ValueError(f"num_requests must be positive, got {num_requests!r}")
    occupancy_ns, shift_ns = float(profile[0]), float(profile[1])
    if occupancy_ns < 0 or shift_ns < 0:
        raise ValueError(
            f"profile components must be non-negative, got {profile!r}"
        )
    n = num_requests
    rngs = RngRegistry(seed)
    arrival_rng = rngs.stream("arrivals")
    if arrival_process is not None:
        gaps = arrival_process.sample_gaps(arrival_rng, n)
    else:
        gaps = arrival_rng.exponential(1e3 / offered_mrps, size=n)
    arrivals = np.cumsum(gaps)
    base, _labels = workload.sample_batch(rngs.stream("service"), n)
    services = base + occupancy_ns
    departures = _scheme_departures(
        scheme, arrivals, services, rngs.stream("group_spray")
    )
    sojourns = departures - arrivals + shift_ns
    # Warmup mirrors LatencyRecorder.summary: drop the earliest-
    # completing fraction by completion-time quantile (strict >).
    cutoff = (
        float(np.quantile(departures, warmup_fraction))
        if warmup_fraction > 0
        else 0.0
    )
    summary = LatencySummary.from_values(sojourns[departures > cutoff])
    kept = departures[departures >= cutoff]
    achieved = 0.0
    if kept.size >= 2:
        start = max(cutoff, float(kept.min()))
        duration = float(kept.max()) - start
        if duration > 0:
            achieved = kept.size / duration * 1e3
    return SweepPoint(
        offered_load=float(offered_mrps),
        achieved_throughput=achieved,
        summary=summary,
        extra={
            "mean_service_ns": float(services.mean()),
            "stall_fraction": 0.0,
        },
    )


def fast_scheme_sweep(
    scheme: str,
    processing: Distribution,
    loads_mrps: Sequence[float],
    num_requests: int,
    seed: int,
    mean_service_ns: float,
    label: str,
    experiment: str = "fastchip",
    warmup_fraction: float = 0.1,
) -> SweepResult:
    """Sweep one scheme surrogate over offered loads (MRPS).

    ``mean_service_ns`` is the DES-calibrated effective service time;
    the surrogate adds ``mean_service_ns - processing.mean`` of fixed
    per-RPC cost to every sampled processing time. Each load point
    draws its RNG from the same ``task_seed`` discipline as the DES
    sweeps, so results are bit-identical at any worker count.
    """
    fixed_ns = mean_service_ns - processing.mean
    if fixed_ns < 0:
        raise ValueError(
            f"calibrated mean {mean_service_ns!r} below processing mean "
            f"{processing.mean!r}"
        )
    points = []
    for index, load in enumerate(loads_mrps):
        rng = np.random.default_rng(task_seed(experiment, label, index, seed))
        rate_per_ns = load * 1e-3
        arrivals = poisson_arrivals(rng, rate_per_ns, num_requests)
        services = processing.sample_array(rng, num_requests) + fixed_ns
        departures = _scheme_departures(scheme, arrivals, services, rng)
        sojourns = departures - arrivals
        skip = int(num_requests * warmup_fraction)
        summary = LatencySummary.from_values(sojourns[skip:])
        # Achieved throughput mirrors the DES exactly: warmup cutoff is
        # the completion-time quantile, and the rate is measured over
        # the completion window (including the drain tail), so the
        # >=97%-sustained filter in the headline run behaves the same
        # on both engines.
        cutoff = float(np.quantile(departures, warmup_fraction))
        kept = departures[departures >= cutoff]
        achieved = 0.0
        if kept.size >= 2:
            start = max(cutoff, float(kept.min()))
            duration = float(kept.max()) - start
            if duration > 0:
                achieved = kept.size / duration * 1e3
        points.append(
            SweepPoint(
                offered_load=float(load),
                achieved_throughput=achieved,
                summary=summary,
            )
        )
    return SweepResult(label=label, points=points)
