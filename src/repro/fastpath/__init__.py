"""Tiered simulation core: vectorized fast path + fluid/mean-field tier.

The per-RPC DES (``repro.sim`` + ``repro.cluster``) is the bit-exact
ground truth, but it prices every NI pipeline stage of every RPC — far
too much fidelity for 100-1000-node rack sweeps. This package offers
two cheaper tiers, selectable per run through ``engine=``:

* ``fast`` (:mod:`repro.fastpath.fastcluster`,
  :mod:`repro.fastpath.fastchip`) — a vectorized surrogate that keeps
  per-RPC granularity but collapses the chip to a calibrated FIFO
  service process: batched arrival/service sampling, per-node
  server-free-time heaps, and a calendar-queue bucketed scheduler for
  the departure traffic that dominates the DES event heap.
* ``fluid`` (:mod:`repro.fastpath.fluid`) — a mean-field tier that
  replaces per-RPC simulation entirely above a node-count threshold:
  queue-length ODE trajectories per policy, with latency quantiles
  sampled from the stationary distribution.

``des`` stays the bit-exact ground truth and the default for every
figure driver; the engine-aware drivers (``ext-rack``, ``headline``)
default to ``fast`` and ``ext-scale`` to ``auto``, which picks ``fast``
up to :data:`~repro.fastpath.select.DEFAULT_FLUID_THRESHOLD` nodes and
``fluid`` above. Tolerance bands and the validity envelope of each
tier are documented in EXPERIMENTS.md ("Engine tiers").
"""

from .calendar import CalendarQueue
from .fastchip import fast_scheme_sweep
from .fastcluster import (
    calibrated_scheme_profile,
    calibrated_service_overhead_ns,
    simulate_rack_fast,
)
from .fluid import fluid_tail_measure, simulate_cluster_fluid
from .select import DEFAULT_FLUID_THRESHOLD, ENGINES, require_des, resolve_engine

__all__ = [
    "CalendarQueue",
    "DEFAULT_FLUID_THRESHOLD",
    "ENGINES",
    "calibrated_scheme_profile",
    "calibrated_service_overhead_ns",
    "fast_scheme_sweep",
    "fluid_tail_measure",
    "resolve_engine",
    "require_des",
    "simulate_cluster_fluid",
    "simulate_rack_fast",
]
