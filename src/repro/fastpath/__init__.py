"""Tiered simulation core: vectorized fast path + fluid/mean-field tier.

The per-RPC DES (``repro.sim`` + ``repro.cluster``) is the bit-exact
ground truth, but it prices every NI pipeline stage of every RPC — far
too much fidelity for 100-1000-node rack sweeps. This package offers
two cheaper tiers, selectable per run through ``engine=``:

* ``fast`` (:mod:`repro.fastpath.fastcluster`,
  :mod:`repro.fastpath.fastchip`) — a vectorized surrogate that keeps
  per-RPC granularity but collapses the chip to a calibrated FIFO
  service process: batched arrival/service sampling, per-node
  server-free-time heaps, and a calendar-queue bucketed scheduler for
  the departure traffic that dominates the DES event heap.
* ``fluid`` (:mod:`repro.fastpath.fluid`) — a mean-field tier that
  replaces per-RPC simulation entirely above a node-count threshold:
  queue-length ODE trajectories per policy, with latency quantiles
  sampled from the stationary distribution.

``des`` stays the bit-exact ground truth and the default for every
figure driver; the engine-aware drivers (``ext-rack``, ``headline``)
default to ``fast`` and ``ext-scale``/``ext-diurnal`` to ``auto``,
which picks ``fast`` up to
:data:`~repro.fastpath.select.DEFAULT_FLUID_THRESHOLD` nodes and
``fluid`` above. Resolution is capability-aware (shaped arrivals,
fault plans, span tracing, chip surrogates — see
:data:`~repro.fastpath.select.ENGINE_CAPABILITIES`): ``auto`` falls
back down the ladder rather than dropping a feature, and an explicit
tier that cannot execute the scenario raises. Tolerance bands and the
validity envelope of each tier are documented in EXPERIMENTS.md
("Engine tiers").
"""

from .calendar import CalendarQueue
from .fastchip import calibrated_chip_profile, fast_chip_point, fast_scheme_sweep
from .fastcluster import (
    calibrated_scheme_profile,
    calibrated_service_overhead_ns,
    simulate_rack_fast,
)
from .fluid import fluid_tail_measure, fluid_transient_measure, simulate_cluster_fluid
from .select import (
    DEFAULT_FLUID_THRESHOLD,
    ENGINE_CAPABILITIES,
    ENGINES,
    arrival_capability,
    engine_supports,
    require_des,
    required_capabilities,
    resolve_engine,
)

__all__ = [
    "CalendarQueue",
    "DEFAULT_FLUID_THRESHOLD",
    "ENGINES",
    "ENGINE_CAPABILITIES",
    "arrival_capability",
    "calibrated_chip_profile",
    "calibrated_scheme_profile",
    "calibrated_service_overhead_ns",
    "engine_supports",
    "fast_chip_point",
    "fast_scheme_sweep",
    "fluid_tail_measure",
    "fluid_transient_measure",
    "required_capabilities",
    "resolve_engine",
    "require_des",
    "simulate_cluster_fluid",
    "simulate_rack_fast",
]
