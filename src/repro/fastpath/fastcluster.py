"""Vectorized rack/cluster fast path: per-RPC fidelity, no DES kernel.

The DES cluster prices every NI pipeline stage of every RPC. At rack
scale the questions are about *routing* — which server each RPC hits
and how long it queues there — so this engine collapses each chip to a
FIFO service process whose fixed per-RPC overhead is **calibrated
against the DES tier itself** (a light-load two-node probe), then
simulates the whole rack with the ``fastsim`` struct-of-arrays
approach:

* batched arrival sampling: one exponential draw per client stream,
  merged with a single stable argsort;
* batched service sampling through the workload's vectorized
  ``sample_batch``;
* state-independent policies (random/RR) route entirely vectorized and
  run each node as one :func:`repro.queueing.fastsim.simulate_fifo_queue`
  call (per-node server-free-time heaps in flat arrays);
* load-aware policies (JSQ(d)/SED) keep a sequential decision loop —
  the decisions are inherently state-dependent — but drive departures
  through a :class:`repro.fastpath.CalendarQueue` instead of the DES
  kernel's generic heap, and reuse the *exact* policy/signal classes
  from :mod:`repro.rack` so routing semantics cannot drift.

Shaped arrivals (any :class:`repro.popload.ArrivalProcess`) replace
the per-client exponential batch with per-client ``sample_gaps`` calls
— same one-deterministic-sweep RNG contract, so runs stay bit-identical
at any worker count. :class:`repro.faults.FaultPlan` timelines run as
window lookups against the materialized plan (the same
``materialize(num_nodes, horizon, seed)`` the DES injector schedules
from): crashes drop requests routed to a down node and floor the
node's server-free times at recovery (the outage freezes its servers),
slowdowns scale the effective speed of requests launched inside the
window, and fabric degradation rolls batched drop/dup/delay-spike
fates per request. Faulted runs always take the sequential loop.

Approximations versus DES (documented in EXPERIMENTS.md): the chip is
a FIFO with calibrated fixed overhead (no NI pipelining or mesh
contention), fabric latency is a uniform shift (it cancels out of
server-side sojourns), send-slot exhaustion is *counted* as stalls but
does not delay the message, and broadcast load signals refresh at the
first event past each tick rather than mid-gap. Under faults: requests
in flight when their server crashes keep their departure times (only
new work is dropped/frozen), blocked sends re-issued by a replenish
skip the liveness check, duplicated deliveries are counted but not
re-executed, and signal blackouts are a no-op (signals here are
synchronous state reads). Tolerance bands are enforced by
``tests/test_fastpath.py``.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from functools import lru_cache
from typing import List, Optional, Sequence

import numpy as np

from ..cluster.cluster import ClusterResult
from ..metrics import LatencySummary
from ..queueing.fastsim import simulate_fifo_queue
from ..rack.policies import PowerOfD, ZipfDestinations, make_policy
from ..rack.router import RouterStats
from ..rack.signals import BroadcastSignal, PiggybackSignal, make_signal
from .calendar import CalendarQueue

__all__ = [
    "FaultTimeline",
    "calibrated_scheme_profile",
    "calibrated_service_overhead_ns",
    "simulate_rack_fast",
]

#: Matches ``repro.arch.ChipConfig.send_slots_per_node``.
DEFAULT_SEND_SLOTS = 32

#: Mid-load calibration probe for the 16x1 occupancy split (per-core
#: utilization ~0.85 with the HERD workload — the regime the rack
#: sweeps actually run in).
_PROBE_MRPS = 24.0
_PROBE_NODES = 4
_PROBE_REQUESTS = 1500


def _light_load_overhead_ns(scheme: str, cores: int, probe_seed: int) -> float:
    """Total per-RPC latency overhead from a light-load DES probe.

    Runs a tiny two-node DES cluster at ~5% utilization, where queueing
    is negligible, and subtracts the workload's mean processing time:
    what remains is the NI/dispatch/messaging latency every RPC pays —
    the same "measured mean minus processing mean" recipe Fig. 9's
    analytic model uses.
    """
    from ..balancing import Partitioned, SingleQueue
    from ..cluster import Cluster
    from ..workloads import HerdWorkload

    factory = {"1x16": SingleQueue, "16x1": Partitioned}[scheme]
    workload = HerdWorkload()
    cluster = Cluster(
        num_nodes=2,
        scheme_factory=factory,
        workload=workload,
        seed=probe_seed,
        core_counts=[cores, cores],
    )
    result = cluster.run(per_node_mrps=2.0, requests_per_node=600)
    return max(result.aggregate.mean - workload.mean_processing_ns, 0.0)


@lru_cache(maxsize=None)
def calibrated_scheme_profile(
    scheme: str, cores: int, probe_seed: int = 0
) -> tuple:
    """DES-anchored ``(occupancy_overhead_ns, latency_shift_ns)``.

    The light-load probe measures the *total* per-RPC latency overhead
    L, but only the part of L that occupies a core contributes to
    queueing; the rest (NI pipeline stages overlapped with other
    requests) is a pure latency shift. For ``1x16`` the two coincide —
    the shared 16-server queue's waits are insensitive to the split and
    the DES cross-checks confirm occupancy ≈ L. For ``16x1`` the
    per-core M/G/1 queues are *very* sensitive to occupancy, and the
    DES chip demonstrably overlaps part of L (a node at per-core
    utilization ~0.86 queues far less than an M/G/1 spray with service
    D̄+L would): a second DES probe at mid load anchors the split by
    bisecting the occupancy until this engine reproduces the probe's
    mean sojourn on the identical scenario. Cached per (scheme, cores):
    rack sweeps reuse a handful of probes across dozens of points.
    """
    overhead = _light_load_overhead_ns(scheme, cores, probe_seed)
    if scheme != "16x1":
        return overhead, 0.0

    from ..balancing import Partitioned
    from ..cluster import Cluster
    from ..rack import RackRouter
    from ..workloads import HerdWorkload

    cluster = Cluster(
        num_nodes=_PROBE_NODES,
        scheme_factory=Partitioned,
        workload=HerdWorkload(),
        seed=probe_seed,
        router=RackRouter("random", "fresh"),
        core_counts=[cores] * _PROBE_NODES,
    )
    target = cluster.run(
        per_node_mrps=_PROBE_MRPS, requests_per_node=_PROBE_REQUESTS
    ).aggregate.mean

    def engine_mean(occupancy: float) -> float:
        result = simulate_rack_fast(
            _PROBE_NODES,
            policy="random",
            scheme=scheme,
            core_counts=[cores] * _PROBE_NODES,
            per_node_mrps=_PROBE_MRPS,
            requests_per_node=_PROBE_REQUESTS,
            seed=probe_seed,
            _profile=(occupancy, overhead - occupancy),
        )
        return result.aggregate.mean

    low, high = 0.0, overhead
    for _ in range(10):
        mid = (low + high) / 2.0
        if engine_mean(mid) > target:
            high = mid
        else:
            low = mid
    occupancy = (low + high) / 2.0
    return occupancy, overhead - occupancy


def calibrated_service_overhead_ns(
    scheme: str, cores: int, probe_seed: int = 0
) -> float:
    """Total fixed per-RPC overhead (occupancy + pipelined latency)."""
    occupancy, shift = calibrated_scheme_profile(scheme, cores, probe_seed)
    return occupancy + shift


def _route_static(
    label: str,
    destinations: ZipfDestinations,
    clients: np.ndarray,
    rng: np.random.Generator,
    num_nodes: int,
) -> np.ndarray:
    """Vectorized destinations for state-independent policies."""
    dsts = np.empty(clients.size, dtype=np.int64)
    for client in range(num_nodes):
        mask = clients == client
        count = int(np.count_nonzero(mask))
        if count == 0:
            continue
        peers = np.asarray(destinations.peers_of(client))
        if label == "rr":
            start = client % peers.size
            dsts[mask] = peers[(start + np.arange(count)) % peers.size]
        else:  # popularity-weighted random spray
            cumulative = destinations.cumulative_of(client)
            index = np.searchsorted(cumulative, rng.random(count), side="right")
            dsts[mask] = peers[np.minimum(index, cumulative.size - 1)]
    return dsts


def _node_departures(
    scheme: str,
    arrivals: np.ndarray,
    services: np.ndarray,
    cores: int,
    spray_rng: np.random.Generator,
) -> np.ndarray:
    """Departure times of one node's arrivals under its scheme."""
    if scheme == "1x16":
        return simulate_fifo_queue(arrivals, services, cores, validate=False)
    # 16x1: uniform spray to per-core FIFOs, each a Lindley recurrence.
    picks = spray_rng.integers(0, cores, size=arrivals.size)
    departures = np.empty_like(arrivals)
    for core in range(cores):
        mask = picks == core
        departures[mask] = simulate_fifo_queue(
            arrivals[mask], services[mask], 1, validate=False
        )
    return departures


def _count_stalls(
    clients: np.ndarray,
    dsts: np.ndarray,
    times: np.ndarray,
    departures: np.ndarray,
    num_nodes: int,
    slots: int,
) -> np.ndarray:
    """Per-client count of sends that found no free send slot.

    Exact per-(client, dst) in-flight bookkeeping for rack-sized
    fan-outs; above 32 nodes the per-pair slot pools are effectively
    never exhausted and a node-level aggregate threshold suffices.
    """
    stalled = np.zeros(num_nodes, dtype=np.int64)
    if num_nodes <= 32:
        for client in range(num_nodes):
            cmask = clients == client
            for dst in range(num_nodes):
                if dst == client:
                    continue
                mask = cmask & (dsts == dst)
                count = int(np.count_nonzero(mask))
                if count <= slots:
                    continue
                arr = times[mask]
                done = np.searchsorted(np.sort(departures[mask]), arr, side="right")
                inflight = np.arange(count) - done
                stalled[client] += int(np.count_nonzero(inflight >= slots))
        return stalled
    for dst in range(num_nodes):
        mask = dsts == dst
        count = int(np.count_nonzero(mask))
        if count <= slots:
            continue
        arr = times[mask]
        done = np.searchsorted(np.sort(departures[mask]), arr, side="right")
        inflight = np.arange(count) - done
        over = inflight >= slots * (num_nodes - 1)
        np.add.at(stalled, clients[mask][over], 1)
    return stalled


class _FaultTimeline:
    """One materialized :class:`~repro.faults.FaultPlan`, as flat windows.

    The DES injector executes the plan as scheduled callbacks; this
    engine has no event kernel, so the same materialized events become
    per-node window lists the sequential loop probes by containment
    (plans hold a handful of events — linear scans beat any index).
    The fabric stream reuses the DES's ``"faults.fabric"`` name from a
    :class:`~repro.sim.RngRegistry`, so fault-free runs draw nothing.
    """

    def __init__(self, plan, num_nodes: int, horizon_ns: float, seed: int) -> None:
        from ..faults import FaultStats
        from ..faults.plan import (
            FabricDegradation,
            NodeCrash,
            NodeSlowdown,
        )

        self.plan = plan
        self.stats = FaultStats()
        self.crash_windows: List[List[tuple]] = [[] for _ in range(num_nodes)]
        self.slow_windows: List[List[tuple]] = [[] for _ in range(num_nodes)]
        self.fabric_windows: List[tuple] = []
        for event in plan.materialize(num_nodes, horizon_ns, seed):
            if isinstance(event, NodeCrash):
                end = (
                    event.at_ns + event.outage_ns
                    if event.outage_ns is not None
                    else math.inf
                )
                self.crash_windows[event.node].append((event.at_ns, end))
            elif isinstance(event, NodeSlowdown):
                self.slow_windows[event.node].append(
                    (event.at_ns, event.at_ns + event.duration_ns, event.factor)
                )
            elif isinstance(event, FabricDegradation):
                self.fabric_windows.append(
                    (event.at_ns, event.at_ns + event.duration_ns, event)
                )
            # SignalBlackout: this engine's load signals are synchronous
            # state reads with nothing to go dark; a blackout is a no-op.
        for windows in self.crash_windows:
            windows.sort()
        self.fabric_windows.sort(key=lambda window: window[0])
        #: (recovery_time, node) boundaries for server-free-time surgery.
        self.recoveries = sorted(
            (end, node)
            for node, windows in enumerate(self.crash_windows)
            for (_start, end) in windows
            if end != math.inf
        )
        self.has_fabric = plan.has_fabric_noise or bool(self.fabric_windows)
        if self.has_fabric:
            from ..sim import RngRegistry

            self.fabric_rng = RngRegistry(seed).stream("faults.fabric")
        else:
            self.fabric_rng = None

    def node_down(self, node: int, t_ns: float) -> bool:
        return any(
            start <= t_ns < end for start, end in self.crash_windows[node]
        )

    def speed_factor(self, node: int, t_ns: float) -> float:
        factor = 1.0
        # Overlapping windows compound, like the DES injector.
        for start, end, window_factor in self.slow_windows[node]:
            if start <= t_ns < end:
                factor *= window_factor
        return factor

    def fabric_fate(self, t_ns: float) -> tuple:
        """(dropped, extra_delay_ns) for one request's fabric traversal.

        Mirrors ``FaultInjector.transmit``'s draw order — drop, then
        spike, then dup — with window probabilities stacked on the
        plan's steady-state noise. Draws only while fabric faults are
        live, so the stream stays aligned with configured windows.
        """
        plan = self.plan
        drop, dup, spike, spike_ns = (
            plan.drop_prob,
            plan.dup_prob,
            plan.spike_prob,
            plan.spike_ns,
        )
        active = False
        for start, end, window in self.fabric_windows:
            if start <= t_ns < end:
                active = True
                drop = min(drop + window.drop_prob, 1.0)
                dup = min(dup + window.dup_prob, 1.0)
                spike = min(spike + window.spike_prob, 1.0)
                spike_ns = max(spike_ns, window.spike_ns)
        if self.fabric_rng is None or not (active or plan.has_fabric_noise):
            return False, 0.0
        rng = self.fabric_rng
        if rng.random() < drop:
            self.stats.msg_drops += 1
            return True, 0.0
        delay = 0.0
        if spike > 0 and rng.random() < spike:
            self.stats.delay_spikes += 1
            delay = spike_ns
        if dup > 0 and rng.random() < dup:
            # Counted only: the receiver dedups, so the duplicate costs
            # fabric accounting but no second service.
            self.stats.msg_dups += 1
        return False, delay

    def finalize(self, elapsed_ns: float, total: int, lost: int) -> list:
        """Fill timeline stats and return per-node availability."""
        stats = self.stats
        stats.offered = total
        stats.completed = total - lost
        stats.lost = lost
        availability = []
        for node, windows in enumerate(self.crash_windows):
            down_ns = 0.0
            for start, end in windows:
                if start <= elapsed_ns:
                    stats.crashes += 1
                    down_ns += min(end, elapsed_ns) - start
                    if end <= elapsed_ns:
                        stats.recoveries += 1
            availability.append(
                max(0.0, 1.0 - down_ns / elapsed_ns)
                if elapsed_ns > 0
                else 1.0
            )
        for windows in self.slow_windows:
            stats.slowdowns += sum(
                1 for start, _end, _factor in windows if start <= elapsed_ns
            )
        return availability


def simulate_rack_fast(
    num_nodes: int,
    policy: str = "random",
    signal: str = "fresh",
    skew: float = 0.0,
    scheme: str = "1x16",
    core_counts: Optional[Sequence[int]] = None,
    speed_factors: Optional[Sequence[float]] = None,
    per_node_mrps: float = 24.0,
    requests_per_node: int = 1000,
    seed: int = 0,
    warmup_fraction: float = 0.1,
    telemetry: bool = False,
    send_slots_per_node: int = DEFAULT_SEND_SLOTS,
    arrival_process=None,
    faults=None,
    _profile: Optional[tuple] = None,
) -> ClusterResult:
    """Run one rack scenario on the vectorized fast path.

    Accepts the same scenario knobs as the DES :class:`repro.cluster.Cluster`
    + :class:`repro.rack.RackRouter` combination and returns the same
    :class:`~repro.cluster.cluster.ClusterResult` shape, so drivers can
    switch engines without touching their downstream analysis.

    ``arrival_process`` (any :class:`repro.popload.ArrivalProcess`)
    replaces each client's Poisson stream with the process's own
    ``sample_gaps`` — diurnal/flash thinning, MMPP redraws, population
    windows — one deterministic sweep per client. ``faults`` (a
    :class:`repro.faults.FaultPlan`) runs the materialized timeline
    inside the sequential loop and populates the robust-mode result
    fields (``offered``/``lost``/``goodput_mrps``/``availability``/
    ``fault_stats``); both default to the legacy behaviour and leave
    the legacy RNG consumption untouched.
    """
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {num_nodes!r}")
    if per_node_mrps <= 0 or requests_per_node <= 0:
        raise ValueError("per_node_mrps and requests_per_node must be positive")
    from ..workloads import HerdWorkload

    num_clients = num_nodes
    cores = (
        [int(count) for count in core_counts]
        if core_counts is not None
        else [16] * num_nodes
    )
    speeds = np.asarray(
        speed_factors if speed_factors is not None else [1.0] * num_nodes,
        dtype=float,
    )
    workload = HerdWorkload()
    # Per-node (core occupancy, pipelined latency shift) split; the
    # ``_profile`` hook lets the calibration bisection drive this
    # engine with candidate splits without recursing into the probes.
    profiles = (
        [_profile] * num_nodes
        if _profile is not None
        else [calibrated_scheme_profile(scheme, count) for count in cores]
    )
    occupancy = np.array([profile[0] for profile in profiles])
    shift = np.array([profile[1] for profile in profiles])

    policy_obj = make_policy(policy)
    signal_obj = make_signal(signal)
    destinations = ZipfDestinations(num_nodes, skew)

    arrival_rng, service_rng, route_rng = (
        np.random.default_rng(child)
        for child in np.random.SeedSequence(seed).spawn(3)
    )

    # Batched per-client arrival streams, merged with one stable sort.
    n = requests_per_node
    mean_gap_ns = 1e3 / per_node_mrps
    if arrival_process is not None:
        # One deterministic sweep of the shared generator per client,
        # mirroring how each DES node draws its own gap batch; the
        # calendar bucket heuristic tracks the process's actual mean.
        mean_rate = arrival_process.mean_rate_rps
        if mean_rate > 0:
            mean_gap_ns = 1e9 / mean_rate
        gaps = np.stack(
            [arrival_process.sample_gaps(arrival_rng, n) for _ in range(num_clients)]
        )
    else:
        gaps = arrival_rng.exponential(mean_gap_ns, size=(num_clients, n))
    flat_times = np.cumsum(gaps, axis=1).ravel()
    flat_clients = np.repeat(np.arange(num_clients), n)
    order = np.argsort(flat_times, kind="stable")
    times = flat_times[order]
    clients = flat_clients[order]

    # Batched service sampling, one vectorized draw per client stream.
    processing = np.empty(num_clients * n)
    for client in range(num_clients):
        samples, _labels = workload.sample_batch(service_rng, n)
        processing[client * n : (client + 1) * n] = samples
    processing = processing[order]

    total = times.size
    errors: Optional[np.ndarray] = None

    timeline: Optional[_FaultTimeline] = None
    if faults is not None and not getattr(faults, "is_trivial", False):
        # Same (plan, node-count, horizon, seed) materialization the
        # DES injector schedules from, so fast and DES runs see the
        # same fault timeline for a given scenario.
        timeline = _FaultTimeline(faults, num_nodes, float(times[-1]), seed)

    static_dsts: Optional[np.ndarray] = None
    if not policy_obj.uses_load_signal:
        static_dsts = _route_static(
            policy_obj.label, destinations, clients, route_rng, num_nodes
        )

    if timeline is None and static_dsts is not None and not _slots_may_bind(
        static_dsts,
        processing,
        speeds,
        occupancy,
        cores,
        times,
        send_slots_per_node,
        num_nodes,
    ):
        # Fully vectorized: state-independent routing, no send-slot
        # pressure — each node is one struct-of-arrays FIFO call.
        dsts = static_dsts
        departures = np.empty(total)
        services = processing / speeds[dsts] + occupancy[dsts]
        for node in range(num_nodes):
            mask = dsts == node
            departures[mask] = _node_departures(
                scheme, times[mask], services[mask], cores[node], route_rng
            )
        stalled = _count_stalls(
            clients, dsts, times, departures, num_nodes, send_slots_per_node
        )
        sojourns = departures - times + shift[dsts]
        dropped = None
    else:
        dsts, sojourns, departures, errors, stalled, dropped = _route_sequential(
            policy_obj,
            signal_obj,
            destinations,
            scheme,
            cores,
            speeds,
            occupancy,
            shift,
            times,
            clients,
            processing,
            route_rng,
            mean_gap_ns,
            send_slots_per_node,
            static_dsts,
            timeline,
        )

    skip = int(total * warmup_fraction)
    kept_sojourns = sojourns[skip:]
    kept_dsts = dsts[skip:]
    if dropped is not None:
        kept_ok = ~dropped[skip:]
        kept_sojourns = kept_sojourns[kept_ok]
        kept_dsts = kept_dsts[kept_ok]
    aggregate = LatencySummary.from_values(kept_sojourns)
    per_node = [
        LatencySummary.from_values(kept_sojourns[kept_dsts == node])
        if np.any(kept_dsts == node)
        else LatencySummary.empty()
        for node in range(num_nodes)
    ]

    elapsed_ns = float(departures.max())
    routed_counts = np.bincount(dsts, minlength=num_nodes)
    stats = RouterStats(
        policy=policy_obj.label,
        signal=signal_obj.label,
        skew=skew,
        routed=[int(count) for count in routed_counts],
        decisions=total,
    )
    if errors is not None:
        stats.signal_error_sum = float(errors.sum())
        stats.signal_error_count = int(errors.size)

    snapshot = None
    if telemetry:
        snapshot = _build_snapshot(routed_counts, errors)

    lost = int(np.count_nonzero(dropped)) if dropped is not None else 0
    completed = total - lost
    throughput = completed / elapsed_ns * 1e3 if elapsed_ns > 0 else 0.0
    availability = None
    fault_stats = None
    if timeline is not None:
        availability = timeline.finalize(elapsed_ns, total, lost)
        fault_stats = timeline.stats
        completed_counts = np.bincount(
            dsts[~dropped], minlength=num_nodes
        )
    else:
        completed_counts = routed_counts

    return ClusterResult(
        num_nodes=num_nodes,
        aggregate=aggregate,
        per_node=per_node,
        total_throughput_mrps=throughput,
        stall_fractions=[int(count) / n for count in stalled],
        completed=completed,
        per_node_completed=[int(count) for count in completed_counts],
        router_stats=stats,
        telemetry=snapshot,
        offered=total if timeline is not None else 0,
        lost=lost,
        goodput_mrps=throughput if timeline is not None else 0.0,
        availability=availability,
        fault_stats=fault_stats,
    )


def _slots_may_bind(
    dsts: np.ndarray,
    processing: np.ndarray,
    speeds: np.ndarray,
    occupancy: np.ndarray,
    cores: List[int],
    times: np.ndarray,
    slots: int,
    num_nodes: int,
) -> bool:
    """Predict whether send-slot backpressure can shape the run.

    The vectorized open-loop path is exact while no destination nears
    saturation (in-flight per client-destination pair stays far below
    the slot pool). A hot shard past ~85% utilization builds queues
    deep enough for the DES's slot blocking to throttle senders, so
    those runs take the sequential closed-loop path instead.
    """
    horizon = float(times[-1]) if times.size else 0.0
    if horizon <= 0:
        return False
    counts = np.bincount(dsts, minlength=num_nodes)
    mean_service = processing.mean() / speeds + occupancy
    offered = counts / horizon  # per-ns arrival rate per destination
    utilization = offered * mean_service / np.asarray(cores, dtype=float)
    return bool(utilization.max() > 0.85)


def _route_sequential(
    policy_obj,
    signal_obj,
    destinations: ZipfDestinations,
    scheme: str,
    cores: List[int],
    speeds: np.ndarray,
    occupancy: np.ndarray,
    shift: np.ndarray,
    times: np.ndarray,
    clients: np.ndarray,
    processing: np.ndarray,
    route_rng: np.random.Generator,
    mean_gap_ns: float,
    slots: int,
    static_dsts: Optional[np.ndarray],
    timeline: Optional[_FaultTimeline] = None,
):
    """Sequential event loop: load-aware routing and/or slot blocking.

    Load-aware policies (JSQ(d)/SED) are inherently state-dependent, so
    their decisions run through the rack package's policy objects
    verbatim; only the signal models are re-expressed on flat state
    (live counters, broadcast snapshots, per-client piggyback views)
    because the DES versions are event-driven. State-independent
    policies pass their precomputed destinations via ``static_dsts``
    and only pay for the closed-loop send-slot bookkeeping.

    Departure feedback — the Timeout/Callback traffic that dominates
    the DES heap — drains through a calendar queue sized to ~one event
    per bucket. Like the DES, a send finding its per-destination slot
    pool exhausted waits client-side for a replenish; the server-side
    sojourn clock starts at submission, not generation.

    With a fault ``timeline``, each request rolls its fabric fate at
    routing time (drop / delay spike / counted dup), requests routed to
    a node inside a crash window are dropped as ``crash_drops``, a
    recovery boundary floors the node's server-free times (the outage
    froze its servers), and slowdown windows scale the effective speed
    of requests launched inside them. Dropped requests never occupy a
    send slot or server and are excluded from the latency summaries.
    """
    num_nodes = len(cores)
    total = times.size
    dsts = (
        static_dsts
        if static_dsts is not None
        else np.empty(total, dtype=np.int64)
    )
    sojourns = np.empty(total)
    departures = np.empty(total)
    load_aware = policy_obj.uses_load_signal
    errors = np.empty(total) if load_aware else None
    stalled = np.zeros(num_nodes, dtype=np.int64)

    outstanding = [0] * num_nodes
    capacities = {
        node: cores[node] * float(speeds[node]) for node in range(num_nodes)
    }
    peers_of = [
        [int(node) for node in destinations.peers_of(client)]
        for client in range(num_nodes)
    ]

    is_broadcast = isinstance(signal_obj, BroadcastSignal)
    is_piggyback = isinstance(signal_obj, PiggybackSignal)
    period = signal_obj.period_ns if is_broadcast else 0.0
    next_tick = period
    snap = [0] * num_nodes
    views = (
        [[0.0] * num_nodes for _ in range(num_nodes)] if is_piggyback else None
    )

    # Per-node service state: one server-free-time heap per 1x16 node,
    # one flat per-core free-time list per 16x1 node.
    one_queue = scheme == "1x16"
    if one_queue:
        free_heaps = [[0.0] * cores[node] for node in range(num_nodes)]
        for heap in free_heaps:
            heapq.heapify(heap)
    else:
        core_free = [[0.0] * cores[node] for node in range(num_nodes)]

    inflight = [[0] * num_nodes for _ in range(num_nodes)]
    pending: dict = {}

    calendar = CalendarQueue(bucket_width=max(mean_gap_ns / num_nodes, 1.0))
    heappush = heapq.heappush
    heappop = heapq.heappop
    integers = route_rng.integers
    choose = policy_obj.choose

    # JSQ(d) dominates the sequential traffic (ext-rack, ext-scale); an
    # inlined decision loop replays PowerOfD.choose's *exact* variate
    # sequence (same rejection sampling, same tie-break draws) on flat
    # lists — no per-event estimates dict, and ``bisect`` instead of a
    # scalar ``np.searchsorted`` per candidate. Equivalence is pinned by
    # tests/test_fastpath.py against the policy-object path.
    jsq_d = None
    if isinstance(policy_obj, PowerOfD) and static_dsts is None:
        jsq_d = policy_obj.d
        jsq_cumulative = [
            [float(value) for value in destinations.cumulative_of(client)]
            for client in range(num_nodes)
        ]
    rng_random = route_rng.random
    bisect = bisect_right

    dropped = np.zeros(total, dtype=bool) if timeline is not None else None
    recoveries = timeline.recoveries if timeline is not None else []
    recovery_cursor = 0

    def submit(index: int, submit_at: float, dst: int, client: int) -> None:
        speed = speeds[dst]
        if timeline is not None:
            speed *= timeline.speed_factor(dst, submit_at)
        service = processing[index] / speed + occupancy[dst]
        if one_queue:
            heap = free_heaps[dst]
            free = heappop(heap)
            depart = (submit_at if submit_at > free else free) + service
            heappush(heap, depart)
        else:
            lanes = core_free[dst]
            lane = int(integers(0, len(lanes)))
            free = lanes[lane]
            depart = (submit_at if submit_at > free else free) + service
            lanes[lane] = depart
        departures[index] = depart
        sojourns[index] = depart - submit_at + shift[dst]
        calendar.push(depart, (dst, client, index))

    def drain(upto: float) -> None:
        while calendar:
            when = calendar.peek_time()
            if when > upto:
                return
            when, (done_node, done_client, _done_index) = calendar.pop()
            outstanding[done_node] -= 1
            if views is not None:
                views[done_client][done_node] = float(outstanding[done_node])
            inflight[done_client][done_node] -= 1
            queue = pending.get((done_client, done_node))
            if queue:
                # The freed slot's credit re-issues the oldest blocked
                # send at the replenish instant, like the DES client.
                next_index = queue.pop(0)
                inflight[done_client][done_node] += 1
                submit(next_index, when, done_node, done_client)

    for index in range(total):
        now = times[index]
        client = int(clients[index])
        while (
            recovery_cursor < len(recoveries)
            and recoveries[recovery_cursor][0] <= now
        ):
            # Heap surgery at a recovery boundary: the outage froze the
            # node's servers, so nothing can start before this instant.
            rec_time, rec_node = recoveries[recovery_cursor]
            recovery_cursor += 1
            if one_queue:
                heap = free_heaps[rec_node]
                for lane, free in enumerate(heap):
                    if free < rec_time:
                        heap[lane] = rec_time
                heapq.heapify(heap)
            else:
                lanes = core_free[rec_node]
                for lane, free in enumerate(lanes):
                    if free < rec_time:
                        lanes[lane] = rec_time
        drain(now)
        if is_broadcast:
            while now >= next_tick:
                snap = list(outstanding)
                next_tick += period

        if static_dsts is not None:
            dst = int(static_dsts[index])
        else:
            if is_broadcast:
                believe = snap
            elif is_piggyback:
                believe = views[client]
            else:
                believe = outstanding
            if jsq_d is not None:
                cumulative = jsq_cumulative[client]
                peers = peers_of[client]
                last = len(cumulative) - 1
                chosen: List[int] = []
                while len(chosen) < jsq_d:
                    position = bisect(cumulative, rng_random())
                    candidate = peers[position if position < last else last]
                    if candidate not in chosen:
                        chosen.append(candidate)
                best = min(believe[node] for node in chosen)
                tied = [node for node in chosen if believe[node] == best]
                dst = (
                    tied[0]
                    if len(tied) == 1
                    else tied[int(integers(0, len(tied)))]
                )
            else:
                estimates = {
                    node: float(believe[node]) for node in peers_of[client]
                }
                dst = choose(
                    client, destinations, estimates, capacities, route_rng
                )
            errors[index] = abs(float(believe[dst]) - outstanding[dst])
            dsts[index] = dst

        submit_at = now
        if timeline is not None:
            # Fabric traversal first, then delivery-time liveness — the
            # DES injector's order. Dropped requests never count toward
            # load signals, send slots, or server work.
            fabric_drop, spike_delay = timeline.fabric_fate(now)
            submit_at = now + spike_delay
            if fabric_drop or timeline.node_down(dst, submit_at):
                if not fabric_drop:
                    timeline.stats.crash_drops += 1
                dropped[index] = True
                departures[index] = now
                sojourns[index] = math.nan
                continue
        outstanding[dst] += 1

        if inflight[client][dst] >= slots:
            stalled[client] += 1
            pending.setdefault((client, dst), []).append(index)
        else:
            inflight[client][dst] += 1
            submit(index, submit_at, dst, client)

    drain(float("inf"))
    return dsts, sojourns, departures, errors, stalled, dropped


#: Public name for the flat-window fault timeline: the datacenter fast
#: engine (:mod:`repro.datacenter.fastdc`) replays the same
#: materialized plans inside its own sequential loop.
FaultTimeline = _FaultTimeline


def _build_snapshot(routed_counts: np.ndarray, errors: Optional[np.ndarray]):
    """A minimal telemetry snapshot matching the DES router's metrics."""
    from ..telemetry import TelemetrySnapshot
    from ..telemetry.primitives import Counter, Histogram

    counters = {}
    for node, count in enumerate(routed_counts):
        name = f"rack.routed[node{node}]"
        counter = Counter(name)
        counter.inc(int(count))
        counters[name] = counter
    histograms = {}
    if errors is not None and errors.size:
        histogram = Histogram("rack.signal_error")
        histogram.record_many(errors[errors > 0])
        histograms["rack.signal_error"] = histogram
    return TelemetrySnapshot(counters=counters, histograms=histograms)
