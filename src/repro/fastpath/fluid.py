"""Fluid/mean-field tier: racks too large for per-RPC simulation.

Above a few hundred nodes, per-RPC state is wasted effort: with K
homogeneous servers under JSQ(d)-style routing, the empirical fraction
of servers holding >= k jobs concentrates (propagation of chaos) on a
deterministic trajectory as K grows. This module computes that
trajectory directly and samples latency quantiles from its stationary
point — a 1024-node rack point in milliseconds.

The model, in units of one server's mean service time (mu = 1):

* ``s_k(t)`` = fraction of nodes with at least ``k`` jobs in system;
  ``s_0 = 1``. Each node has ``c`` servers and per-node offered load
  ``lam = per-node arrival rate x mean service time`` (stable iff
  ``lam < c``).
* JSQ(d) mean-field ODE (Mitzenmacher'96 / Vvedenskaya'96, extended to
  ``c``-server nodes):
  ``ds_k/dt = lam (s_{k-1}^d - s_k^d) - min(k, c) (s_k - s_{k+1})``.
  :func:`fluid_tail_measure` integrates it by forward Euler to the
  fixed point — the "queue-length ODE trajectory" tier of the ISSUE.
* A tagged arrival joins a node holding ``k`` jobs with probability
  ``s_k^d - s_{k+1}^d`` (the minimum of d independent samples of the
  stationary level); given ``k >= c`` it waits an Erlang(k - c + 1)
  sum of departure gaps at aggregate rate ``c``. Non-exponential
  service is folded in with the Allen-Cunneen ``(1 + cv^2)/2`` wait
  scaling — exact for the mean, an approximation for the tail.
* Policies: ``random``/``rr`` bypass the ODE (each node is an exact
  M/G/c: waiting probability from Erlang-C, the same A-C scaling);
  ``jsqD`` uses d samples; ``sed`` on a homogeneous rack is JSQ over
  the full candidate set, i.e. d = K - 1 (capped — beyond d ~ 64 the
  curves are indistinguishable from JSQ(inf)).

Quantiles come from a seeded vectorized Monte Carlo draw over the
stationary distribution (~2x10^5 tagged customers), so results are
deterministic per seed and LatencySummary-shaped like every other
engine. Cross-validation against DES/fast lives in
``tests/test_fastpath.py``; tolerance bands in EXPERIMENTS.md.

Shaped load (``arrivals:profile`` in the engine-capability matrix):
when the arrival process carries a deterministic
:class:`~repro.popload.RateProfile` intensity,
:func:`fluid_transient_measure` integrates the *transient* ODE with
lambda(t) from the profile — started from the lambda(0) stationary point —
and tagged customers are sampled at times distributed proportionally
to lambda(t) via the profile's closed-form ``integral``. ``random``/``rr``
route through the same machinery with d = 1 (the mean-field ODE with
one choice *is* random splitting), so diurnal/flash shapes stay
meaningful above the ``auto`` threshold. Transient overload (flash
peaks past ``cores``) is fine as long as the *mean* load is stable;
the backlog headroom is sized from the profile's worst excess.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..cluster.cluster import ClusterResult
from ..metrics import LatencySummary
from ..queueing.analytic import erlang_c

__all__ = [
    "fluid_tail_measure",
    "fluid_transient_measure",
    "simulate_cluster_fluid",
]

#: SED on a homogeneous rack scans all peers; beyond this many samples
#: the JSQ(d) stationary point is numerically indistinguishable.
_MAX_CHOICES = 64


def fluid_tail_measure(
    offered: float,
    num_servers: int,
    choices: int,
    k_max: Optional[int] = None,
    tol: float = 1e-12,
    max_steps: int = 500_000,
) -> np.ndarray:
    """Stationary tail measure ``s_k`` of the JSQ(d) mean-field ODE.

    Parameters are in service-time units: ``offered`` is the per-node
    arrival rate times the mean service time (must be < ``num_servers``),
    ``choices`` is d. Returns ``s[0..k_max]`` with ``s[0] = 1``.
    """
    if not 0 < offered < num_servers:
        raise ValueError(
            f"offered load {offered!r} must be in (0, {num_servers}) for stability"
        )
    if choices < 1:
        raise ValueError(f"choices must be >= 1, got {choices!r}")
    rho = offered / num_servers
    if k_max is None:
        # Past c the tail decays at least geometrically (doubly
        # exponentially for d >= 2); 80 levels of headroom covers
        # rho <= 0.97 to double precision.
        k_max = num_servers + 80
    s = np.minimum(1.0, rho ** np.maximum(np.arange(k_max + 2) - num_servers + 1, 0))
    s[0] = 1.0
    s[-1] = 0.0
    drain = np.minimum(np.arange(1, k_max + 1), num_servers).astype(float)
    dt = 0.2 / (offered + num_servers)
    for _ in range(max_steps):
        powers = s**choices
        flow_in = offered * (powers[:-2] - powers[1:-1])
        flow_out = drain * (s[1:-1] - s[2:])
        delta = dt * (flow_in - flow_out)
        s[1:-1] += delta
        np.clip(s[1:-1], 0.0, 1.0, out=s[1:-1])
        if np.abs(delta).max() < tol:
            break
    # Enforce monotonicity against Euler wiggle at the tail.
    s[1:] = np.minimum.accumulate(s[1:])
    return s[:-1]


def _join_level_distribution(s: np.ndarray, choices: int) -> np.ndarray:
    """P(tagged arrival joins a node already holding k jobs), k = 0.."""
    powers = s**choices
    probabilities = powers[:-1] - powers[1:]
    probabilities = np.append(probabilities, powers[-1])
    total = probabilities.sum()
    if total <= 0:
        raise RuntimeError("degenerate join-level distribution")
    return probabilities / total


def fluid_transient_measure(
    profile,
    horizon_ns: float,
    cores: int,
    mean_service_ns: float,
    choices: int,
    snapshots: int = 512,
    k_headroom: int = 80,
) -> Tuple[np.ndarray, np.ndarray]:
    """Transient tail-measure trajectory ``s_k(t)`` under lambda(t).

    Integrates the JSQ(d) mean-field ODE with the time-varying per-node
    intensity of ``profile`` (a :class:`~repro.popload.RateProfile`, in
    requests/second) by forward Euler, starting from the stationary
    point of lambda(0) — the fluid analogue of the per-RPC engines'
    warmup discard. Returns ``(snap_times_ns, snap_s)`` where
    ``snap_s[i]`` is the tail measure at ``snap_times_ns[i]``;
    ``snapshots`` evenly spaced rows cover ``[0, horizon_ns]``.

    The level cap is sized from the profile's worst cumulative excess
    over the service capacity, so flash peaks past ``cores`` (transient
    overload) track the growing backlog instead of saturating the grid.
    """
    if horizon_ns <= 0:
        raise ValueError(f"horizon_ns must be positive, got {horizon_ns!r}")
    if choices < 1:
        raise ValueError(f"choices must be >= 1, got {choices!r}")
    # Work in service-time units: tau = t / mean_service_ns.
    tau_max = horizon_ns / mean_service_ns
    grid = np.linspace(0.0, horizon_ns, snapshots)
    # Per-node offered load in jobs per service time at each grid time.
    lam_grid = profile.rate_array(grid) * 1e-9 * mean_service_ns
    lam_peak = float(lam_grid.max())
    lam0 = float(lam_grid[0])
    if lam0 <= 0 or lam0 >= cores:
        raise ValueError(
            f"initial per-node load {lam0!r} must be in (0, {cores}) — the "
            "trajectory starts from the lambda(0) stationary point"
        )
    # Worst cumulative excess of arrivals over capacity, in jobs: the
    # deepest the fluid backlog can get under the deterministic drift.
    cumulative = np.array([profile.integral(float(t)) for t in grid])
    drained = cores * grid / mean_service_ns
    drift = cumulative - drained
    backlog = float(np.max(drift - np.minimum.accumulate(drift)))
    k_max = cores + k_headroom + int(math.ceil(backlog))
    s = fluid_tail_measure(min(lam0, cores - 1e-9), cores, choices, k_max=k_max)
    s = np.append(s, 0.0)  # s[k_max + 1] = 0 boundary
    drain = np.minimum(np.arange(1, k_max + 1), cores).astype(float)
    dt = 0.2 / (max(lam_peak, 1.0) + cores)
    steps = max(int(tau_max / dt) + 1, 1)
    dt = tau_max / steps
    snap_s = np.empty((snapshots, k_max + 1))
    snap_s[0] = s[:-1]
    next_snap = 1
    tau = 0.0
    for _ in range(steps):
        t_ns = tau * mean_service_ns
        lam = float(profile.rate(t_ns)) * 1e-9 * mean_service_ns
        powers = s**choices
        flow_in = lam * (powers[:-2] - powers[1:-1])
        flow_out = drain * (s[1:-1] - s[2:])
        s[1:-1] += dt * (flow_in - flow_out)
        np.clip(s[1:-1], 0.0, 1.0, out=s[1:-1])
        s[1:] = np.minimum.accumulate(s[1:])
        tau += dt
        while (
            next_snap < snapshots
            and grid[next_snap] <= tau * mean_service_ns
        ):
            snap_s[next_snap] = s[:-1]
            next_snap += 1
    while next_snap < snapshots:
        snap_s[next_snap] = s[:-1]
        next_snap += 1
    return grid, snap_s


def simulate_cluster_fluid(
    num_nodes: int,
    policy: str = "random",
    per_node_mrps: float = 24.0,
    requests_per_node: int = 1000,
    cores: int = 16,
    mean_service_ns: float = 400.0,
    seed: int = 0,
    samples: int = 200_000,
    workload=None,
    overhead_ns: Optional[float] = None,
    arrival_process=None,
    horizon_ns: Optional[float] = None,
) -> ClusterResult:
    """One rack point from the fluid tier, as a ClusterResult.

    ``mean_service_ns`` is the effective per-RPC service time at a
    server (processing + calibrated chip overhead); pass ``workload``
    plus ``overhead_ns`` to sample true processing-time shapes, else
    service defaults to exponential with the given mean.
    ``requests_per_node`` only scales the reported completion count —
    the fluid tier's cost is independent of it.

    With an ``arrival_process`` whose ``.profile`` is a
    :class:`~repro.popload.RateProfile` (plus a ``horizon_ns``), the
    run integrates the transient ODE via
    :func:`fluid_transient_measure` and samples tagged customers at
    times proportional to lambda(t); ``random``/``rr`` take the ODE with
    d = 1 (random splitting) instead of the stationary Erlang-C path.
    Processes without a deterministic intensity (MMPP, population) are
    rejected — that is the ``arrivals:stochastic`` capability, which
    this tier does not have (see EXPERIMENTS.md "Engine tiers").
    """
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {num_nodes!r}")
    if per_node_mrps <= 0 or mean_service_ns <= 0:
        raise ValueError("per_node_mrps and mean_service_ns must be positive")
    offered = per_node_mrps * 1e-3 * mean_service_ns  # jobs per service time
    if offered >= cores:
        raise ValueError(
            f"per-node load {offered / cores:.2f} >= 1: the fluid tier has no "
            "stationary distribution at or past saturation"
        )

    rng = np.random.default_rng(seed)
    # Own service: true workload shape when available, else exponential.
    if workload is not None:
        base, _labels = workload.sample_batch(rng, samples)
        fixed = overhead_ns if overhead_ns is not None else 0.0
        services = base + fixed
        services *= mean_service_ns / services.mean()
    else:
        services = rng.exponential(mean_service_ns, size=samples)
    scv = float(services.var() / services.mean() ** 2)
    wait_scale = (1.0 + scv) / 2.0

    spec = policy.strip().lower()
    if arrival_process is not None:
        from ..popload.arrivals import RateProfile

        profile = getattr(arrival_process, "profile", None)
        if not isinstance(profile, RateProfile):
            raise ValueError(
                f"the fluid tier needs a deterministic RateProfile intensity; "
                f"{type(arrival_process).__name__} has none "
                "(capability 'arrivals:stochastic' — use engine='fast' or "
                "'des'; see the engine-capability matrix in EXPERIMENTS.md)"
            )
        if horizon_ns is None or horizon_ns <= 0:
            raise ValueError(
                "arrival_process needs an explicit positive horizon_ns — "
                "the transient trajectory has no intrinsic end time"
            )
        mean_offered = (
            profile.mean_rate(horizon_ns) * 1e-9 * mean_service_ns
        )
        if mean_offered >= cores:
            raise ValueError(
                f"mean per-node load {mean_offered / cores:.2f} >= 1 over the "
                "horizon: the fluid backlog would grow without bound"
            )
        if spec in ("random", "uniform", "rr", "round-robin", "roundrobin"):
            # The d = 1 mean-field ODE *is* Poisson splitting, so the
            # random/RR transient rides the same trajectory machinery.
            choices = 1
        elif spec == "sed":
            choices = min(num_nodes - 1, _MAX_CHOICES)
        elif spec.startswith("jsq"):
            choices = int(spec[3:] or "2")
        else:
            raise ValueError(f"unknown policy for the fluid tier: {policy!r}")
        grid, snap = fluid_transient_measure(
            profile, horizon_ns, cores, mean_service_ns, choices
        )
        # Tagged customers arrive with density proportional to lambda(t):
        # invert the profile's cumulative integral on the snapshot grid.
        cumulative = np.array(
            [profile.integral(float(t)) for t in grid]
        )
        targets = rng.random(samples) * cumulative[-1]
        sample_times = np.interp(targets, cumulative, grid)
        snap_index = np.searchsorted(grid, sample_times, side="right") - 1
        levels = np.empty(samples, dtype=np.int64)
        for index in np.unique(snap_index):
            mask = snap_index == index
            probabilities = _join_level_distribution(snap[index], choices)
            levels[mask] = np.searchsorted(
                np.cumsum(probabilities),
                rng.random(int(mask.sum())),
                side="right",
            )
        queued_ahead = np.maximum(levels - cores + 1, 0).astype(float)
        waits = rng.standard_gamma(queued_ahead) * (mean_service_ns / cores)
    elif spec in ("random", "uniform", "rr", "round-robin", "roundrobin"):
        # Exact per-node M/G/c: Poisson splitting keeps each node's
        # arrivals Poisson; RR's slightly smoother stream is treated
        # the same (conservative at rack sizes).
        wait_probability = erlang_c(cores, offered)
        waits = np.where(
            rng.random(samples) < wait_probability,
            rng.exponential(mean_service_ns / (cores - offered), size=samples),
            0.0,
        )
    else:
        if spec == "sed":
            choices = min(num_nodes - 1, _MAX_CHOICES)
        elif spec.startswith("jsq"):
            choices = int(spec[3:] or "2")
        else:
            raise ValueError(f"unknown policy for the fluid tier: {policy!r}")
        s = fluid_tail_measure(offered, cores, choices)
        probabilities = _join_level_distribution(s, choices)
        levels = np.searchsorted(
            np.cumsum(probabilities), rng.random(samples), side="right"
        )
        queued_ahead = np.maximum(levels - cores + 1, 0).astype(float)
        # Erlang(k - c + 1) wait at aggregate departure rate c/mean.
        waits = rng.standard_gamma(queued_ahead) * (mean_service_ns / cores)
    waits = waits * wait_scale

    sojourns = waits + services
    aggregate = LatencySummary.from_values(sojourns)
    completed = num_nodes * requests_per_node
    return ClusterResult(
        num_nodes=num_nodes,
        aggregate=aggregate,
        # Mean-field symmetry: every node sees the same distribution.
        per_node=[aggregate] * num_nodes,
        total_throughput_mrps=num_nodes * per_node_mrps,
        stall_fractions=[0.0] * num_nodes,
        completed=completed,
        per_node_completed=[requests_per_node] * num_nodes,
    )
