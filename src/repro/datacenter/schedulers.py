"""In-network scheduler models for the rack-of-racks hierarchy.

Three hierarchy models from the related work, plus the flat baseline:

* ``flat`` — no in-network help: each client samples ``d`` candidate
  *nodes* (rack drawn from the Zipf popularity, member uniform) and
  applies its policy over them — power-of-d-choices, because a flat
  client cannot scan the whole datacenter per RPC.
* ``racksched`` — RackSched-style two-layer scheduling: the spine
  picks a *rack* by aggregate load signal (the policy knob selects the
  spine discipline), then the ToR — which sees all of its servers —
  runs JSQ over the rack's members.
* ``jbsq`` — RAIN-style JBSQ(k): same two-layer routing, but the ToR
  bounds every member's queue at ``k`` outstanding RPCs and holds
  overflow in its own queue, late-binding each held RPC to the next
  member that frees a slot. The bound is engine-enforced (the fast
  tier models the hold queue; the DES approximates with immediate
  binding — see :mod:`repro.datacenter.fastdc`).
* ``nanopu`` — routing identical to ``racksched``; what changes is the
  node hardware (:data:`~repro.datacenter.topology.NODE_PROFILES`
  ``nanopu``: NI-core bypass latencies).

One scheduler object serves both engines: the DES
:class:`~repro.datacenter.router.DatacenterRouter` and the fast tier's
sequential loop call the same :meth:`DatacenterScheduler.choose` on
their live per-node / per-rack outstanding state, so routing semantics
cannot drift between tiers.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from typing import List, Optional, Sequence

import numpy as np

from .topology import DatacenterTopology

__all__ = [
    "HIERARCHIES",
    "SPINE_POLICIES",
    "DEFAULT_JBSQ_K",
    "DatacenterScheduler",
    "FlatScheduler",
    "TwoLevelScheduler",
    "make_scheduler",
]

HIERARCHIES = ("flat", "racksched", "jbsq", "nanopu")

#: Spine (rack-selection) disciplines; ``flat`` applies them per node.
SPINE_POLICIES = ("random", "jsq2", "sed")

#: Default JBSQ bound: 16 cores of on-server concurrency plus a small
#: on-NI buffer, the shallowest bound that does not idle a healthy
#: server (RAIN sizes k the same way relative to server parallelism).
DEFAULT_JBSQ_K = 20

_JSQ_PATTERN = re.compile(r"^jsq(\d+)$")


def _parse_policy(policy: str) -> tuple:
    """``("random", 0) | ("jsq", d) | ("sed", d)`` from the spec string."""
    if policy == "random":
        return "random", 0
    if policy == "sed":
        return "sed", 2
    match = _JSQ_PATTERN.match(policy)
    if match:
        d = int(match.group(1))
        if d < 1:
            raise ValueError(f"jsq fan-out must be >= 1, got {policy!r}")
        return "jsq", d
    raise ValueError(
        f"unknown spine policy {policy!r}; known: random, jsq<d>, sed"
    )


class DatacenterScheduler:
    """Base: Zipf rack popularity + shared tie-break/selection helpers.

    ``believe`` is the per-node outstanding view and ``rack_believe``
    the per-rack aggregate (dispatched + ToR-held); both engines own
    the ground truth and keep the aggregates in sync incrementally, so
    a decision never pays an O(num_nodes) scan.
    """

    #: JBSQ bound (None for unbounded hierarchies).
    bound_k: Optional[int] = None

    def __init__(
        self, topology: DatacenterTopology, policy: str = "jsq2",
        skew: float = 0.0,
    ) -> None:
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew!r}")
        self.topology = topology
        self.policy = policy
        self.mode, self.d = _parse_policy(policy)
        self.skew = skew
        weights = np.array(
            [1.0 / (rank + 1.0) ** skew for rank in range(topology.num_racks)]
        )
        cumulative = np.cumsum(weights / weights.sum())
        cumulative[-1] = 1.0
        #: Plain-float cumulative rack popularity, ``bisect``-friendly.
        self.rack_cumulative: List[float] = [float(v) for v in cumulative]
        self.capacities: Optional[List[float]] = None
        self.rack_capacities: Optional[List[float]] = None

    @property
    def label(self) -> str:
        return f"{self.hierarchy}+{self.policy}"

    def set_capacities(self, capacities: Sequence[float]) -> None:
        """Install per-node service capacities (cores x speed), once."""
        topo = self.topology
        if len(capacities) != topo.num_nodes:
            raise ValueError(
                f"capacities has {len(capacities)} entries for "
                f"{topo.num_nodes} nodes"
            )
        self.capacities = [float(value) for value in capacities]
        self.rack_capacities = [
            sum(self.capacities[node] for node in topo.members(rack))
            for rack in range(topo.num_racks)
        ]

    def _sample_rack(self, rng: np.random.Generator) -> int:
        position = bisect_right(self.rack_cumulative, float(rng.random()))
        return min(position, self.topology.num_racks - 1)

    def _sample_distinct_racks(self, count: int, rng) -> List[int]:
        count = min(count, self.topology.num_racks)
        chosen: List[int] = []
        while len(chosen) < count:
            rack = self._sample_rack(rng)
            if rack not in chosen:
                chosen.append(rack)
        return chosen

    @staticmethod
    def _pick_min(candidates, score, rng) -> int:
        """Argmin with a uniform random tie-break (matches the rack layer)."""
        best = None
        tied: List[int] = []
        for candidate in candidates:
            value = score(candidate)
            if best is None or value < best:
                best = value
                tied = [candidate]
            elif value == best:
                tied.append(candidate)
        if len(tied) == 1:
            return tied[0]
        return tied[int(rng.integers(0, len(tied)))]

    def choose(
        self,
        client: int,
        believe: Sequence[float],
        rack_believe: Sequence[float],
        rng: np.random.Generator,
    ) -> int:
        raise NotImplementedError


class FlatScheduler(DatacenterScheduler):
    """No in-network scheduler: d-sampled client-side balancing."""

    hierarchy = "flat"

    def _sample_node(self, client: int, rng) -> int:
        """One candidate: popularity-weighted rack, uniform member != client."""
        topo = self.topology
        rack = self._sample_rack(rng)
        members = topo.members(rack)
        if topo.rack_of(client) == rack:
            offset = int(rng.integers(0, topo.rack_size - 1))
            node = members[0] + offset
            return node if node < client else node + 1
        return members[0] + int(rng.integers(0, topo.rack_size))

    def choose(self, client, believe, rack_believe, rng) -> int:
        if self.mode == "random":
            return self._sample_node(client, rng)
        candidates: List[int] = []
        want = min(self.d, self.topology.num_nodes - 1)
        while len(candidates) < want:
            node = self._sample_node(client, rng)
            if node not in candidates:
                candidates.append(node)
        if self.mode == "sed":
            capacities = self.capacities
            return self._pick_min(
                candidates,
                lambda node: (believe[node] + 1.0) / capacities[node],
                rng,
            )
        return self._pick_min(candidates, lambda node: believe[node], rng)


class TwoLevelScheduler(DatacenterScheduler):
    """Spine picks the rack by aggregate signal; ToR runs JSQ inside."""

    def __init__(
        self,
        topology: DatacenterTopology,
        policy: str = "jsq2",
        skew: float = 0.0,
        hierarchy: str = "racksched",
        bound_k: Optional[int] = None,
    ) -> None:
        super().__init__(topology, policy, skew)
        self.hierarchy = hierarchy
        if bound_k is not None and bound_k < 1:
            raise ValueError(f"JBSQ bound must be >= 1, got {bound_k!r}")
        self.bound_k = bound_k

    def choose_rack(self, client, rack_believe, rng) -> int:
        if self.mode == "random":
            return self._sample_rack(rng)
        if self.mode == "jsq":
            candidates = self._sample_distinct_racks(self.d, rng)
            return self._pick_min(
                candidates, lambda rack: rack_believe[rack], rng
            )
        # SED over *all* racks: the spine sees every ToR's aggregate, so
        # unlike a flat client it can afford the full capacity-aware scan.
        capacities = self.rack_capacities
        return self._pick_min(
            range(self.topology.num_racks),
            lambda rack: (rack_believe[rack] + 1.0) / capacities[rack],
            rng,
        )

    def choose_member(self, rack, client, believe, rng) -> int:
        """ToR-local JSQ over the rack's members (client excluded)."""
        members = self.topology.members(rack)
        if self.topology.rack_of(client) == rack:
            candidates = [node for node in members if node != client]
        else:
            candidates = members
        return self._pick_min(candidates, lambda node: believe[node], rng)

    def choose(self, client, believe, rack_believe, rng) -> int:
        rack = self.choose_rack(client, rack_believe, rng)
        return self.choose_member(rack, client, believe, rng)


def make_scheduler(
    hierarchy: str,
    topology: DatacenterTopology,
    policy: str = "jsq2",
    skew: float = 0.0,
    jbsq_k: int = DEFAULT_JBSQ_K,
) -> DatacenterScheduler:
    """Build the scheduler for one hierarchy model.

    ``nanopu`` routes exactly like ``racksched`` — its difference is
    the node profile the engines apply, not the scheduling discipline.
    """
    if hierarchy == "flat":
        return FlatScheduler(topology, policy, skew)
    if hierarchy in ("racksched", "nanopu"):
        return TwoLevelScheduler(topology, policy, skew, hierarchy=hierarchy)
    if hierarchy == "jbsq":
        return TwoLevelScheduler(
            topology, policy, skew, hierarchy="jbsq", bound_k=jbsq_k
        )
    raise ValueError(
        f"unknown hierarchy {hierarchy!r}; known: {', '.join(HIERARCHIES)}"
    )
