"""Datacenter topology: racks of nodes, hardware generations, profiles.

The datacenter layer composes the existing single-rack machinery into a
rack-of-racks: ``num_racks`` equal racks of ``rack_size`` nodes each,
fronted by per-rack ToR routers that a spine fabric connects
(:class:`repro.cluster.HierarchicalFabric` prices the hops). Two knobs
make the topology more than a shape:

* **heterogeneity** — per-node ``speed_factors`` model mixed hardware
  generations (:meth:`DatacenterTopology.mixed_generations` puts the
  trailing racks on an older, slower generation);
* **node profiles** — a :class:`NodeProfile` scales the NI-pipeline
  and software-loop costs of every node *through the existing config
  objects* (:class:`~repro.arch.ChipConfig` /
  :class:`~repro.workloads.MicrobenchCosts`), not a fork of the arch
  layer. The ``nanopu`` preset models a nanoPU-style NI-core bypass:
  requests land in core-adjacent state, so poll/dispatch/CQE costs
  shrink to a quarter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "NodeProfile",
    "NODE_PROFILES",
    "node_profile",
    "DatacenterTopology",
]


@dataclass(frozen=True)
class NodeProfile:
    """Scaling of one node's fixed per-RPC costs (hardware variant).

    ``ni_scale`` multiplies the chip's NI-pipeline latencies (backend
    fixed/per-packet, dispatch, CQE write); ``sw_scale`` multiplies the
    microbenchmark loop's software costs (poll/read/send/replenish).
    ``1.0``/``1.0`` is the paper's platform.
    """

    name: str
    ni_scale: float = 1.0
    sw_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.ni_scale <= 0 or self.sw_scale <= 0:
            raise ValueError(
                f"profile scales must be positive, got "
                f"({self.ni_scale!r}, {self.sw_scale!r})"
            )

    def chip_config(self, base=None):
        """The profile's :class:`~repro.arch.ChipConfig` (scaled NI)."""
        from ..arch import ChipConfig

        config = base if base is not None else ChipConfig()
        return config.with_updates(
            backend_fixed_ns=config.backend_fixed_ns * self.ni_scale,
            backend_per_packet_ns=config.backend_per_packet_ns * self.ni_scale,
            dispatch_ns=config.dispatch_ns * self.ni_scale,
            cqe_write_ns=config.cqe_write_ns * self.ni_scale,
        )

    def costs(self, base=None):
        """The profile's :class:`~repro.workloads.MicrobenchCosts`."""
        from ..workloads import MicrobenchCosts

        costs = base if base is not None else MicrobenchCosts.lean()
        return MicrobenchCosts(
            poll_detect_ns=costs.poll_detect_ns * self.sw_scale,
            read_request_ns=costs.read_request_ns * self.sw_scale,
            send_issue_ns=costs.send_issue_ns * self.sw_scale,
            replenish_issue_ns=costs.replenish_issue_ns * self.sw_scale,
        )


#: The paper's platform, and the nanoPU-style NI-core bypass variant
#: (requests bypass the memory hierarchy into core-local state: NI
#: pipeline and the poll/read/reply loop both collapse to a quarter).
NODE_PROFILES = {
    "baseline": NodeProfile("baseline"),
    "nanopu": NodeProfile("nanopu", ni_scale=0.25, sw_scale=0.25),
}


def node_profile(name: str) -> NodeProfile:
    """Look up a :class:`NodeProfile` preset by name."""
    try:
        return NODE_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown node profile {name!r}; known: "
            f"{', '.join(sorted(NODE_PROFILES))}"
        ) from None


class DatacenterTopology:
    """``num_racks`` equal racks of ``rack_size`` nodes, id-ordered.

    Node ids are assigned rack-major: rack ``r`` holds nodes
    ``[r * rack_size, (r + 1) * rack_size)``. ``speed_factors`` (one
    per node) model hardware generations; ``profile`` names the
    :class:`NodeProfile` every node runs (the datacenter sweeps compare
    profiles fleet-wide, not per-rack).
    """

    def __init__(
        self,
        num_racks: int,
        rack_size: int,
        speed_factors: Optional[Sequence[float]] = None,
        profile: str = "baseline",
    ) -> None:
        if num_racks < 2:
            raise ValueError(f"need at least 2 racks, got {num_racks!r}")
        if rack_size < 2:
            raise ValueError(
                f"rack_size must be >= 2 (a client must have an in-rack "
                f"peer), got {rack_size!r}"
            )
        self.num_racks = num_racks
        self.rack_size = rack_size
        self.num_nodes = num_racks * rack_size
        self.profile = node_profile(profile)
        if speed_factors is not None:
            if len(speed_factors) != self.num_nodes:
                raise ValueError(
                    f"speed_factors has {len(speed_factors)} entries for "
                    f"{self.num_nodes} nodes"
                )
            if any(speed <= 0 for speed in speed_factors):
                raise ValueError("speed_factors must be positive")
            self.speed_factors: List[float] = [
                float(speed) for speed in speed_factors
            ]
        else:
            self.speed_factors = [1.0] * self.num_nodes

    @classmethod
    def mixed_generations(
        cls,
        num_racks: int,
        rack_size: int,
        old_racks: int,
        old_speed: float = 0.7,
        profile: str = "baseline",
    ) -> "DatacenterTopology":
        """Trailing ``old_racks`` racks on an older, slower generation."""
        if not 0 <= old_racks <= num_racks:
            raise ValueError(
                f"old_racks must be in [0, {num_racks}], got {old_racks!r}"
            )
        speeds = [1.0] * (num_racks - old_racks) * rack_size + [
            float(old_speed)
        ] * old_racks * rack_size
        return cls(num_racks, rack_size, speed_factors=speeds, profile=profile)

    def rack_of(self, node: int) -> int:
        return node // self.rack_size

    def members(self, rack: int) -> range:
        """Node ids of one rack."""
        if not 0 <= rack < self.num_racks:
            raise ValueError(f"rack {rack!r} out of range")
        return range(rack * self.rack_size, (rack + 1) * self.rack_size)

    def rack_speed(self, rack: int) -> float:
        """Mean speed factor of one rack's members."""
        members = self.members(rack)
        return sum(self.speed_factors[node] for node in members) / len(members)

    def fabric(
        self,
        racks_per_pod: Optional[int] = None,
        intra_rack_ns: float = 100.0,
        inter_rack_ns: float = 500.0,
        inter_pod_ns: float = 1000.0,
    ):
        """The matching :class:`~repro.cluster.HierarchicalFabric`."""
        from ..cluster import HierarchicalFabric

        return HierarchicalFabric(
            self.num_nodes,
            self.rack_size,
            racks_per_pod=racks_per_pod,
            intra_rack_ns=intra_rack_ns,
            inter_rack_ns=inter_rack_ns,
            inter_pod_ns=inter_pod_ns,
        )

    def describe(self) -> str:
        return (
            f"{self.num_racks} racks x {self.rack_size} nodes "
            f"({self.num_nodes} total, profile={self.profile.name})"
        )
