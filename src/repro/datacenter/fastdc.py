"""Fast-tier datacenter engine: two-level routing on the calendar queue.

The vectorized rack engine (:mod:`repro.fastpath.fastcluster`) knows one
rack; this module is its rack-of-racks sibling. Routing is inherently
state-dependent here — every hierarchy model reads live per-node and
per-rack outstanding counts — so the whole run is one sequential event
loop in the fastcluster style: batched arrival/service sampling, a
:class:`~repro.fastpath.calendar.CalendarQueue` for departures, a
:class:`~repro.fastpath.fastcluster.FaultTimeline` for materialized
fault plans, and per-node server-free-time heaps (every node runs the
paper's 1x16 single-queue scheme, the RPCValet configuration).

Fidelity notes, matching the DES cross-check in ``ext-datacenter``:

* **Calibration** — per-RPC fixed overhead comes from the same 2-node
  light-load DES probe recipe as the rack engine, but run with the
  topology's :class:`~repro.datacenter.topology.NodeProfile` costs and
  chip config, so the ``nanopu`` profile is anchored against a DES
  that actually runs the reduced NI-bypass latencies (not an ad-hoc
  scale on the baseline calibration).
* **JBSQ(k)** — the ToR hold queue is modeled exactly: a rack whose
  least-loaded member sits at the bound holds the RPC at the ToR
  (counted in the rack's aggregate signal) and late-binds it to the
  member that next frees a slot; held time stays on the RPC's sojourn
  clock. The DES counterpart cannot hold (a destination is needed at
  issue time), so the paired cross-check runs sub-critical where the
  bound rarely binds.
* **Send slots** — not modeled: a datacenter client sprays across
  hundreds of destinations, so the per-(client, dst) 32-slot pools of
  the soNUMA messaging domain cannot bind at sub-critical load
  (``stall_fractions`` reports zeros).
"""

from __future__ import annotations

import heapq
import math
from functools import lru_cache
from typing import Dict, List, Optional

import numpy as np

from ..cluster.cluster import ClusterResult
from ..fastpath.calendar import CalendarQueue
from ..fastpath.fastcluster import FaultTimeline, calibrated_scheme_profile
from ..metrics import LatencySummary
from ..rack.router import RouterStats
from .schedulers import DEFAULT_JBSQ_K, make_scheduler
from .topology import DatacenterTopology, node_profile

__all__ = [
    "calibrated_profile_overhead_ns",
    "simulate_datacenter_fast",
]


def _profile_probe_overhead_ns(profile_name: str, cores: int, probe_seed: int) -> float:
    """Light-load DES probe with the profile's costs/config installed."""
    from ..balancing import SingleQueue
    from ..cluster import Cluster
    from ..workloads import HerdWorkload

    profile = node_profile(profile_name)
    workload = HerdWorkload()
    cluster = Cluster(
        num_nodes=2,
        scheme_factory=SingleQueue,
        workload=workload,
        config=profile.chip_config(),
        costs=profile.costs(),
        seed=probe_seed,
        core_counts=[cores, cores],
    )
    result = cluster.run(per_node_mrps=2.0, requests_per_node=600)
    return max(result.aggregate.mean - workload.mean_processing_ns, 0.0)


@lru_cache(maxsize=None)
def calibrated_profile_overhead_ns(
    profile_name: str, cores: int = 16, probe_seed: int = 0
) -> float:
    """DES-anchored fixed per-RPC overhead for one node profile.

    The baseline profile delegates to the rack engine's cached 1x16
    probe (identical scenario), so datacenter and rack sweeps share one
    calibration; other profiles run the probe with their own scaled
    cost objects. 1x16's occupancy ≈ total overhead (the shared-queue
    waits are insensitive to the occupancy/shift split — see
    :func:`~repro.fastpath.fastcluster.calibrated_scheme_profile`), so
    a single number suffices.
    """
    if node_profile(profile_name) == node_profile("baseline"):
        occupancy, shift = calibrated_scheme_profile("1x16", cores, probe_seed)
        return occupancy + shift
    return _profile_probe_overhead_ns(profile_name, cores, probe_seed)


def simulate_datacenter_fast(
    topology: DatacenterTopology,
    hierarchy: str = "racksched",
    policy: str = "jsq2",
    skew: float = 0.0,
    jbsq_k: int = DEFAULT_JBSQ_K,
    per_node_mrps: float = 20.0,
    requests_per_node: int = 1000,
    cores: int = 16,
    seed: int = 0,
    warmup_fraction: float = 0.1,
    faults=None,
    arrival_process=None,
    telemetry: bool = False,
    _audit: Optional[Dict[str, object]] = None,
) -> ClusterResult:
    """Run one datacenter scenario on the fast tier.

    Returns the same :class:`~repro.cluster.cluster.ClusterResult`
    shape as the rack engines, so the ``ext-datacenter`` driver can
    switch tiers without touching its analysis. ``_audit``, when a
    dict, receives engine internals the result shape has no field for
    (JBSQ ``holds``/``max_outstanding``; used by the bound-invariant
    tests and the driver's hold column).
    """
    if per_node_mrps <= 0 or requests_per_node <= 0:
        raise ValueError("per_node_mrps and requests_per_node must be positive")
    from ..workloads import HerdWorkload

    num_nodes = topology.num_nodes
    num_racks = topology.num_racks
    rack_of = [topology.rack_of(node) for node in range(num_nodes)]
    speeds = np.asarray(topology.speed_factors, dtype=float)

    profile = (
        node_profile("nanopu") if hierarchy == "nanopu" else topology.profile
    )
    overhead = calibrated_profile_overhead_ns(profile.name, cores)

    scheduler = make_scheduler(
        hierarchy, topology, policy=policy, skew=skew, jbsq_k=jbsq_k
    )
    scheduler.set_capacities(
        [cores * float(speeds[node]) for node in range(num_nodes)]
    )
    bound = scheduler.bound_k

    workload = HerdWorkload()
    arrival_rng, service_rng, route_rng = (
        np.random.default_rng(child)
        for child in np.random.SeedSequence(seed).spawn(3)
    )

    # Batched per-client arrival streams, merged with one stable sort
    # (the fastcluster recipe, verbatim).
    n = requests_per_node
    mean_gap_ns = 1e3 / per_node_mrps
    if arrival_process is not None:
        mean_rate = arrival_process.mean_rate_rps
        if mean_rate > 0:
            mean_gap_ns = 1e9 / mean_rate
        gaps = np.stack(
            [arrival_process.sample_gaps(arrival_rng, n) for _ in range(num_nodes)]
        )
    else:
        gaps = arrival_rng.exponential(mean_gap_ns, size=(num_nodes, n))
    flat_times = np.cumsum(gaps, axis=1).ravel()
    flat_clients = np.repeat(np.arange(num_nodes), n)
    order = np.argsort(flat_times, kind="stable")
    times = flat_times[order]
    clients = flat_clients[order]

    processing = np.empty(num_nodes * n)
    for client in range(num_nodes):
        samples, _labels = workload.sample_batch(service_rng, n)
        processing[client * n : (client + 1) * n] = samples
    processing = processing[order]

    total = times.size
    timeline: Optional[FaultTimeline] = None
    if faults is not None and not getattr(faults, "is_trivial", False):
        timeline = FaultTimeline(faults, num_nodes, float(times[-1]), seed)

    dsts = np.empty(total, dtype=np.int64)
    sojourns = np.empty(total)
    departures = np.empty(total)
    dropped = np.zeros(total, dtype=bool) if timeline is not None else None

    outstanding = [0] * num_nodes
    #: Per-rack aggregate the spine reads: dispatched + ToR-held.
    rack_load = [0] * num_racks
    free_heaps = [[0.0] * cores for _ in range(num_nodes)]
    for heap in free_heaps:
        heapq.heapify(heap)
    hold: List[List[tuple]] = [[] for _ in range(num_racks)]
    holds = 0
    max_outstanding = 0

    calendar = CalendarQueue(bucket_width=max(mean_gap_ns / num_nodes, 1.0))
    heappush = heapq.heappush
    heappop = heapq.heappop
    recoveries = timeline.recoveries if timeline is not None else []
    recovery_cursor = 0

    def submit(index: int, start_at: float, dst: int, entered_at: float) -> None:
        """Dispatch one RPC to ``dst``; sojourn clock runs from entry.

        ``entered_at`` is when the RPC entered the datapath (arrival,
        plus any fabric spike); a JBSQ hold keeps that clock running,
        so held time is paid on the sojourn like the real ToR queue.
        """
        nonlocal max_outstanding
        if outstanding[dst] > max_outstanding:
            max_outstanding = outstanding[dst]
        speed = speeds[dst]
        if timeline is not None:
            speed *= timeline.speed_factor(dst, start_at)
        service = processing[index] / speed + overhead
        heap = free_heaps[dst]
        free = heappop(heap)
        depart = (start_at if start_at > free else free) + service
        heappush(heap, depart)
        dsts[index] = dst
        departures[index] = depart
        sojourns[index] = depart - entered_at
        calendar.push(depart, (dst, index))

    def drain(upto: float) -> None:
        nonlocal holds
        while calendar:
            when = calendar.peek_time()
            if when > upto:
                return
            when, (done_node, _done_index) = calendar.pop()
            outstanding[done_node] -= 1
            rack = rack_of[done_node]
            rack_load[rack] -= 1
            if bound is not None:
                queue = hold[rack]
                if queue and outstanding[done_node] < bound:
                    # Late binding: the freed member is by construction
                    # the rack's first slot below the bound, so the
                    # oldest held RPC binds to it at the free instant.
                    next_index, entered_at = queue.pop(0)
                    outstanding[done_node] += 1
                    submit(next_index, when, done_node, entered_at)

    for index in range(total):
        now = times[index]
        client = int(clients[index])
        while (
            recovery_cursor < len(recoveries)
            and recoveries[recovery_cursor][0] <= now
        ):
            # Recovery boundary: the outage froze the node's servers,
            # so nothing can start before this instant (fastcluster's
            # heap surgery).
            rec_time, rec_node = recoveries[recovery_cursor]
            recovery_cursor += 1
            heap = free_heaps[rec_node]
            for lane, free in enumerate(heap):
                if free < rec_time:
                    heap[lane] = rec_time
            heapq.heapify(heap)
        drain(now)

        dst = scheduler.choose(client, outstanding, rack_load, route_rng)

        entered_at = now
        if timeline is not None:
            # Fabric traversal first, then delivery-time liveness — the
            # DES injector's order. Dropped requests never count toward
            # load signals or server work.
            fabric_drop, spike_delay = timeline.fabric_fate(now)
            entered_at = now + spike_delay
            if fabric_drop or timeline.node_down(dst, entered_at):
                if not fabric_drop:
                    timeline.stats.crash_drops += 1
                dropped[index] = True
                dsts[index] = dst
                departures[index] = now
                sojourns[index] = math.nan
                continue

        rack = rack_of[dst]
        if bound is not None and outstanding[dst] >= bound:
            # The rack's least-loaded member is at the bound: every
            # member is full, so the ToR holds the RPC (still counted
            # in the rack aggregate the spine reads).
            holds += 1
            rack_load[rack] += 1
            hold[rack].append((index, entered_at))
        else:
            outstanding[dst] += 1
            rack_load[rack] += 1
            submit(index, entered_at, dst, entered_at)

    drain(float("inf"))
    assert all(not queue for queue in hold), "ToR hold queues must drain"

    skip = int(total * warmup_fraction)
    kept_sojourns = sojourns[skip:]
    kept_dsts = dsts[skip:]
    if dropped is not None:
        kept_ok = ~dropped[skip:]
        kept_sojourns = kept_sojourns[kept_ok]
        kept_dsts = kept_dsts[kept_ok]
    aggregate = LatencySummary.from_values(kept_sojourns)
    per_node = [
        LatencySummary.from_values(kept_sojourns[kept_dsts == node])
        if np.any(kept_dsts == node)
        else LatencySummary.empty()
        for node in range(num_nodes)
    ]

    elapsed_ns = float(departures.max())
    routed_counts = np.bincount(dsts, minlength=num_nodes)
    stats = RouterStats(
        policy=scheduler.label,
        signal="fresh",
        skew=skew,
        routed=[int(count) for count in routed_counts],
        decisions=total,
    )

    snapshot = None
    if telemetry:
        from ..fastpath.fastcluster import _build_snapshot

        snapshot = _build_snapshot(routed_counts, None)

    lost = int(np.count_nonzero(dropped)) if dropped is not None else 0
    completed = total - lost
    throughput = completed / elapsed_ns * 1e3 if elapsed_ns > 0 else 0.0
    availability = None
    fault_stats = None
    if timeline is not None:
        availability = timeline.finalize(elapsed_ns, total, lost)
        fault_stats = timeline.stats
        completed_counts = np.bincount(dsts[~dropped], minlength=num_nodes)
    else:
        completed_counts = routed_counts

    if _audit is not None:
        _audit["holds"] = holds
        _audit["max_outstanding"] = max_outstanding
        _audit["bound_k"] = bound

    return ClusterResult(
        num_nodes=num_nodes,
        aggregate=aggregate,
        per_node=per_node,
        total_throughput_mrps=throughput,
        stall_fractions=[0.0] * num_nodes,
        completed=completed,
        per_node_completed=[int(count) for count in completed_counts],
        router_stats=stats,
        telemetry=snapshot,
        offered=total if timeline is not None else 0,
        lost=lost,
        goodput_mrps=throughput if timeline is not None else 0.0,
        availability=availability,
        fault_stats=fault_stats,
    )
