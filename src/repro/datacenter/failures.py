"""Correlated failure domains: whole racks failing as one FaultPlan group.

Single-node crashes (:mod:`repro.faults`) model independent failures;
a datacenter's dominant outages are *correlated* — a rack PDU trips, a
ToR crashes — taking every member node out at the same instant. These
helpers expand a rack-level event into the explicit per-member
:class:`~repro.faults.NodeCrash` group the existing fault machinery
executes, so both simulation tiers (the DES injector and the fast
tier's :class:`~repro.fastpath.fastcluster.FaultTimeline`) replay the
correlated outage with zero new event types.

Both helpers produce the same member-crash group; the distinction is
semantic and lives in the caller's narrative: a power loss kills the
servers (in-flight work frozen until the outage ends — exactly
``NodeCrash``'s recovery semantics), while a ToR crash makes them
unreachable (arriving requests drop at the NI, which ``NodeCrash``
also models). At the fidelity of this layer the two coincide.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..faults import FaultPlan
from ..faults.plan import NodeCrash
from .topology import DatacenterTopology

__all__ = ["rack_power_loss", "tor_crash", "merge_plans"]


def _rack_crash_events(
    topology: DatacenterTopology,
    rack: int,
    at_ns: float,
    outage_ns: Optional[float],
) -> tuple:
    if not 0 <= rack < topology.num_racks:
        raise ValueError(
            f"rack {rack!r} out of range [0, {topology.num_racks})"
        )
    return tuple(
        NodeCrash(node=node, at_ns=at_ns, outage_ns=outage_ns)
        for node in topology.members(rack)
    )


def rack_power_loss(
    topology: DatacenterTopology,
    rack: int,
    at_ns: float,
    outage_ns: Optional[float] = None,
) -> FaultPlan:
    """Whole-rack PDU trip: every member crashes at ``at_ns``.

    ``outage_ns=None`` is a permanent loss; otherwise the rack powers
    back up together after the outage.
    """
    return FaultPlan(events=_rack_crash_events(topology, rack, at_ns, outage_ns))


def tor_crash(
    topology: DatacenterTopology,
    rack: int,
    at_ns: float,
    outage_ns: Optional[float] = None,
) -> FaultPlan:
    """ToR switch crash: the rack's members become unreachable as one."""
    return FaultPlan(events=_rack_crash_events(topology, rack, at_ns, outage_ns))


def merge_plans(plans: Iterable[FaultPlan]) -> FaultPlan:
    """Combine explicit-event plans into one (events concatenated).

    Only explicit events merge — rate-based noise fields must agree
    with the defaults, because summing rates across plans has no
    single right answer and silently keeping one plan's rates would
    mis-state the scenario.
    """
    merged: tuple = ()
    reference = FaultPlan()
    for plan in plans:
        for field in (
            "crash_rate_hz",
            "slowdown_rate_hz",
            "drop_prob",
            "dup_prob",
            "spike_prob",
        ):
            if getattr(plan, field) != getattr(reference, field):
                raise ValueError(
                    f"merge_plans only merges explicit events; plan has "
                    f"non-default {field}"
                )
        merged += plan.events
    return FaultPlan(events=merged)
