"""DES-side datacenter router: the scheduler models on the ground truth.

:class:`DatacenterRouter` plugs the hierarchy schedulers into the
discrete-event :class:`~repro.cluster.Cluster` through the existing
:class:`~repro.rack.RackRouter` interface, so the ground-truth tier can
cross-check the fast datacenter engine point by point. The in-network
schedulers read *fresh* state by construction — a ToR/spine sees its
own counters, there is no stale-signal model to emulate — so the
router's ``outstanding`` ground truth doubles as the believed view and
the per-rack aggregates are maintained incrementally on every decision
and completion.

One deliberate semantic gap, shared with the fast tier's docs: the DES
traffic generator needs a destination at issue time, so the JBSQ(k)
bound cannot *hold* an RPC here — the router immediately binds to the
least-loaded member (the k → ∞ limit). The fast tier models the true
ToR hold queue; the DES cross-check grid therefore runs sub-critical,
where the bound rarely binds and the two semantics coincide.
"""

from __future__ import annotations

import numpy as np

from ..rack.router import RackRouter, RouterStats
from .schedulers import DEFAULT_JBSQ_K, make_scheduler
from .topology import DatacenterTopology

__all__ = ["DatacenterRouter"]


class DatacenterRouter(RackRouter):
    """Two-level (spine + ToR) routing for a DES cluster run."""

    def __init__(
        self,
        topology: DatacenterTopology,
        hierarchy: str = "racksched",
        policy: str = "jsq2",
        skew: float = 0.0,
        jbsq_k: int = DEFAULT_JBSQ_K,
    ) -> None:
        # Base init wires the bookkeeping surface the cluster expects
        # (outstanding, stats, signal); the scheduler replaces the
        # flat policy/signal pair at decision time.
        super().__init__(policy="random", signal="fresh", skew=0.0)
        self.topology = topology
        self.scheduler = make_scheduler(
            hierarchy, topology, policy=policy, skew=skew, jbsq_k=jbsq_k
        )
        self.stats = RouterStats(
            policy=self.scheduler.label, signal="fresh", skew=skew
        )
        self.rack_outstanding = [0] * topology.num_racks

    def bind(self, cluster) -> None:
        if cluster.num_nodes != self.topology.num_nodes:
            raise ValueError(
                f"cluster has {cluster.num_nodes} nodes but the topology "
                f"expects {self.topology.num_nodes}"
            )
        super().bind(cluster)
        self.rack_outstanding = [0] * self.topology.num_racks
        self.scheduler.set_capacities(
            [cluster.capacity_weight(node) for node in range(self.num_nodes)]
        )

    def choose(self, client: int, rng: np.random.Generator) -> int:
        dst = self.scheduler.choose(
            client, self.outstanding, self.rack_outstanding, rng
        )
        capture = self.trace_capture
        if capture is not None:
            self.trace_capture = None
            capture.note_decision(
                policy=self.scheduler.label,
                signal="fresh",
                dst=dst,
                estimate=float(self.outstanding[dst]),
                outstanding=self.outstanding[dst],
                candidates=self.num_nodes - 1,
                suspected=0,
            )
        # Fresh in-network state: the believed and true views coincide,
        # so the staleness error is identically zero (still counted, so
        # mean_signal_error stays well-defined for load-aware sweeps).
        self.stats.signal_error_count += 1
        self.outstanding[dst] += 1
        self.rack_outstanding[self.topology.rack_of(dst)] += 1
        self.stats.routed[dst] += 1
        self.stats.decisions += 1
        if self.decision_counters is not None:
            self.decision_counters[dst].inc()
        return dst

    def on_complete(self, server: int) -> float:
        self.rack_outstanding[self.topology.rack_of(server)] -= 1
        return super().on_complete(server)

    def on_attempt_abandoned(self, server: int) -> None:
        self.rack_outstanding[self.topology.rack_of(server)] -= 1
        super().on_attempt_abandoned(server)
