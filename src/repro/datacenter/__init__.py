"""Rack-of-racks datacenter hierarchy with in-network scheduler models.

The third level on top of the chip (:mod:`repro.arch`) and rack
(:mod:`repro.rack`) layers: a spine fabric connects per-rack ToR
routers, and the in-network scheduler designs from the related work —
RackSched-style two-layer scheduling, RAIN-style bounded JBSQ(k), and
nanoPU-style NI-core bypass node profiles — become composable models
over the existing cluster machinery. See ``ext-datacenter`` in
EXPERIMENTS.md for the sweep this package exists to answer.
"""

from .failures import merge_plans, rack_power_loss, tor_crash
from .fastdc import calibrated_profile_overhead_ns, simulate_datacenter_fast
from .router import DatacenterRouter
from .schedulers import (
    DEFAULT_JBSQ_K,
    HIERARCHIES,
    SPINE_POLICIES,
    DatacenterScheduler,
    FlatScheduler,
    TwoLevelScheduler,
    make_scheduler,
)
from .topology import NODE_PROFILES, DatacenterTopology, NodeProfile, node_profile

__all__ = [
    "DatacenterTopology",
    "NodeProfile",
    "NODE_PROFILES",
    "node_profile",
    "HIERARCHIES",
    "SPINE_POLICIES",
    "DEFAULT_JBSQ_K",
    "DatacenterScheduler",
    "FlatScheduler",
    "TwoLevelScheduler",
    "make_scheduler",
    "DatacenterRouter",
    "simulate_datacenter_fast",
    "calibrated_profile_overhead_ns",
    "rack_power_loss",
    "tor_crash",
    "merge_plans",
]
