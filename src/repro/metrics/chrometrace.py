"""Chrome-trace export of per-message timelines.

Converts completed :class:`~repro.arch.packets.SendMessage` records
into the Trace Event Format consumed by ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev): load the JSON and see every RPC as
a bar on its core's track, with NI stages on dedicated tracks. The
visual version of :mod:`repro.metrics.breakdown`.

Usage::

    result = system.run_point(20.0, 5_000, keep_messages=True)
    export_chrome_trace(result.messages, "rpcs.trace.json")
"""

from __future__ import annotations

import json
from typing import IO, List, Sequence, Union

__all__ = ["chrome_trace_events", "export_chrome_trace"]

#: Trace timestamps are in microseconds; the simulator uses ns.
_NS_TO_US = 1e-3


def _event(name: str, ts_ns: float, dur_ns: float, pid: int, tid: str, **args):
    event = {
        "name": name,
        "ph": "X",  # complete event
        "ts": ts_ns * _NS_TO_US,
        "dur": max(dur_ns, 0.0) * _NS_TO_US,
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = args
    return event


def chrome_trace_events(messages: Sequence) -> List[dict]:
    """Build the trace event list for completed messages.

    Tracks: one per NI backend (reassembly), one for each dispatcher
    group (shared-CQ wait), and one per core (execution). Incomplete
    messages raise.
    """
    events: List[dict] = []
    for msg in messages:
        if msg.t_replenish is None:
            raise ValueError(f"message {msg.msg_id} has not completed")
        label = f"rpc {msg.msg_id} ({msg.label})"
        events.append(
            _event(
                label,
                msg.t_arrival,
                msg.t_reassembled - msg.t_arrival,
                pid=0,
                tid=f"NI backend {msg.backend_id}",
                src_node=msg.src_node,
                packets=msg.num_packets,
            )
        )
        events.append(
            _event(
                label,
                msg.t_reassembled,
                msg.t_dispatch - msg.t_reassembled,
                pid=0,
                tid=f"dispatcher {msg.group_id} (shared CQ)",
            )
        )
        events.append(
            _event(
                label,
                msg.t_dispatch,
                msg.t_replenish - msg.t_dispatch,
                pid=0,
                tid=f"core {msg.core_id:02d}",
                service_ns=msg.service_ns,
                latency_ns=msg.latency_ns,
            )
        )
    return events


def export_chrome_trace(
    messages: Sequence, destination: Union[str, IO[str]]
) -> int:
    """Write messages as a Chrome-trace JSON file; returns event count.

    ``destination`` is a path or an open text file object.
    """
    events = chrome_trace_events(messages)
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    if hasattr(destination, "write"):
        json.dump(payload, destination)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    return len(events)
