"""Chrome-trace export of per-message timelines and counter tracks.

Converts completed :class:`~repro.arch.packets.SendMessage` records
into the Trace Event Format consumed by ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev): load the JSON and see every RPC as
a bar on its core's track, with NI stages on dedicated tracks. The
visual version of :mod:`repro.metrics.breakdown`.

Telemetry time series (queue depths, per-core outstanding counts — see
:mod:`repro.telemetry`) export as Perfetto **counter tracks** that
render as stepped area charts alongside the per-RPC bars, so a p99
outlier bar can be read against the CQ backlog that caused it.

Usage::

    result = system.run_point(20.0, 5_000, keep_messages=True, telemetry=True)
    export_chrome_trace(result.messages, "rpcs.trace.json", telemetry=result.telemetry)
"""

from __future__ import annotations

import json
from typing import IO, List, Sequence, Union

__all__ = [
    "chrome_trace_events",
    "counter_track_events",
    "telemetry_counter_events",
    "export_chrome_trace",
]

#: Trace timestamps are in microseconds; the simulator uses ns.
_NS_TO_US = 1e-3


def _event(name: str, ts_ns: float, dur_ns: float, pid: int, tid: str, **args):
    event = {
        "name": name,
        "ph": "X",  # complete event
        "ts": ts_ns * _NS_TO_US,
        "dur": max(dur_ns, 0.0) * _NS_TO_US,
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = args
    return event


def chrome_trace_events(messages: Sequence) -> List[dict]:
    """Build the trace event list for completed messages.

    Tracks: one per NI backend (reassembly), one for each dispatcher
    group (shared-CQ wait), and one per core (execution). Incomplete
    messages raise.
    """
    events: List[dict] = []
    for msg in messages:
        if msg.t_replenish is None:
            raise ValueError(f"message {msg.msg_id} has not completed")
        label = f"rpc {msg.msg_id} ({msg.label})"
        events.append(
            _event(
                label,
                msg.t_arrival,
                msg.t_reassembled - msg.t_arrival,
                pid=0,
                tid=f"NI backend {msg.backend_id}",
                src_node=msg.src_node,
                packets=msg.num_packets,
            )
        )
        events.append(
            _event(
                label,
                msg.t_reassembled,
                msg.t_dispatch - msg.t_reassembled,
                pid=0,
                tid=f"dispatcher {msg.group_id} (shared CQ)",
            )
        )
        events.append(
            _event(
                label,
                msg.t_dispatch,
                msg.t_replenish - msg.t_dispatch,
                pid=0,
                tid=f"core {msg.core_id:02d}",
                service_ns=msg.service_ns,
                latency_ns=msg.latency_ns,
            )
        )
    return events


def counter_track_events(
    name: str,
    times_ns: Sequence[float],
    values: Sequence[float],
    pid: int = 0,
) -> List[dict]:
    """Build Perfetto counter ("ph": "C") events for one value series.

    Counter events render as a stepped area chart on a track named
    ``name``. Times are simulator ns (converted to trace µs); values
    are emitted as-is.
    """
    if len(times_ns) != len(values):
        raise ValueError(
            f"times and values differ in length: {len(times_ns)} vs {len(values)}"
        )
    return [
        {
            "name": name,
            "ph": "C",
            "ts": t * _NS_TO_US,
            "pid": pid,
            "args": {"value": v},
        }
        for t, v in zip(times_ns, values)
    ]


def telemetry_counter_events(telemetry, pid: int = 0) -> List[dict]:
    """Counter tracks for every time series of a telemetry snapshot.

    ``telemetry`` is a :class:`repro.telemetry.TelemetrySnapshot` (duck
    typed: anything with a ``series`` mapping of name →
    ``(times, values)`` pairs). Series are emitted in name order so the
    output is deterministic.
    """
    events: List[dict] = []
    for name in sorted(telemetry.series):
        series = telemetry.series[name]
        events.extend(counter_track_events(name, series.times, series.values, pid=pid))
    return events


def export_chrome_trace(
    messages: Sequence,
    destination: Union[str, IO[str]],
    telemetry=None,
) -> int:
    """Write messages as a Chrome-trace JSON file; returns event count.

    ``destination`` is a path or an open text file object. When a
    telemetry snapshot is given, its time series are added as counter
    tracks next to the per-RPC bars.
    """
    events = chrome_trace_events(messages)
    if telemetry is not None:
        events.extend(telemetry_counter_events(telemetry))
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    if hasattr(destination, "write"):
        json.dump(payload, destination)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    return len(events)
