"""Latency recording and summary statistics.

Every experiment funnels per-request latencies through a
:class:`LatencyRecorder`, which supports class labels (e.g. Masstree
``get`` vs ``scan``), warmup trimming, and exact percentiles.
:class:`StreamingLatencyRecorder` is the constant-memory alternative
for runs that only consume percentiles and tolerate the telemetry
histogram's bucket-ratio error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["LatencyRecorder", "LatencySummary", "StreamingLatencyRecorder"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a set of latencies (same unit as input)."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    p999: float
    max: float

    @property
    def is_empty(self) -> bool:
        """True when no samples backed this summary (all stats are NaN).

        A run that completes zero RPCs (e.g. every request lost to an
        injected crash) must produce this, never an exception.
        """
        return self.count == 0

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The canonical zero-sample summary: ``count=0``, NaN stats."""
        nan = float("nan")
        return cls(0, nan, nan, nan, nan, nan, nan, nan)

    @classmethod
    def from_values(cls, values: np.ndarray) -> "LatencySummary":
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return cls.empty()
        p50, p90, p95, p99, p999 = np.percentile(
            values, [50.0, 90.0, 95.0, 99.0, 99.9]
        )
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            p50=float(p50),
            p90=float(p90),
            p95=float(p95),
            p99=float(p99),
            p999=float(p999),
            max=float(values.max()),
        )

    def scaled(self, factor: float) -> "LatencySummary":
        """Return a copy with all latency fields multiplied by ``factor``.

        Used to express tails in multiples of the mean service time S̄,
        as the paper's Fig. 2 and Fig. 9 do.
        """
        return LatencySummary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p90=self.p90 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            p999=self.p999 * factor,
            max=self.max * factor,
        )


class LatencyRecorder:
    """Accumulates ``(completion_time, latency, label)`` observations."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._latencies: List[float] = []
        self._labels: List[str] = []

    def record(self, completion_time: float, latency: float, label: str = "rpc") -> None:
        """Record one completed request."""
        if latency < 0:
            raise ValueError(f"negative latency {latency!r} at t={completion_time!r}")
        self._times.append(completion_time)
        self._latencies.append(latency)
        self._labels.append(label)

    def __len__(self) -> int:
        return len(self._latencies)

    @property
    def labels(self) -> List[str]:
        """Distinct labels seen, in first-seen order."""
        seen: Dict[str, None] = {}
        for label in self._labels:
            seen.setdefault(label)
        return list(seen)

    def latencies(
        self,
        label: Optional[str] = None,
        warmup_time: float = 0.0,
        warmup_fraction: float = 0.0,
    ) -> np.ndarray:
        """Latency array, optionally filtered by label and warmup-trimmed.

        ``warmup_fraction`` removes the earliest-completing fraction of
        requests; ``warmup_time`` removes completions before an absolute
        time. Both may be combined (union of exclusions).
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(f"warmup_fraction must be in [0,1), got {warmup_fraction!r}")
        times = np.asarray(self._times)
        lats = np.asarray(self._latencies)
        mask = np.ones(lats.size, dtype=bool)
        if label is not None:
            mask &= np.array([lbl == label for lbl in self._labels])
        if warmup_time > 0.0:
            mask &= times >= warmup_time
        if warmup_fraction > 0.0 and lats.size:
            cutoff = np.quantile(times, warmup_fraction)
            mask &= times > cutoff
        return lats[mask]

    def summary(
        self,
        label: Optional[str] = None,
        warmup_time: float = 0.0,
        warmup_fraction: float = 0.0,
    ) -> LatencySummary:
        """Summary statistics (see :meth:`latencies` for filtering)."""
        return LatencySummary.from_values(
            self.latencies(label, warmup_time, warmup_fraction)
        )

    def throughput(
        self, label: Optional[str] = None, warmup_time: float = 0.0
    ) -> float:
        """Completed requests per unit time over the measured window.

        The window spans from ``warmup_time`` (or the first completion)
        to the last completion.
        """
        times = np.asarray(self._times)
        if label is not None:
            mask = np.array([lbl == label for lbl in self._labels])
            times = times[mask]
        times = times[times >= warmup_time]
        if times.size < 2:
            return 0.0
        start = max(warmup_time, float(times.min()))
        duration = float(times.max()) - start
        if duration <= 0:
            return 0.0
        return float(times.size) / duration


class StreamingLatencyRecorder:
    """Constant-memory latency recorder with approximate percentiles.

    A drop-in for :class:`LatencyRecorder` on runs where only the
    summary percentiles are consumed: instead of three Python lists
    growing by one entry per RPC, observations stream into the
    telemetry layer's log-bucketed histograms
    (:class:`repro.telemetry.Histogram`), so memory is O(occupied
    buckets) regardless of run length. The trade-offs, which is why
    this is strictly **opt-in** (``latency_mode="streaming"`` on
    :class:`repro.core.RpcValetSystem`):

    * percentiles carry the histogram's bucket-ratio relative error
      (≈1.1% at the default 64 buckets/octave; min/max/mean/count
      stay exact), so figures asserting exact values must keep the
      default exact recorder;
    * warmup trimming happens **up front by count** — the first
      ``round(warmup_fraction * expected_count)`` recorded completions
      are discarded at record time — rather than by the exact
      recorder's post-hoc completion-time quantile. Completions are
      recorded in time order, so the discarded sets coincide up to
      quantile interpolation at the boundary;
    * per-request records are gone, so ``latencies()`` (raw arrays)
      and per-request breakdowns are unavailable.
    """

    def __init__(
        self,
        expected_count: int,
        warmup_fraction: float = 0.0,
        buckets_per_octave: int = 64,
    ) -> None:
        if expected_count < 0:
            raise ValueError(
                f"expected_count must be non-negative, got {expected_count!r}"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0,1), got {warmup_fraction!r}"
            )
        from ..telemetry import Histogram

        self._make_hist = lambda name: Histogram(
            name, buckets_per_octave=buckets_per_octave
        )
        self._skip = int(round(expected_count * warmup_fraction))
        self._seen = 0
        self._all = self._make_hist("latency")
        #: Per-label histograms (post-warmup observations only); keys
        #: double as the first-seen label order, so labels observed
        #: during warmup still appear.
        self._hists: Dict[str, object] = {}
        self._first_kept: Optional[float] = None
        self._last_kept: Optional[float] = None

    def record(
        self, completion_time: float, latency: float, label: str = "rpc"
    ) -> None:
        """Record one completed request (same contract as the exact recorder)."""
        if latency < 0:
            raise ValueError(f"negative latency {latency!r} at t={completion_time!r}")
        self._seen += 1
        hist = self._hists.get(label)
        if hist is None:
            hist = self._hists[label] = self._make_hist(label)
        if self._seen <= self._skip:
            return
        if self._first_kept is None:
            self._first_kept = completion_time
        self._last_kept = completion_time
        self._all.record(latency)
        hist.record(latency)

    def __len__(self) -> int:
        return self._seen

    @property
    def labels(self) -> List[str]:
        """Distinct labels seen (including during warmup), in order."""
        return list(self._hists)

    def warmup_cutoff(self) -> float:
        """Completion time of the first post-warmup observation."""
        return self._first_kept if self._first_kept is not None else 0.0

    def summary(
        self,
        label: Optional[str] = None,
        warmup_time: float = 0.0,
        warmup_fraction: float = 0.0,
    ) -> LatencySummary:
        """Summary over the post-warmup stream.

        The warmup arguments are accepted for interface compatibility
        but ignored: trimming already happened at record time.
        """
        hist = self._all if label is None else self._hists.get(label)
        if hist is None or hist.count == 0:
            return LatencySummary.empty()
        return LatencySummary(
            count=int(hist.count),
            mean=float(hist.total / hist.count),
            p50=float(hist.quantile(0.50)),
            p90=float(hist.quantile(0.90)),
            p95=float(hist.quantile(0.95)),
            p99=float(hist.quantile(0.99)),
            p999=float(hist.quantile(0.999)),
            max=float(hist.max),
        )

    def throughput(
        self, label: Optional[str] = None, warmup_time: float = 0.0
    ) -> float:
        """Post-warmup completions per unit time (whole stream only)."""
        if label is not None:
            raise ValueError(
                "StreamingLatencyRecorder tracks the completion window "
                "for the whole stream, not per label"
            )
        hist = self._all
        if hist.count < 2 or self._last_kept is None:
            return 0.0
        start = max(warmup_time, self._first_kept)
        duration = self._last_kept - start
        if duration <= 0:
            return 0.0
        return float(hist.count) / duration
