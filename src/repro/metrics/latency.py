"""Latency recording and summary statistics.

Every experiment funnels per-request latencies through a
:class:`LatencyRecorder`, which supports class labels (e.g. Masstree
``get`` vs ``scan``), warmup trimming, and exact percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["LatencyRecorder", "LatencySummary"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a set of latencies (same unit as input)."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    p999: float
    max: float

    @classmethod
    def from_values(cls, values: np.ndarray) -> "LatencySummary":
        if values.size == 0:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan, nan)
        p50, p90, p95, p99, p999 = np.percentile(
            values, [50.0, 90.0, 95.0, 99.0, 99.9]
        )
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            p50=float(p50),
            p90=float(p90),
            p95=float(p95),
            p99=float(p99),
            p999=float(p999),
            max=float(values.max()),
        )

    def scaled(self, factor: float) -> "LatencySummary":
        """Return a copy with all latency fields multiplied by ``factor``.

        Used to express tails in multiples of the mean service time S̄,
        as the paper's Fig. 2 and Fig. 9 do.
        """
        return LatencySummary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p90=self.p90 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            p999=self.p999 * factor,
            max=self.max * factor,
        )


class LatencyRecorder:
    """Accumulates ``(completion_time, latency, label)`` observations."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._latencies: List[float] = []
        self._labels: List[str] = []

    def record(self, completion_time: float, latency: float, label: str = "rpc") -> None:
        """Record one completed request."""
        if latency < 0:
            raise ValueError(f"negative latency {latency!r} at t={completion_time!r}")
        self._times.append(completion_time)
        self._latencies.append(latency)
        self._labels.append(label)

    def __len__(self) -> int:
        return len(self._latencies)

    @property
    def labels(self) -> List[str]:
        """Distinct labels seen, in first-seen order."""
        seen: Dict[str, None] = {}
        for label in self._labels:
            seen.setdefault(label)
        return list(seen)

    def latencies(
        self,
        label: Optional[str] = None,
        warmup_time: float = 0.0,
        warmup_fraction: float = 0.0,
    ) -> np.ndarray:
        """Latency array, optionally filtered by label and warmup-trimmed.

        ``warmup_fraction`` removes the earliest-completing fraction of
        requests; ``warmup_time`` removes completions before an absolute
        time. Both may be combined (union of exclusions).
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(f"warmup_fraction must be in [0,1), got {warmup_fraction!r}")
        times = np.asarray(self._times)
        lats = np.asarray(self._latencies)
        mask = np.ones(lats.size, dtype=bool)
        if label is not None:
            mask &= np.array([lbl == label for lbl in self._labels])
        if warmup_time > 0.0:
            mask &= times >= warmup_time
        if warmup_fraction > 0.0 and lats.size:
            cutoff = np.quantile(times, warmup_fraction)
            mask &= times > cutoff
        return lats[mask]

    def summary(
        self,
        label: Optional[str] = None,
        warmup_time: float = 0.0,
        warmup_fraction: float = 0.0,
    ) -> LatencySummary:
        """Summary statistics (see :meth:`latencies` for filtering)."""
        return LatencySummary.from_values(
            self.latencies(label, warmup_time, warmup_fraction)
        )

    def throughput(
        self, label: Optional[str] = None, warmup_time: float = 0.0
    ) -> float:
        """Completed requests per unit time over the measured window.

        The window spans from ``warmup_time`` (or the first completion)
        to the last completion.
        """
        times = np.asarray(self._times)
        if label is not None:
            mask = np.array([lbl == label for lbl in self._labels])
            times = times[mask]
        times = times[times >= warmup_time]
        if times.size < 2:
            return 0.0
        start = max(warmup_time, float(times.min()))
        duration = float(times.max()) - start
        if duration <= 0:
            return 0.0
        return float(times.size) / duration
