"""Plain-text charts for sweep curves.

The repo is plotting-library-free (offline, terminal-first); these
renderers draw the paper's p99-vs-throughput figures as monospace
scatter plots so ``python -m repro.experiments fig7a --chart`` visually
resembles Fig. 7a.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .sweep import SweepResult

__all__ = ["ascii_chart", "sweeps_chart"]

#: Plot glyphs assigned to series in order.
_MARKERS = "ox+*#@%&"


def _nice_ticks(low: float, high: float, count: int) -> List[float]:
    if high <= low:
        high = low + 1.0
    step = (high - low) / max(count - 1, 1)
    return [low + index * step for index in range(count)]


def ascii_chart(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render ``(label, xs, ys)`` series as a monospace scatter plot."""
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 6:
        raise ValueError("chart too small to be legible")

    points: List[Tuple[float, float, str]] = []
    for index, (_label, xs, ys) in enumerate(series):
        if len(xs) != len(ys):
            raise ValueError("series xs and ys differ in length")
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            if y != y or x != x:  # NaN
                continue
            if log_y and y <= 0:
                continue
            points.append((float(x), float(y), marker))
    if not points:
        raise ValueError("no finite points to plot")

    xs_all = [point[0] for point in points]
    ys_all = [
        math.log10(point[1]) if log_y else point[1] for point in points
    ]
    x_low, x_high = min(xs_all), max(xs_all)
    y_low, y_high = min(ys_all), max(ys_all)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        y_value = math.log10(y) if log_y else y
        col = int((x - x_low) / (x_high - x_low) * (width - 1))
        row = int((y_value - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_axis_width = 10
    for row_index, row in enumerate(grid):
        frac = 1.0 - row_index / (height - 1)
        y_value = y_low + frac * (y_high - y_low)
        if log_y:
            y_value = 10**y_value
        lines.append(f"{y_value:>{y_axis_width}.3g} |" + "".join(row))
    lines.append(" " * y_axis_width + " +" + "-" * width)
    ticks = _nice_ticks(x_low, x_high, 5)
    tick_line = " " * (y_axis_width + 2)
    positions = [
        int((tick - x_low) / (x_high - x_low) * (width - 1)) for tick in ticks
    ]
    label_chars = list(" " * (width + 8))
    for tick, pos in zip(ticks, positions):
        text = f"{tick:.3g}"
        for offset, char in enumerate(text):
            if pos + offset < len(label_chars):
                label_chars[pos + offset] = char
    lines.append(tick_line + "".join(label_chars).rstrip())
    lines.append(" " * (y_axis_width + 2) + x_label)
    legend = "   ".join(
        f"{_MARKERS[index % len(_MARKERS)]} = {label}"
        for index, (label, _xs, _ys) in enumerate(series)
    )
    lines.append(f"{y_label} (y){', log scale' if log_y else ''};  {legend}")
    return "\n".join(lines)


def sweeps_chart(
    sweeps: Sequence[SweepResult],
    log_y: bool = True,
    title: Optional[str] = None,
    width: int = 64,
    height: int = 18,
) -> str:
    """Paper-style figure: p99 latency vs achieved throughput."""
    series = [
        (sweep.label, sweep.throughputs, sweep.p99s) for sweep in sweeps
    ]
    return ascii_chart(
        series,
        width=width,
        height=height,
        x_label="achieved throughput",
        y_label="p99 latency",
        log_y=log_y,
        title=title,
    )
