"""Measurement: latency recording, SLO extraction, load sweeps, tables."""

from .ascii_chart import ascii_chart, sweeps_chart
from .breakdown import StageBreakdown, breakdown_from_messages
from .chrometrace import (
    chrome_trace_events,
    counter_track_events,
    export_chrome_trace,
    telemetry_counter_events,
)
from .latency import LatencyRecorder, LatencySummary, StreamingLatencyRecorder
from .statistics import (
    BatchMeansResult,
    ImbalanceStats,
    batch_means_ci,
    cross_node_imbalance,
    mser5_truncation,
    slowdown_factors,
)
from .sweep import LoadSweep, SweepPoint, SweepResult, throughput_under_slo
from .tables import format_table, sweep_table, sweeps_csv

__all__ = [
    "ascii_chart",
    "sweeps_chart",
    "StageBreakdown",
    "breakdown_from_messages",
    "chrome_trace_events",
    "counter_track_events",
    "telemetry_counter_events",
    "export_chrome_trace",
    "LatencyRecorder",
    "StreamingLatencyRecorder",
    "LatencySummary",
    "mser5_truncation",
    "batch_means_ci",
    "BatchMeansResult",
    "ImbalanceStats",
    "cross_node_imbalance",
    "slowdown_factors",
    "LoadSweep",
    "SweepPoint",
    "SweepResult",
    "throughput_under_slo",
    "format_table",
    "sweep_table",
    "sweeps_csv",
]
