"""Simulation output analysis: warmup truncation and confidence intervals.

Two standard DES-methodology tools the experiment harness (and any
careful user) needs:

* **MSER-5** [White 1997] — data-driven warmup truncation. The fixed
  10% warmup the experiments default to is fine for the paper's
  figures; MSER picks the truncation point that minimizes the standard
  error of the remaining batch means, which adapts to slow ramp-ups.
* **Batch means** — confidence intervals for the mean of an
  autocorrelated latency series. Naive iid CIs are far too narrow for
  queueing output; batching restores approximate independence.

Rack-scale runs additionally need **cross-node summaries**: how
unevenly did load or latency land across the cluster's nodes
(:func:`cross_node_imbalance`), and how much slower is each node than
the best one (:func:`slowdown_factors`)? Both are plain functions over
per-node values so cluster results and the ``ext-rack`` tables share
one definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "mser5_truncation",
    "batch_means_ci",
    "BatchMeansResult",
    "ImbalanceStats",
    "cross_node_imbalance",
    "slowdown_factors",
]


@dataclass(frozen=True)
class ImbalanceStats:
    """How unevenly a per-node quantity is spread across a cluster."""

    #: max / mean — 1.0 means the hottest node is exactly average.
    peak_to_mean: float
    #: max / min — the cluster result's historical imbalance metric.
    peak_to_min: float
    #: Coefficient of variation (population std / mean).
    cv: float


def cross_node_imbalance(values: Sequence[float]) -> ImbalanceStats:
    """Imbalance summary of one per-node quantity (load, mean latency...).

    Nodes with non-positive values (e.g. zero completions) make ratio
    metrics meaningless, so the whole summary degrades to NaN — a
    visible "this run starved a node" marker rather than an inf.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0 or np.any(array <= 0) or np.any(~np.isfinite(array)):
        nan = float("nan")
        return ImbalanceStats(nan, nan, nan)
    mean = float(array.mean())
    return ImbalanceStats(
        peak_to_mean=float(array.max()) / mean,
        peak_to_min=float(array.max()) / float(array.min()),
        cv=float(array.std()) / mean,
    )


def slowdown_factors(values: Sequence[float]) -> List[float]:
    """Each node's value relative to the best (smallest) node's.

    Applied to per-node p99s this is the rack's slowdown profile: 1.0
    for the best node, >1 for everyone dragged down by bad routing or
    weaker hardware.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return []
    best = float(array.min())
    if best <= 0 or not np.isfinite(best):
        return [float("nan")] * array.size
    return [float(value) / best for value in array]


def mser5_truncation(values: np.ndarray, batch_size: int = 5) -> int:
    """MSER truncation index for a time-ordered series.

    Groups the series into batches of ``batch_size``, then returns the
    sample index (multiple of the batch size) whose removal minimizes
    the marginal standard error of the remaining batch means. The
    search is capped at half the series (truncating more than half
    signals the run is too short, in which case 0 is returned and the
    caller should lengthen the run instead).
    """
    data = np.asarray(values, dtype=float)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
    if data.ndim != 1:
        raise ValueError("expected a 1-D series")
    num_batches = data.size // batch_size
    if num_batches < 4:
        return 0
    batches = data[: num_batches * batch_size].reshape(num_batches, batch_size)
    batch_means = batches.mean(axis=1)

    best_index = 0
    best_score = math.inf
    for drop in range(num_batches // 2):
        remaining = batch_means[drop:]
        count = remaining.size
        score = remaining.var(ddof=0) / count
        if score < best_score:
            best_score = score
            best_index = drop
    return best_index * batch_size


@dataclass(frozen=True)
class BatchMeansResult:
    """Mean estimate with a batch-means confidence interval."""

    mean: float
    half_width: float
    num_batches: int
    batch_size: int

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.mean - self.half_width, self.mean + self.half_width)

    def contains(self, value: float) -> bool:
        low, high = self.interval
        return low <= value <= high


#: Two-sided 95% t quantiles for small df (df -> t); falls back to the
#: normal 1.96 beyond the table.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
    30: 2.042, 60: 2.000,
}


def _t_quantile_95(df: int) -> float:
    if df in _T_95:
        return _T_95[df]
    for threshold in sorted(_T_95, reverse=True):
        if df >= threshold:
            return _T_95[threshold]
    return _T_95[1]


def batch_means_ci(
    values: np.ndarray, num_batches: int = 20
) -> BatchMeansResult:
    """95% CI for the mean of an autocorrelated series via batch means.

    Splits the (time-ordered, post-warmup) series into ``num_batches``
    contiguous batches; the batch means are approximately independent
    for long enough batches, giving a valid t-interval.
    """
    data = np.asarray(values, dtype=float)
    if num_batches < 2:
        raise ValueError(f"need at least 2 batches, got {num_batches!r}")
    if data.size < 2 * num_batches:
        raise ValueError(
            f"series of {data.size} too short for {num_batches} batches"
        )
    batch_size = data.size // num_batches
    trimmed = data[: batch_size * num_batches]
    batch_means = trimmed.reshape(num_batches, batch_size).mean(axis=1)
    mean = float(batch_means.mean())
    std_error = float(batch_means.std(ddof=1)) / math.sqrt(num_batches)
    half_width = _t_quantile_95(num_batches - 1) * std_error
    return BatchMeansResult(
        mean=mean,
        half_width=half_width,
        num_batches=num_batches,
        batch_size=batch_size,
    )
