"""Per-stage latency decomposition.

Splits each request's end-to-end latency (§5's metric: NI reception →
replenish posted) into the pipeline stages of Fig. 5:

* ``reassembly`` — packets written + counter checks at the NI backend;
* ``dispatch_wait`` — time in the shared CQ (the queueing RPCValet
  minimizes) plus the dispatch decision;
* ``delivery`` — mesh hops, CQE write, poll detection, request read;
* ``service`` — the RPC's own processing time;
* ``post`` — reply send issue + replenish issue (+ scheme overheads).

Use ``RpcValetSystem.run_point(..., keep_messages=True)`` to retain the
message records this consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["StageBreakdown", "breakdown_from_messages"]

_STAGES = ("reassembly", "dispatch_wait", "delivery", "service", "post")


@dataclass(frozen=True)
class StageBreakdown:
    """Mean per-stage latency (ns) over a set of completed requests."""

    reassembly: float
    dispatch_wait: float
    delivery: float
    service: float
    post: float
    count: int

    @property
    def total(self) -> float:
        return (
            self.reassembly
            + self.dispatch_wait
            + self.delivery
            + self.service
            + self.post
        )

    def fractions(self) -> dict:
        """Each stage's share of the mean end-to-end latency."""
        total = self.total
        if total <= 0:
            return {stage: 0.0 for stage in _STAGES}
        return {
            stage: getattr(self, stage) / total for stage in _STAGES
        }

    def table(self) -> str:
        """Render the breakdown as an aligned text table."""
        from .tables import format_table

        fractions = self.fractions()
        rows = [
            [stage, getattr(self, stage), f"{fractions[stage] * 100:.1f}%"]
            for stage in _STAGES
        ]
        rows.append(["total", self.total, "100%"])
        return format_table(
            ["stage", "mean (ns)", "share"],
            rows,
            title=f"Latency breakdown over {self.count} requests",
        )


def breakdown_from_messages(messages: Sequence) -> StageBreakdown:
    """Compute the mean stage breakdown from completed SendMessages.

    Every message must have completed (``t_replenish`` set); incomplete
    records raise.
    """
    if not messages:
        raise ValueError("need at least one completed message")
    stacks = {stage: [] for stage in _STAGES}
    for msg in messages:
        if msg.t_replenish is None:
            raise ValueError(f"message {msg.msg_id} has not completed")
        stacks["reassembly"].append(msg.t_reassembled - msg.t_arrival)
        stacks["dispatch_wait"].append(msg.t_dispatch - msg.t_reassembled)
        stacks["delivery"].append(msg.t_start - msg.t_dispatch)
        stacks["service"].append(msg.service_ns)
        stacks["post"].append(
            msg.t_replenish - msg.t_start - msg.service_ns
        )
    means = {stage: float(np.mean(values)) for stage, values in stacks.items()}
    return StageBreakdown(count=len(messages), **means)
