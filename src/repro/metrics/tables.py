"""Plain-text table and CSV rendering for experiment output.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and copy-pasteable.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, Sequence

from .sweep import SweepResult

__all__ = ["format_table", "sweep_table", "sweeps_csv"]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 5,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    string_rows: List[List[str]] = [
        [_fmt(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    out.write(header_line + "\n")
    out.write("  ".join("-" * width for width in widths) + "\n")
    for row in string_rows:
        out.write(
            "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
            + "\n"
        )
    return out.getvalue()


def sweep_table(
    sweeps: Sequence[SweepResult],
    load_label: str = "load",
    latency_label: str = "p99",
    precision: int = 5,
    title: Optional[str] = None,
) -> str:
    """Tabulate several sweeps side by side, one row per load point.

    Sweeps are aligned by position (they are normally produced from the
    same load list); shorter sweeps (stopped at saturation) leave their
    trailing cells blank.
    """
    if not sweeps:
        raise ValueError("need at least one sweep")
    headers = [load_label]
    for sweep in sweeps:
        headers.append(f"{sweep.label}:tput")
        headers.append(f"{sweep.label}:{latency_label}")
    max_points = max(len(sweep) for sweep in sweeps)
    rows: List[List[object]] = []
    for index in range(max_points):
        offered: object = ""
        cells: List[object] = []
        for sweep in sweeps:
            if index < len(sweep):
                point = sweep.points[index]
                offered = point.offered_load
                cells.extend([point.achieved_throughput, point.p99])
            else:
                cells.extend(["", ""])
        rows.append([offered, *cells])
    return format_table(headers, rows, precision=precision, title=title)


def sweeps_csv(sweeps: Sequence[SweepResult]) -> str:
    """Long-format CSV: label, offered load, achieved tput, p99, mean."""
    out = io.StringIO()
    out.write("label,offered_load,achieved_throughput,p99,mean,count\n")
    for sweep in sweeps:
        for point in sweep.points:
            out.write(
                f"{sweep.label},{float(point.offered_load)!r},"
                f"{float(point.achieved_throughput)!r},{float(point.p99)!r},"
                f"{float(point.summary.mean)!r},{point.summary.count}\n"
            )
    return out.getvalue()
