"""Load sweeps: the throughput/tail curves behind every figure.

Every evaluation figure in the paper plots p99 latency against offered
or achieved throughput for a set of system configurations. A
:class:`LoadSweep` drives one configuration across a list of load
points; :class:`SweepResult` holds the resulting curve and extracts the
paper's headline metric, *throughput under SLO*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .latency import LatencySummary

__all__ = ["SweepPoint", "SweepResult", "LoadSweep", "throughput_under_slo"]


@dataclass(frozen=True)
class SweepPoint:
    """One load point of a sweep.

    ``offered_load`` and ``achieved_throughput`` are in the same unit
    (requests per time unit, or utilization in [0,1] for the theoretical
    models). ``summary`` is over the SLO-relevant request class.
    """

    offered_load: float
    achieved_throughput: float
    summary: LatencySummary
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def p99(self) -> float:
        return self.summary.p99


@dataclass
class SweepResult:
    """A labelled throughput/tail-latency curve."""

    label: str
    points: List[SweepPoint]

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def p99s(self) -> List[float]:
        return [point.p99 for point in self.points]

    @property
    def throughputs(self) -> List[float]:
        return [point.achieved_throughput for point in self.points]

    def throughput_under_slo(self, slo: float) -> float:
        """Max achieved throughput among points meeting ``p99 <= slo``.

        Returns 0.0 if no point meets the SLO (the paper's Fig. 7b
        reports exactly this for 16×1 under the 12.5µs SLO).
        """
        return throughput_under_slo(self.points, slo)

    def max_p99_before(self, throughput_limit: float) -> float:
        """Largest p99 among points with throughput <= limit.

        Used for "up to 4× lower tail latency before saturation"
        comparisons between two curves.
        """
        candidates = [
            point.p99
            for point in self.points
            if point.achieved_throughput <= throughput_limit
        ]
        if not candidates:
            return float("nan")
        return max(candidates)


def throughput_under_slo(points: Sequence[SweepPoint], slo: float) -> float:
    """Max achieved throughput among ``points`` with p99 <= ``slo``."""
    if slo <= 0:
        raise ValueError(f"slo must be positive, got {slo!r}")
    meeting = [
        point.achieved_throughput
        for point in points
        if point.p99 <= slo and point.summary.count > 0
    ]
    return max(meeting) if meeting else 0.0


class LoadSweep:
    """Runs ``run_point(load) -> SweepPoint`` across a list of loads.

    ``stop_when_saturated`` aborts the sweep once p99 exceeds
    ``saturation_p99`` — points deep past saturation are expensive to
    simulate (queues grow without bound) and add nothing to the figures.
    """

    def __init__(
        self,
        run_point: Callable[[float], SweepPoint],
        loads: Sequence[float],
        label: str = "sweep",
        stop_when_saturated: bool = False,
        saturation_p99: Optional[float] = None,
    ) -> None:
        if not loads:
            raise ValueError("need at least one load point")
        if any(load <= 0 for load in loads):
            raise ValueError(f"loads must be positive, got {list(loads)}")
        if stop_when_saturated and saturation_p99 is None:
            raise ValueError("stop_when_saturated requires saturation_p99")
        self._run_point = run_point
        self._loads = list(loads)
        self._label = label
        self._stop_when_saturated = stop_when_saturated
        self._saturation_p99 = saturation_p99

    def run(self) -> SweepResult:
        """Execute the sweep in increasing-load order."""
        points: List[SweepPoint] = []
        for load in sorted(self._loads):
            point = self._run_point(load)
            points.append(point)
            if (
                self._stop_when_saturated
                and self._saturation_p99 is not None
                and point.p99 > self._saturation_p99
            ):
                break
        return SweepResult(label=self._label, points=points)
