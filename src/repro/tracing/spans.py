"""Per-RPC span records: config, spans, traces, buffers, and the tracer.

One sampled logical RPC becomes an :class:`RpcTrace` — a span tree with
one :class:`AttemptSpan` per physical attempt (the first send, each
retry, the hedge). Every span carries the phase timestamps the DES
already stamps on :class:`repro.arch.SendMessage` plus the client-side
lifecycle times only the cluster knows (launch, credit grant, reply
arrival), so a completed trace decomposes its end-to-end latency into
the :data:`PHASES` exactly — the components telescope to
``t_end - t_init`` by construction.

Instrumentation discipline mirrors PR 2's telemetry: every hot-path
site is a bare ``is not None`` check against ``cluster.tracer`` (or a
span reference already in hand), sampling is a per-client modular
counter (**no RNG draws**, so traced and untraced runs consume
identical variate sequences), and per-task :class:`TraceBuffer`\\ s
merge by concatenation in task order — bit-identical at any worker
count, the same contract as :func:`repro.telemetry.merge_snapshots`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "PHASES",
    "TraceConfig",
    "AttemptSpan",
    "RpcTrace",
    "TraceBuffer",
    "Tracer",
    "merge_trace_buffers",
]

#: The end-to-end decomposition, in causal order. For a completed
#: trace the phase values telescope over the winning attempt's
#: timestamps, so ``sum(phases.values()) == t_end - t_init`` exactly
#: (up to float addition order):
#:
#: * ``pre_launch``    — RPC issued → winning attempt launched (retry
#:   backoff / hedge trigger delay; 0 when the first attempt wins);
#: * ``credit_wait``   — launch → send (queueing for a send-slot credit);
#: * ``req_fabric``    — send → arrival at the server NI (fabric one-way,
#:   including any injected delay spike);
#: * ``ni_pipeline``   — NI arrival → reassembled at the backend;
#: * ``dispatch_wait`` — reassembled → dispatcher decision (shared-CQ
#:   head-of-line wait: the phase RPCValet's NI-driven balancing attacks);
#: * ``cqe_delivery``  — decision → CQE written into the core's private CQ;
#: * ``qp_wait``       — CQE posted → core starts the handler (private-CQ
#:   residency + pre-processing);
#: * ``service``       — handler execution (pre + service + post);
#: * ``reply_fabric``  — replenish posted → reply back at the client.
PHASES: Tuple[str, ...] = (
    "pre_launch",
    "credit_wait",
    "req_fabric",
    "ni_pipeline",
    "dispatch_wait",
    "cqe_delivery",
    "qp_wait",
    "service",
    "reply_fabric",
)


@dataclass(frozen=True)
class TraceConfig:
    """Sampling knobs for one traced cluster run.

    ``sample_period=N`` traces every Nth logical RPC per client node
    (1 = every RPC). The counter-based selection draws no random
    variates, so enabling tracing cannot perturb the simulation.
    ``max_traces`` bounds retained traces per run; overflow is counted
    in :attr:`TraceBuffer.dropped`, never silently ignored.
    """

    sample_period: int = 1
    max_traces: int = 200_000

    def __post_init__(self) -> None:
        if self.sample_period < 1:
            raise ValueError(
                f"sample_period must be >= 1, got {self.sample_period!r}"
            )
        if self.max_traces < 1:
            raise ValueError(
                f"max_traces must be >= 1, got {self.max_traces!r}"
            )


class AttemptSpan:
    """One physical attempt of a traced RPC (first send, retry, or hedge)."""

    __slots__ = (
        "kind",
        "dst",
        "t_launch",
        "t_sent",
        "t_arrival",
        "t_reassembled",
        "t_dispatch",
        "t_cqe",
        "t_start",
        "t_replenish",
        "t_reply",
        "backend_id",
        "core_id",
        "decision",
        "status",
        "events",
    )

    def __init__(self, kind: str, dst: int, t_launch: float) -> None:
        self.kind = kind
        self.dst = dst
        self.t_launch = t_launch
        #: Set when a send-slot credit is granted and the request leaves.
        self.t_sent: Optional[float] = None
        #: Server-side stamps, copied off the (recyclable) SendMessage.
        self.t_arrival: Optional[float] = None
        self.t_reassembled: Optional[float] = None
        self.t_dispatch: Optional[float] = None
        self.t_cqe: Optional[float] = None
        self.t_start: Optional[float] = None
        self.t_replenish: Optional[float] = None
        #: Reply back at the client (robust mode) / credit returned (legacy).
        self.t_reply: Optional[float] = None
        self.backend_id = -1
        self.core_id = -1
        #: Router decision detail (policy, estimate, ground truth, ...).
        self.decision: Optional[dict] = None
        #: ``open`` → ``won`` | ``completed`` | ``timeout`` | ``duplicate``.
        self.status = "open"
        #: Lifecycle incidents: (name, t_ns) — timeouts, drops, dups.
        self.events: List[Tuple[str, float]] = []

    def copy_server(self, msg) -> None:
        """Copy server-side stamps off ``msg`` before it is recycled.

        Chips pool and reset completed :class:`SendMessage` records, so
        the copy must happen synchronously in the replenish callback —
        holding a reference across a scheduled reply delay would read a
        reused message.
        """
        self.t_arrival = msg.t_arrival
        self.t_reassembled = msg.t_reassembled
        self.t_dispatch = msg.t_dispatch
        self.t_cqe = msg.t_cqe
        self.t_start = msg.t_start
        self.t_replenish = msg.t_replenish
        self.backend_id = msg.backend_id
        self.core_id = msg.core_id

    def add_event(self, name: str, t_ns: float) -> None:
        self.events.append((name, t_ns))

    @property
    def served(self) -> bool:
        """The server executed this attempt to completion."""
        return self.t_replenish is not None

    def service_ns(self) -> float:
        """Handler execution time, 0.0 if the attempt never ran."""
        if self.t_replenish is None or self.t_start is None:
            return 0.0
        return self.t_replenish - self.t_start

    def __repr__(self) -> str:
        return (
            f"<AttemptSpan {self.kind}->node{self.dst} "
            f"status={self.status} at {self.t_launch:.0f}ns>"
        )


class RpcTrace:
    """The span tree of one sampled logical RPC."""

    __slots__ = (
        "client",
        "index",
        "label",
        "t_init",
        "t_end",
        "outcome",
        "attempts",
        "winner",
        "_decision",
    )

    def __init__(self, client: int, index: int, t_init: float) -> None:
        self.client = client
        #: Ordinal of this RPC among the client's generated RPCs.
        self.index = index
        self.label = "rpc"
        self.t_init = t_init
        self.t_end: Optional[float] = None
        #: ``open`` → ``completed`` | ``lost``.
        self.outcome = "open"
        self.attempts: List[AttemptSpan] = []
        #: Index into ``attempts`` of the winning (first-reply) attempt.
        self.winner: Optional[int] = None
        #: Router decision captured for the *next* attempt (one-shot).
        self._decision: Optional[dict] = None

    # -- recording (hot path; called only for sampled RPCs) ---------------

    def note_decision(self, **detail) -> None:
        """Stash the router's decision for the attempt about to launch."""
        self._decision = detail

    def new_attempt(self, kind: str, dst: int, t_launch: float) -> AttemptSpan:
        span = AttemptSpan(kind, dst, t_launch)
        if self._decision is not None:
            span.decision = self._decision
            self._decision = None
        self.attempts.append(span)
        return span

    def finish(
        self,
        t_end: float,
        winner: Optional[AttemptSpan],
        outcome: str = "completed",
    ) -> None:
        self.t_end = t_end
        self.outcome = outcome
        if winner is not None:
            self.winner = self.attempts.index(winner)
            winner.status = "won"

    # -- analysis ---------------------------------------------------------

    @property
    def e2e_ns(self) -> float:
        """Client-observed end-to-end latency of the logical RPC."""
        if self.t_end is None:
            raise RuntimeError(
                f"rpc {self.client}:{self.index} has not resolved"
            )
        return self.t_end - self.t_init

    def phases(self) -> Optional[Dict[str, float]]:
        """The :data:`PHASES` decomposition, or None when not completed.

        The values telescope over the winning attempt's timestamps, so
        their sum equals :attr:`e2e_ns` (up to float addition order).
        """
        if self.outcome != "completed" or self.winner is None:
            return None
        w = self.attempts[self.winner]
        if w.t_sent is None or w.t_replenish is None:
            return None  # pragma: no cover - a winner always ran
        return {
            "pre_launch": w.t_launch - self.t_init,
            "credit_wait": w.t_sent - w.t_launch,
            "req_fabric": w.t_arrival - w.t_sent,
            "ni_pipeline": w.t_reassembled - w.t_arrival,
            "dispatch_wait": w.t_dispatch - w.t_reassembled,
            "cqe_delivery": w.t_cqe - w.t_dispatch,
            "qp_wait": w.t_start - w.t_cqe,
            "service": w.t_replenish - w.t_start,
            "reply_fabric": self.t_end - w.t_replenish,
        }

    def duplicate_service_ns(self) -> float:
        """Server work burned by non-winning attempts (retry/hedge waste)."""
        winner = self.winner
        return sum(
            span.service_ns()
            for position, span in enumerate(self.attempts)
            if position != winner
        )

    def retries(self) -> int:
        return sum(1 for span in self.attempts if span.kind == "retry")

    def hedges(self) -> int:
        return sum(1 for span in self.attempts if span.kind == "hedge")

    def __repr__(self) -> str:
        return (
            f"<RpcTrace {self.client}:{self.index} {self.label} "
            f"{self.outcome} attempts={len(self.attempts)}>"
        )


class TraceBuffer:
    """Mergeable container of one run's (or task's) traces.

    Merging concatenates in call order; the runner merges per-task
    buffers in task order, which makes the combined buffer bit-identical
    at any worker count.
    """

    __slots__ = ("traces", "faults", "offered", "sampled", "dropped")

    def __init__(self) -> None:
        self.traces: List[RpcTrace] = []
        #: Cluster-wide fault timeline: (t_ns, kind, node; -1 = fabric-wide).
        self.faults: List[Tuple[float, str, int]] = []
        #: Logical RPCs generated / sampled / lost to the max_traces cap.
        self.offered = 0
        self.sampled = 0
        self.dropped = 0

    def merge(self, other: "TraceBuffer") -> "TraceBuffer":
        self.traces.extend(other.traces)
        self.faults.extend(other.faults)
        self.offered += other.offered
        self.sampled += other.sampled
        self.dropped += other.dropped
        return self

    def completed(self) -> Iterator[RpcTrace]:
        """Traces that resolved successfully (phase-decomposable)."""
        return (t for t in self.traces if t.outcome == "completed")

    def lost(self) -> Iterator[RpcTrace]:
        return (t for t in self.traces if t.outcome == "lost")

    def __len__(self) -> int:
        return len(self.traces)

    def __repr__(self) -> str:
        return (
            f"<TraceBuffer traces={len(self.traces)} offered={self.offered} "
            f"dropped={self.dropped}>"
        )


def merge_trace_buffers(buffers: Iterable[TraceBuffer]) -> TraceBuffer:
    """Merge per-task buffers, in iteration order, into one."""
    merged = TraceBuffer()
    for buffer in buffers:
        merged.merge(buffer)
    return merged


class Tracer:
    """Sampling decision + buffer ownership for one cluster run."""

    __slots__ = ("config", "buffer", "_counts")

    def __init__(self, config: TraceConfig) -> None:
        self.config = config
        self.buffer = TraceBuffer()
        #: Per-client generated-RPC counters (modular sampling state).
        self._counts: Dict[int, int] = {}

    def maybe_trace(self, client: int, now: float) -> Optional[RpcTrace]:
        """Sampling gate: a new trace for every Nth RPC of ``client``.

        Pure counter arithmetic — no RNG draw — so enabling tracing
        leaves every simulation stream's variate sequence untouched.
        """
        counts = self._counts
        index = counts.get(client, 0)
        counts[client] = index + 1
        buffer = self.buffer
        buffer.offered += 1
        if index % self.config.sample_period:
            return None
        if len(buffer.traces) >= self.config.max_traces:
            buffer.dropped += 1
            return None
        trace = RpcTrace(client, index, now)
        buffer.traces.append(trace)
        buffer.sampled += 1
        return trace

    def record_fault(self, kind: str, node: int, t_ns: float) -> None:
        """Append one fault-timeline event (node=-1 for fabric-wide)."""
        self.buffer.faults.append((t_ns, kind, node))
