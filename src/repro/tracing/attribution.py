"""Tail attribution: *why* is p99 what it is?

Selects latency cohorts (all completed traces at or above a quantile
threshold) and decomposes each cohort's mean end-to-end latency into
the :data:`~repro.tracing.spans.PHASES` components, plus the retry /
hedge / duplicate-service overheads only a per-RPC record can expose.
Every completed trace is conservation-checked on the way in: its phase
components must sum to its recorded e2e latency (up to float addition
order), or :func:`attribute_tails` raises — a wrong decomposition is
worse than none.

The cohort *means* answer "where does tail latency come from"; the
per-cohort exemplar (the slowest trace in the cohort, deterministic
tie-break) answers "show me one" — :func:`render_exemplar` dumps its
span tree as text.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .spans import PHASES, RpcTrace, TraceBuffer

__all__ = [
    "CohortReport",
    "AttributionReport",
    "attribute_tails",
    "attribution_to_dict",
    "render_exemplar",
]

#: Conservation tolerance: phase sums are telescoping float differences
#: re-added in order, so they match e2e to within addition rounding.
_REL_TOL = 1e-9
_ABS_TOL_NS = 1e-6


def _quantile_key(quantile: float) -> str:
    return "p" + f"{quantile * 100:g}".replace(".", "")


@dataclass
class CohortReport:
    """One quantile cohort's phase decomposition."""

    quantile: float
    #: Cohort membership threshold (an actual sample value).
    threshold_ns: float
    count: int
    mean_e2e_ns: float
    #: Cohort-mean nanoseconds spent in each phase (sums to mean_e2e_ns).
    phase_ns: Dict[str, float]
    #: Same, as fractions of the cohort mean.
    phase_fraction: Dict[str, float]
    #: Cohort-mean server work burned by non-winning attempts.
    duplicate_service_ns: float
    #: Cohort-mean retry / hedge attempts per RPC.
    retries: float
    hedges: float
    #: The slowest trace in the cohort (deterministic tie-break).
    exemplar: Optional[RpcTrace] = None


@dataclass
class AttributionReport:
    """Phase attribution of one traced run, across quantile cohorts."""

    total_traces: int
    completed: int
    lost: int
    #: Keyed ``"p50"`` / ``"p99"`` / ``"p999"`` (from the quantiles asked).
    cohorts: Dict[str, CohortReport] = field(default_factory=dict)

    def cohort(self, key: str) -> CohortReport:
        return self.cohorts[key]


def _conserved(trace: RpcTrace, phases: Dict[str, float]) -> bool:
    return math.isclose(
        sum(phases.values()),
        trace.e2e_ns,
        rel_tol=_REL_TOL,
        abs_tol=_ABS_TOL_NS,
    )


def attribute_tails(
    source: Union[TraceBuffer, Iterable[RpcTrace]],
    quantiles: Sequence[float] = (0.50, 0.99, 0.999),
) -> AttributionReport:
    """Build the per-cohort phase attribution of one traced run.

    Raises ``ValueError`` if any completed trace's phase components do
    not sum to its end-to-end latency (conservation), or if no trace
    completed at all.
    """
    if isinstance(source, TraceBuffer):
        traces = source.traces
    else:
        traces = list(source)
    completed: List[Tuple[RpcTrace, Dict[str, float]]] = []
    lost = 0
    for trace in traces:
        if trace.outcome == "lost":
            lost += 1
            continue
        phases = trace.phases()
        if phases is None:
            continue
        if not _conserved(trace, phases):
            raise ValueError(
                f"span conservation violated for rpc "
                f"{trace.client}:{trace.index}: phases sum to "
                f"{sum(phases.values())!r} but e2e is {trace.e2e_ns!r}"
            )
        completed.append((trace, phases))
    if not completed:
        raise ValueError("no completed traces to attribute")

    e2e = np.array([trace.e2e_ns for trace, _ in completed])
    report = AttributionReport(
        total_traces=len(traces), completed=len(completed), lost=lost
    )
    for quantile in quantiles:
        if not 0.0 <= quantile < 1.0:
            raise ValueError(f"quantile must be in [0, 1), got {quantile!r}")
        # method="higher" picks an actual sample, so the >= cohort is
        # never empty and the threshold is attributable to one RPC.
        threshold = float(np.quantile(e2e, quantile, method="higher"))
        cohort = [
            (trace, phases)
            for trace, phases in completed
            if trace.e2e_ns >= threshold
        ]
        count = len(cohort)
        phase_ns = {
            phase: sum(phases[phase] for _, phases in cohort) / count
            for phase in PHASES
        }
        mean_e2e = sum(trace.e2e_ns for trace, _ in cohort) / count
        exemplar = max(
            (trace for trace, _ in cohort),
            key=lambda trace: (trace.e2e_ns, -trace.client, -trace.index),
        )
        report.cohorts[_quantile_key(quantile)] = CohortReport(
            quantile=quantile,
            threshold_ns=threshold,
            count=count,
            mean_e2e_ns=mean_e2e,
            phase_ns=phase_ns,
            phase_fraction={
                phase: value / mean_e2e if mean_e2e > 0 else 0.0
                for phase, value in phase_ns.items()
            },
            duplicate_service_ns=(
                sum(trace.duplicate_service_ns() for trace, _ in cohort) / count
            ),
            retries=sum(trace.retries() for trace, _ in cohort) / count,
            hedges=sum(trace.hedges() for trace, _ in cohort) / count,
            exemplar=exemplar,
        )
    return report


def attribution_to_dict(report: AttributionReport) -> dict:
    """JSON-ready form of a report (exemplars become span dumps)."""
    return {
        "total_traces": report.total_traces,
        "completed": report.completed,
        "lost": report.lost,
        "cohorts": {
            key: {
                "quantile": cohort.quantile,
                "threshold_ns": cohort.threshold_ns,
                "count": cohort.count,
                "mean_e2e_ns": cohort.mean_e2e_ns,
                "phase_ns": dict(cohort.phase_ns),
                "phase_fraction": dict(cohort.phase_fraction),
                "duplicate_service_ns": cohort.duplicate_service_ns,
                "retries": cohort.retries,
                "hedges": cohort.hedges,
                "exemplar": (
                    None
                    if cohort.exemplar is None
                    else render_exemplar(cohort.exemplar).splitlines()
                ),
            }
            for key, cohort in report.cohorts.items()
        },
    }


def _fmt_ns(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:,.0f}"


def render_exemplar(trace: RpcTrace) -> str:
    """Text dump of one trace's span tree (for reports and debugging)."""
    lines = [
        f"rpc {trace.client}:{trace.index} ({trace.label}) — "
        f"{trace.outcome}"
        + (
            f", e2e {trace.e2e_ns:,.0f} ns"
            if trace.t_end is not None
            else ""
        )
    ]
    phases = trace.phases()
    if phases is not None:
        parts = ", ".join(
            f"{phase} {value:,.0f}" for phase, value in phases.items() if value > 0
        )
        lines.append(f"  phases (ns): {parts}")
    for position, span in enumerate(trace.attempts):
        marker = "*" if position == trace.winner else " "
        lines.append(
            f"  {marker}attempt[{position}] {span.kind} -> node{span.dst} "
            f"({span.status}) launch={_fmt_ns(span.t_launch)} "
            f"sent={_fmt_ns(span.t_sent)} arrive={_fmt_ns(span.t_arrival)} "
            f"dispatch={_fmt_ns(span.t_dispatch)} start={_fmt_ns(span.t_start)} "
            f"done={_fmt_ns(span.t_replenish)} reply={_fmt_ns(span.t_reply)}"
            + (f" core={span.core_id}" if span.core_id >= 0 else "")
        )
        if span.decision is not None:
            detail = ", ".join(
                f"{key}={value}" for key, value in sorted(span.decision.items())
            )
            lines.append(f"    decision: {detail}")
        for name, t_ns in span.events:
            lines.append(f"    event: {name} at {t_ns:,.0f} ns")
    return "\n".join(lines)
