"""Perfetto / Chrome-trace export of full span trees.

Extends the repo's trace tooling beyond per-message bars and counter
tracks (:mod:`repro.metrics.chrometrace`): each traced logical RPC
renders as a bar on its client node's track, each physical attempt as
a bar on the node's attempt track (retries and hedges visibly overlap
their predecessors), and each executed attempt's service window on the
serving core's track. Timeouts, drops, duplicate completions, and the
cluster-wide fault timeline render as instant events.

Load the JSON at https://ui.perfetto.dev. Combine with counter tracks
via :func:`repro.telemetry.export_unified_trace`.
"""

from __future__ import annotations

import json
import pathlib
from typing import IO, Iterable, List, Union

from .spans import RpcTrace, TraceBuffer

__all__ = ["span_trace_events", "export_span_trace"]

#: Trace timestamps are microseconds; the simulator uses ns.
_NS_TO_US = 1e-3

#: Perfetto "process" groups: clients (logical RPCs + attempts) vs
#: servers (service windows) vs the fault timeline.
_PID_CLIENTS = 10
_PID_SERVERS = 11
_PID_FAULTS = 12


def _complete(name, ts_ns, dur_ns, pid, tid, **args) -> dict:
    event = {
        "name": name,
        "ph": "X",
        "ts": ts_ns * _NS_TO_US,
        "dur": max(dur_ns, 0.0) * _NS_TO_US,
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = args
    return event


def _instant(name, ts_ns, pid, tid) -> dict:
    return {
        "name": name,
        "ph": "i",
        "ts": ts_ns * _NS_TO_US,
        "pid": pid,
        "tid": tid,
        "s": "t",  # thread-scoped instant
    }


def span_trace_events(
    source: Union[TraceBuffer, Iterable[RpcTrace]],
) -> List[dict]:
    """Build the Trace Event Format list for traced RPCs."""
    if isinstance(source, TraceBuffer):
        traces: Iterable[RpcTrace] = source.traces
        faults = source.faults
    else:
        traces = source
        faults = ()
    events: List[dict] = []
    for trace in traces:
        label = f"rpc {trace.client}:{trace.index} ({trace.label})"
        last = trace.t_end
        if last is None:
            # Unresolved trace (traffic cut short): span to the latest
            # stamp we have so the bar still renders.
            stamps = [trace.t_init] + [
                t
                for span in trace.attempts
                for t in (span.t_sent, span.t_replenish, span.t_reply)
                if t is not None
            ]
            last = max(stamps)
        args = {"outcome": trace.outcome, "attempts": len(trace.attempts)}
        phases = trace.phases()
        if phases is not None:
            args["phases_ns"] = {
                phase: round(value, 3) for phase, value in phases.items()
            }
        events.append(
            _complete(
                label,
                trace.t_init,
                last - trace.t_init,
                pid=_PID_CLIENTS,
                tid=f"client node{trace.client:02d}",
                **args,
            )
        )
        for position, span in enumerate(trace.attempts):
            span_end = span.t_reply
            if span_end is None:
                candidates = [
                    t
                    for t in (span.t_replenish, span.t_sent, span.t_launch)
                    if t is not None
                ]
                span_end = max(candidates)
            attempt_tid = f"attempts node{trace.client:02d}"
            events.append(
                _complete(
                    f"{label} {span.kind}->node{span.dst}",
                    span.t_launch,
                    span_end - span.t_launch,
                    pid=_PID_CLIENTS,
                    tid=attempt_tid,
                    status=span.status,
                    won=position == trace.winner,
                    **(
                        {"decision": span.decision}
                        if span.decision is not None
                        else {}
                    ),
                )
            )
            if span.t_start is not None and span.t_replenish is not None:
                events.append(
                    _complete(
                        f"{label} {span.kind}",
                        span.t_start,
                        span.t_replenish - span.t_start,
                        pid=_PID_SERVERS,
                        tid=f"server node{span.dst:02d} core{span.core_id:02d}",
                        dispatch_wait_ns=(
                            None
                            if span.t_dispatch is None
                            or span.t_reassembled is None
                            else round(span.t_dispatch - span.t_reassembled, 3)
                        ),
                    )
                )
            for name, t_ns in span.events:
                events.append(_instant(name, t_ns, _PID_CLIENTS, attempt_tid))
    for t_ns, kind, node in faults:
        tid = "fabric" if node < 0 else f"node{node:02d}"
        events.append(_instant(kind, t_ns, _PID_FAULTS, f"faults {tid}"))
    return events


def export_span_trace(
    source: Union[TraceBuffer, Iterable[RpcTrace]],
    destination: Union[str, pathlib.Path, IO[str]],
) -> int:
    """Write spans as a Chrome-trace JSON file; returns the event count."""
    events = span_trace_events(source)
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    if hasattr(destination, "write"):
        json.dump(payload, destination)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    return len(events)
