"""Per-RPC span tracing and tail attribution.

The repo's telemetry (:mod:`repro.telemetry`) says *that* p99 moved;
this package says *why*: a sampling span tracer threads through the
DES hot paths — NI dispatch and queue-pair residency in ``arch``, the
robust-client attempt lifecycle (timeout / retry / hedge / duplicate
reconciliation) in ``cluster``, router decisions and load-signal
staleness in ``rack``, fault events in ``faults`` — and produces
per-RPC span trees whose phase components sum exactly to the recorded
end-to-end latency.

Design contracts (shared with the telemetry layer):

* **zero-cost when disabled** — every instrumented site is a bare
  ``is not None`` check, and the tracer itself draws no random
  variates, so traced and untraced runs are bit-identical;
* **mergeable** — per-task :class:`TraceBuffer`\\ s concatenate in task
  order, bit-identical at any worker count;
* **DES-tier only** — the fast/fluid tiers have no per-RPC state to
  trace; engine-aware drivers reject ``engine != "des"`` with a clear
  error when tracing is requested.

Quickstart::

    from repro.cluster import Cluster
    from repro.rack import RackRouter
    from repro.tracing import TraceConfig, attribute_tails

    cluster = Cluster(4, router=RackRouter("jsq2"), trace=TraceConfig())
    result = cluster.run(per_node_mrps=24.0, requests_per_node=4_000)
    report = attribute_tails(result.spans)
    print(report.cohort("p99").phase_fraction["dispatch_wait"])
"""

from .attribution import (
    AttributionReport,
    CohortReport,
    attribute_tails,
    attribution_to_dict,
    render_exemplar,
)
from .export import export_span_trace, span_trace_events
from .spans import (
    PHASES,
    AttemptSpan,
    RpcTrace,
    TraceBuffer,
    TraceConfig,
    Tracer,
    merge_trace_buffers,
)

__all__ = [
    "PHASES",
    "TraceConfig",
    "AttemptSpan",
    "RpcTrace",
    "TraceBuffer",
    "Tracer",
    "merge_trace_buffers",
    "AttributionReport",
    "CohortReport",
    "attribute_tails",
    "attribution_to_dict",
    "render_exemplar",
    "span_trace_events",
    "export_span_trace",
]
