"""Discrete-event simulation kernel.

A small, fully tested process-interaction DES kernel in the style of
SimPy. All higher layers (queueing models, the soNUMA architectural
simulator, workloads) are built on this package.
"""

from .engine import EmptySchedule, Environment
from .events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    PENDING,
    Process,
    Timeout,
)
from .resources import PriorityStore, Request, Resource, Store
from .rng import RngRegistry
from .util import delayed_call

__all__ = [
    "Environment",
    "EmptySchedule",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "PENDING",
    "Store",
    "PriorityStore",
    "Resource",
    "Request",
    "RngRegistry",
    "delayed_call",
]
