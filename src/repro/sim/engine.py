"""The simulation environment: clock, event heap, and run loop.

The :class:`Environment` is the single shared object threaded through
every model in this repository. Time is a ``float`` whose unit is by
convention **nanoseconds** in the architectural simulator
(:mod:`repro.arch`) and **multiples of the mean service time** in the
theoretical queueing models (:mod:`repro.queueing`); the kernel itself
is unit-agnostic.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Generator, List, Optional, Tuple

from .events import AllOf, AnyOf, Callback, Event, Process, Timeout

__all__ = ["Environment", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


#: Priority used for normal events; urgent events (interrupts) use 0.
_NORMAL = 1


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_next_eid",
        "_active_process",
        "_sampler",
        "_call_pool",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        #: Bound ``__next__`` of the id counter — every event scheduled
        #: pays this call, so skip the iterator-protocol dispatch.
        self._next_eid = self._eid.__next__
        self._active_process: Optional[Process] = None
        self._sampler = None
        #: Recycled Callback events for :meth:`schedule_call`.
        self._call_pool: List[Callback] = []

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- telemetry ------------------------------------------------------------

    @property
    def sampler(self):
        """The attached periodic telemetry sampler, if any."""
        return self._sampler

    def attach_sampler(self, sampler) -> None:
        """Attach a periodic telemetry sampler (or ``None`` to detach).

        ``sampler`` follows the :class:`repro.telemetry.PeriodicSampler`
        protocol: a ``next_at`` attribute and an ``advance(now)`` method
        that samples every due tick ``<= now``. The run loop consults it
        before processing each event, so sampling happens at simulated
        times and stops naturally when the schedule drains. With no
        sampler attached, :meth:`run` takes its original hot loop — the
        disabled path costs nothing per event.
        """
        self._sampler = sampler

    # -- event creation ---------------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def schedule_call(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> None:
        """Invoke ``fn(*args)`` after ``delay`` time units.

        The allocation-free fast path for fire-and-forget latency
        modeling (mesh hops, wire delays): where
        ``timeout(d).add_callback(lambda e: fn(*args))`` allocates a
        Timeout, a closure, and a callbacks list per call, this recycles
        one pooled :class:`Callback` event. The call cannot be observed
        or cancelled — use :meth:`timeout` when something must wait on
        the occurrence.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        pool = self._call_pool
        event = pool.pop() if pool else Callback(self)
        event.fn = fn
        event.args = args
        heappush(
            self._queue, (self._now + delay, _NORMAL, self._next_eid(), event)
        )

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = _NORMAL) -> None:
        """Queue ``event`` to be processed ``delay`` units from now."""
        heappush(
            self._queue, (self._now + delay, priority, self._next_eid(), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        The body is duplicated inside :meth:`run`'s hot loop; keep the
        two in sync.

        Raises
        ------
        EmptySchedule
            If no events are scheduled.
        """
        try:
            when, _prio, _eid, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when

        callbacks = event.callbacks
        event.callbacks = None  # marks the event as processed
        event._processed = True
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody handled: surface it instead of dropping it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the schedule is exhausted;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, and
          return its value (or raise its exception).
        """
        if until is None:
            stop_at = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            stop_at = float("inf")
            if stop_event.callbacks is None:  # already processed
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            done = []
            stop_event.add_callback(done.append)
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._now:
                raise ValueError(
                    f"until ({stop_at}) must not be before now ({self._now})"
                )
            done = []

        # Hot loops: the body of :meth:`step` is inlined with the heap
        # and heappop bound to locals — the per-event call/lookup
        # overhead is measurable at ~10 kernel events per simulated RPC.
        queue = self._queue
        pop = heappop
        sampler = self._sampler
        if stop_event is None and stop_at == float("inf"):
            # run() with no ``until`` — the arch simulator's only mode:
            # drain the schedule with no stop checks per event.
            if sampler is None:
                while queue:
                    when, _prio, _eid, event = pop(queue)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None  # marks the event as processed
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        # A failure nobody handled: surface it, don't drop it.
                        raise event._value
                return None
            # Telemetry variant of the same loop: poll the periodic
            # sampler before each event whose time passes its next tick.
            while queue:
                when, _prio, _eid, event = pop(queue)
                if when >= sampler.next_at:
                    sampler.advance(when)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None  # marks the event as processed
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # A failure nobody handled: surface it, don't drop it.
                    raise event._value
            return None
        while True:
            if stop_event is not None and stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            if not queue:
                if stop_event is not None:
                    raise RuntimeError(
                        "simulation ended before the awaited event fired"
                    )
                return None
            if queue[0][0] > stop_at:
                self._now = stop_at
                return None
            when, _prio, _eid, event = pop(queue)
            if sampler is not None and when >= sampler.next_at:
                sampler.advance(when)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None  # marks the event as processed
            event._processed = True
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                # A failure nobody handled: surface it, don't drop it.
                raise event._value
