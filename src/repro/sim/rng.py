"""Reproducible named random-number streams.

Every stochastic component in the reproduction (arrival process, each
service-time distribution, RSS hashing, policy tie-breaking, ...) draws
from its *own* named stream derived from a single experiment seed. This
gives two properties the experiments rely on:

* **Reproducibility** — the same seed yields bit-identical runs.
* **Common random numbers** — changing one component (e.g. the dispatch
  policy) does not perturb the random draws of the others, which makes
  A/B comparisons between configurations far less noisy.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


def _stream_key(name: str) -> int:
    """Derive a stable 64-bit integer from a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory of independent, named ``numpy.random.Generator`` streams.

    Parameters
    ----------
    seed:
        Experiment-level seed. Two registries with the same seed hand
        out identical streams for identical names.

    Examples
    --------
    >>> rngs = RngRegistry(seed=7)
    >>> arrivals = rngs.stream("arrivals")
    >>> service = rngs.stream("service/core0")
    >>> rngs.stream("arrivals") is arrivals   # cached
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            seq = np.random.SeedSequence(entropy=(self.seed, _stream_key(name)))
            generator = np.random.default_rng(seq)
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RngRegistry":
        """Create a child registry whose streams are independent of ours."""
        return RngRegistry(seed=(self.seed * 0x9E3779B1 + _stream_key(name)) % 2**63)

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
