"""Small helpers on top of the kernel."""

from __future__ import annotations

from typing import Any, Callable

from .engine import Environment

__all__ = ["delayed_call"]


def delayed_call(
    env: Environment, delay: float, fn: Callable[..., Any], *args: Any
) -> None:
    """Invoke ``fn(*args)`` after ``delay`` time units.

    Cheaper than spawning a process: a bare timeout with a callback.
    Used for fire-and-forget latency modeling (mesh hops, wire delays).
    """
    env.timeout(delay).add_callback(lambda _event: fn(*args))
