"""Small helpers on top of the kernel."""

from __future__ import annotations

from typing import Any, Callable

from .engine import Environment

__all__ = ["delayed_call"]


def delayed_call(
    env: Environment, delay: float, fn: Callable[..., Any], *args: Any
) -> None:
    """Invoke ``fn(*args)`` after ``delay`` time units.

    Cheaper than spawning a process, and allocation-free: delegates to
    :meth:`Environment.schedule_call`, which recycles pooled callback
    events. Used for fire-and-forget latency modeling (mesh hops, wire
    delays).
    """
    env.schedule_call(delay, fn, *args)
