"""Shared-resource primitives built on the event kernel.

Three primitives cover every synchronization pattern in the models:

* :class:`Store` — an (optionally bounded) FIFO buffer of items.
  Queue pairs (WQs/CQs), the shared completion queue, and per-core
  receive queues are all Stores.
* :class:`PriorityStore` — a Store that hands out the smallest item
  first; used where ordering matters (e.g. priority dispatch ablation).
* :class:`Resource` — ``capacity`` identical slots with FIFO waiters;
  the MCS-lock contention model is a ``Resource(capacity=1)``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Generic, List, Optional, TypeVar

from .engine import Environment
from .events import Event

__all__ = ["Store", "PriorityStore", "Resource", "Request"]

T = TypeVar("T")


class StorePut(Event):
    """Event representing a pending ``put``; fires when the item is stored."""

    __slots__ = ("item", "_store")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        self._store = store

    def _abandon(self) -> None:
        """Withdraw this pending put (the waiter was interrupted)."""
        try:
            self._store._putters.remove(self)
        except ValueError:
            pass


class StoreGet(Event):
    """Event representing a pending ``get``; fires with the item."""

    __slots__ = ("_store",)

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        self._store = store

    def _abandon(self) -> None:
        """Withdraw this pending get (the waiter was interrupted).

        Without this, a later put would match the orphaned get and the
        item would vanish — no live process would ever receive it.
        """
        try:
            self._store._getters.remove(self)
        except ValueError:
            pass


class Store(Generic[T]):
    """A FIFO buffer of items with blocking ``put``/``get`` events.

    Parameters
    ----------
    env:
        The simulation environment.
    capacity:
        Maximum number of stored items; ``None`` means unbounded.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[T]:
        """Snapshot of currently stored items (FIFO order)."""
        return list(self._items)

    @property
    def waiting_getters(self) -> int:
        """Number of pending ``get`` requests."""
        return len(self._getters)

    @property
    def waiting_putters(self) -> int:
        """Number of pending ``put`` requests."""
        return len(self._putters)

    # -- storage policy (overridden by PriorityStore) ----------------------

    def _do_put(self, item: T) -> None:
        self._items.append(item)

    def _do_get(self) -> T:
        return self._items.popleft()

    # -- operations --------------------------------------------------------

    def put(self, item: T) -> StorePut:
        """Store ``item``; the returned event fires once it is stored."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._trigger()
        return event

    def get(self) -> StoreGet:
        """Retrieve an item; the returned event fires with the item."""
        event = StoreGet(self)
        self._getters.append(event)
        self._trigger()
        return event

    def try_get(self) -> Optional[T]:
        """Non-blocking get: pop an item if available, else ``None``.

        Only valid when no getters are waiting (the waiters would have
        priority); models that mix blocking and polling styles should
        pick one per store.
        """
        if self._getters:
            raise RuntimeError("try_get with blocked getters would reorder items")
        if not self._items:
            return None
        item = self._do_get()
        self._trigger()
        return item

    def _trigger(self) -> None:
        """Match pending putters to free capacity and getters to items."""
        progress = True
        while progress:
            progress = False
            if self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                put_event = self._putters.popleft()
                self._do_put(put_event.item)
                put_event.succeed()
                progress = True
            if self._getters and self._items:
                get_event = self._getters.popleft()
                get_event.succeed(self._do_get())
                progress = True


class PriorityStore(Store[T]):
    """A Store that always yields the smallest item first.

    Items must be mutually comparable; use ``(priority, seq, payload)``
    tuples for stable ordering.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        super().__init__(env, capacity)
        self._heap: List[T] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> List[T]:
        return sorted(self._heap)

    def _do_put(self, item: T) -> None:
        heapq.heappush(self._heap, item)

    def _do_get(self) -> T:
        return heapq.heappop(self._heap)

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and (
                self.capacity is None or len(self._heap) < self.capacity
            ):
                put_event = self._putters.popleft()
                self._do_put(put_event.item)
                put_event.succeed()
                progress = True
            if self._getters and self._heap:
                get_event = self._getters.popleft()
                get_event.succeed(self._do_get())
                progress = True


class Request(Event):
    """A pending or held claim on a :class:`Resource`.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released on exit
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def _abandon(self) -> None:
        """Withdraw a pending claim (the waiter was interrupted)."""
        self.resource.release(self)


class Resource:
    """``capacity`` interchangeable slots with FIFO granting.

    Models mutual exclusion (capacity 1 — e.g. the MCS lock's serialized
    hand-off) and limited parallelism (capacity k).
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiters: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self, request: Request) -> None:
        """Release a held (or cancel a pending) request."""
        try:
            self._users.remove(request)
        except ValueError:
            # Not holding: cancel from the wait queue if still pending.
            try:
                self._waiters.remove(request)
            except ValueError:
                pass
            return
        if self._waiters:
            nxt = self._waiters.popleft()
            self._users.append(nxt)
            nxt.succeed()
