"""Event primitives for the discrete-event simulation kernel.

The kernel follows the familiar process-interaction style (as popularized
by SimPy): *events* are one-shot triggerable objects carrying a value or
an exception, and *processes* are Python generators that ``yield`` events
to suspend themselves until those events fire.

Everything in the RPCValet reproduction — NI pipelines, cores, traffic
generators, lock models — is expressed on top of these primitives, so
their semantics are deliberately small and rigorously tested:

* an event may be triggered exactly once (``succeed`` or ``fail``);
* callbacks added before the trigger run when the event is processed by
  the environment's event loop; callbacks added after it was processed
  run immediately;
* a failed event that is yielded by a process re-raises its exception
  inside that process.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

__all__ = [
    "Event",
    "Callback",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "PENDING",
]


class _Pending:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Singleton marker stored in :attr:`Event._value` before the trigger.
PENDING = _Pending()


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` (an arbitrary object supplied to
    :meth:`Process.interrupt`) is available as ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence at a point in simulated time.

    Events start *untriggered*. Calling :meth:`succeed` or :meth:`fail`
    triggers them, which schedules them on the environment's event heap
    at the current simulation time; the environment then *processes*
    the event, running its callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        self.env = env
        #: Callbacks invoked with the event when it is processed. ``None``
        #: after processing (used as the "already processed" flag).
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._processed = False
        self._defused = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every process waiting on the
        event. If nothing ever waits on a failed event the environment
        re-raises the exception at the end of the run, so failures are
        never silently dropped (set :meth:`defused` to opt out).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled outside a process."""
        self._defused = True

    # -- callback management ------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed, the callback runs
        immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # Support ``yield evt1 | evt2`` and ``yield evt1 & evt2``.

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])

    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])


class Callback(Event):
    """A pooled fire-and-forget callback event.

    Backs :meth:`Environment.schedule_call`, the allocation-free
    replacement for ``timeout + lambda``: the event keeps a permanent
    single-entry callbacks list (``[self._fire]``), and firing re-arms
    the instance and returns it to the environment's pool before
    invoking the target — so one instance serves an unbounded stream of
    delayed calls instead of a fresh ``Timeout`` + closure + list per
    call. Not for external use: it violates the one-shot contract of
    :class:`Event` by design.
    """

    __slots__ = ("fn", "args", "_arm", "_pool_append")

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        super().__init__(env)
        #: The permanent callbacks list; re-installed on every re-arm.
        self._arm = [self._fire]
        self.callbacks = self._arm
        self._ok = True
        self._value = None
        self.fn: Optional[Callable[..., Any]] = None
        self.args: tuple = ()
        #: Bound pool append — one firing per delayed call makes the
        #: env/attribute chain lookup measurable.
        self._pool_append = env._call_pool.append

    def _fire(self, _event: Event) -> None:
        fn = self.fn
        args = self.args
        # Re-arm and pool *before* invoking: the target may itself
        # schedule_call and is welcome to reuse this very instance.
        self.fn = None
        self.args = ()
        self.callbacks = self._arm
        self._processed = False
        self._pool_append(self)
        fn(*args)


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events trigger themselves")


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:  # noqa: F821
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that triggers when the generator
    returns (with the generator's return value) or raises (with the
    exception). Other processes can therefore wait for it:

    ``result = yield env.process(worker(env))``
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already terminated")
        if self._target is self:  # pragma: no cover - defensive
            raise RuntimeError("a process cannot interrupt itself this way")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env._schedule(interrupt_event, priority=0)

    # -- generator driving ---------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        # Detach from the event we were waiting on (relevant for
        # interrupts, where the original target may fire later).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            else:
                # We abandoned a still-pending claim (a Store get/put
                # or a Resource request): let its owner withdraw it so
                # it cannot consume an item/slot nobody will receive.
                abandon = getattr(self._target, "_abandon", None)
                if abandon is not None:
                    abandon()
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._schedule(self)
                break

            if not isinstance(next_event, Event):
                self._generator.throw(
                    RuntimeError(f"process yielded a non-event: {next_event!r}")
                )
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: subscribe and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: continue immediately with its value.
            event = next_event

        env._active_process = None


class Condition(Event):
    """Composite event over a list of events.

    Triggers when ``evaluate(events, done_count)`` returns True, with a
    dict mapping each *triggered* constituent event to its value. If any
    constituent fails, the condition fails with the same exception.
    """

    __slots__ = ("_events", "_done", "_evaluate")

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        events: List[Event],
        evaluate: Callable[[List[Event], int], bool],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._done = 0
        self._evaluate = evaluate
        for evt in self._events:
            if evt.env is not env:
                raise ValueError("events belong to different environments")
        if not self._events:
            self.succeed({})
            return
        for evt in self._events:
            evt.add_callback(self._check)

    def _collect_values(self) -> dict:
        # Only *processed* events count: a Timeout is "triggered" from
        # creation (its value is pre-set) but has not occurred until the
        # event loop processes it.
        return {
            evt: evt._value
            for evt in self._events
            if evt._processed and evt._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._done += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._done):
            self.succeed(self._collect_values())


class AnyOf(Condition):
    """Condition that triggers when any constituent event triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: List[Event]) -> None:  # noqa: F821
        super().__init__(env, events, lambda events, done: done >= 1)


class AllOf(Condition):
    """Condition that triggers when all constituent events trigger."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: List[Event]) -> None:  # noqa: F821
        super().__init__(env, events, lambda events, done: done == len(events))
