"""Load-signal models: how fresh is the rack scheduler's view of load?

Load-aware inter-server policies (JSQ(d), SED) act on *estimates* of
per-server load. In a real rack those estimates are stale: they rode a
reply that left the server microseconds ago, or a periodic broadcast
that is most of a period old. At µs RPC scales that staleness is the
difference between power-of-d-choices working and the whole rack
herding onto whichever server *looked* idle (RackSched, OSDI'20; RAIN,
2025). This module models the signal path explicitly:

* :class:`InstantSignal` — oracle freshness: every decision reads the
  true outstanding load. The upper bound no real system achieves.
* :class:`PiggybackSignal` — the server's load rides each reply's
  replenish credit back to the *issuing* client; a client's view of a
  server refreshes only when one of its own RPCs completes there, and
  is one fabric traversal old on arrival.
* :class:`BroadcastSignal` — every server publishes its load every
  ``period_ns`` to all clients, each copy paying the fabric's one-way
  latency. Staleness grows with the period: the knob the ``ext-rack``
  experiment sweeps.

The signal *value* is uniform across models: the number of RPCs routed
to the server and not yet completed (committed in-flight + queued +
executing), maintained by :class:`repro.rack.router.RackRouter`.
Estimates are the raw last-received values — deliberately *not*
compensated with the client's own in-flight counts — so the staleness
pathology the related work studies (synchronized herding) is
reproduced, not papered over.

``make_signal`` parses sweep spec strings: ``"fresh"``,
``"piggyback"``, ``"broadcast:20000"`` (period in ns).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List

__all__ = [
    "LoadSignal",
    "InstantSignal",
    "PiggybackSignal",
    "BroadcastSignal",
    "make_signal",
]

if TYPE_CHECKING:  # pragma: no cover
    from .router import RackRouter


class LoadSignal(abc.ABC):
    """A client-side estimator of every peer's outstanding load."""

    label: str = "signal"

    def __init__(self) -> None:
        self.router: "RackRouter" = None  # bound by RackRouter.bind

    def bind(self, router: "RackRouter") -> None:
        """Attach to the router (called once, before traffic starts)."""
        self.router = router
        num_nodes = router.num_nodes
        #: estimates[client][server] — the client's current belief.
        self.estimates: List[List[float]] = [
            [0.0] * num_nodes for _ in range(num_nodes)
        ]

    def estimate(self, client: int, server: int) -> float:
        """The client's current belief about ``server``'s load."""
        return self.estimates[client][server]

    # -- event hooks (no-ops by default) -----------------------------------

    def on_reply(self, client: int, server: int, reported_load: float) -> None:
        """A reply from ``server`` reached ``client`` (piggyback hook)."""

    def start(self) -> None:
        """Called once when traffic starts (broadcast processes spawn here)."""


class InstantSignal(LoadSignal):
    """Oracle: estimates are always the true outstanding load."""

    label = "fresh"

    def estimate(self, client: int, server: int) -> float:
        return float(self.router.outstanding[server])


class PiggybackSignal(LoadSignal):
    """Replies carry the server's load back to the issuing client.

    The cluster's replenish credit already crosses the fabric back to
    the sender on every completion; the signal rides it for free. The
    router captures the server's outstanding count at completion time
    and delivers it here after the fabric delay.
    """

    label = "piggyback"

    def on_reply(self, client: int, server: int, reported_load: float) -> None:
        self.estimates[client][server] = reported_load


class BroadcastSignal(LoadSignal):
    """Periodic load broadcast: every server, every ``period_ns``.

    Each broadcast captures the server's outstanding count at the tick
    and lands at every client one fabric traversal later. Between
    ticks the view only ages — the classic stale-signal regime.
    """

    def __init__(self, period_ns: float) -> None:
        super().__init__()
        if period_ns <= 0:
            raise ValueError(f"period_ns must be positive, got {period_ns!r}")
        self.period_ns = period_ns
        self.label = f"broadcast/{period_ns:g}ns"

    def start(self) -> None:
        cluster = self.router.cluster
        for server in range(self.router.num_nodes):
            cluster.env.process(
                self._broadcaster(server), name=f"load-bcast-{server}"
            )

    def _broadcaster(self, server: int):
        from ..sim import delayed_call

        cluster = self.router.cluster
        env = cluster.env
        injector = getattr(cluster, "injector", None)
        while not cluster.traffic_drained():
            yield env.timeout(self.period_ns)
            if injector is not None and (
                not injector.node_up(server) or injector.signals_dark()
            ):
                # A down server broadcasts nothing; a signal blackout
                # silences the whole signal plane. The view only ages.
                continue
            load = float(self.router.outstanding[server])
            for client in range(self.router.num_nodes):
                if client == server:
                    continue
                delay = cluster.fabric.latency_ns(server, client)
                if injector is not None:
                    injector.transmit(delay, self._deliver, client, server, load)
                else:
                    delayed_call(env, delay, self._deliver, client, server, load)

    def _deliver(self, client: int, server: int, load: float) -> None:
        self.estimates[client][server] = load


def make_signal(spec: str) -> LoadSignal:
    """Build a load-signal model from its sweep spec string."""
    spec = spec.strip().lower()
    if spec in ("fresh", "instant"):
        return InstantSignal()
    if spec == "piggyback":
        return PiggybackSignal()
    if spec.startswith("broadcast"):
        _, _, period = spec.partition(":")
        if not period:
            raise ValueError(
                f"broadcast signal needs a period: 'broadcast:<ns>', got {spec!r}"
            )
        return BroadcastSignal(float(period))
    raise ValueError(
        f"unknown load signal {spec!r}; expected fresh|piggyback|broadcast:<ns>"
    )
