"""Rack-level scheduling: two-level load balancing across RPCValet servers.

RPCValet (the paper) dispatches RPCs to cores *within* one server; this
package adds the second scheduling tier a rack needs: client-side
routing of each RPC to a server, driven by load signals that cross the
same fabric as the RPCs and are therefore stale. Combined with the
:mod:`repro.cluster` substrate (K fully simulated chips) it turns the
single-chip reproduction into a testbed for the paper's natural
follow-on question — does single-queue dispatch inside each server
still win when the rack-level router is smart, dumb, or stale?

Pieces:

* :mod:`repro.rack.policies` — inter-server routing rules (uniform
  random, round-robin, JSQ(d), shortest-expected-delay) plus the
  Zipf destination-popularity model;
* :mod:`repro.rack.signals` — load-signal freshness models
  (instantaneous oracle, piggybacked-on-replies, periodic broadcast);
* :mod:`repro.rack.router` — the :class:`RackRouter` gluing both into
  a :class:`repro.cluster.Cluster` (pass ``router=`` to the cluster).

The ``ext-rack`` experiment (:mod:`repro.experiments.rack`) sweeps
policy x staleness x skew x per-node dispatch scheme.
"""

from .policies import (
    PowerOfD,
    RackPolicy,
    RoundRobinPolicy,
    ShortestExpectedDelay,
    UniformRandomPolicy,
    ZipfDestinations,
    make_policy,
)
from .router import RackRouter, RouterStats
from .signals import (
    BroadcastSignal,
    InstantSignal,
    LoadSignal,
    PiggybackSignal,
    make_signal,
)

__all__ = [
    "RackPolicy",
    "UniformRandomPolicy",
    "RoundRobinPolicy",
    "PowerOfD",
    "ShortestExpectedDelay",
    "ZipfDestinations",
    "make_policy",
    "LoadSignal",
    "InstantSignal",
    "PiggybackSignal",
    "BroadcastSignal",
    "make_signal",
    "RackRouter",
    "RouterStats",
]
