"""Inter-server routing policies: the rack scheduler's decision rules.

RPCValet balances *within* a server; a rack-scale deployment also needs
a client-side rule deciding *which* server each RPC goes to (RackSched,
OSDI'20). A :class:`RackPolicy` makes that decision from (a) the
client's view of per-server load — supplied by a
:class:`repro.rack.signals.LoadSignal`, which may be arbitrarily stale —
and (b) a destination *popularity* model (:class:`ZipfDestinations`)
that skews where requests want to land, modeling hot shards that break
random spray.

Policies are deliberately simple and classic:

* :class:`UniformRandomPolicy` — one popularity-weighted sample, the
  cluster package's historical behaviour when popularity is uniform;
* :class:`RoundRobinPolicy` — oblivious even spread, per-client cycle;
* :class:`PowerOfD` — JSQ(d): sample ``d`` distinct candidates by
  popularity, route to the one the load signal claims is least loaded;
* :class:`ShortestExpectedDelay` — over *all* peers, minimize
  ``(estimated load + 1) / capacity``, the heterogeneity-aware rule.

``make_policy`` parses the spec strings the experiment driver sweeps
(``"random"``, ``"rr"``, ``"jsq2"``, ``"jsq3"``, ``"sed"``).
"""

from __future__ import annotations

import abc
from typing import AbstractSet, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "RackPolicy",
    "UniformRandomPolicy",
    "RoundRobinPolicy",
    "PowerOfD",
    "ShortestExpectedDelay",
    "ZipfDestinations",
    "make_policy",
]


class ZipfDestinations:
    """Popularity-weighted destination sampler (Zipf over node rank).

    With ``skew == 0`` every peer is equally likely — the uniform spray
    the cluster package started with. With ``skew > 0`` node *rank*
    (its id) gets weight ``1 / (rank + 1)**skew``, so node 0 is the
    cluster-wide hot shard every client favours. Each client excludes
    itself and renormalizes over its peers.
    """

    def __init__(self, num_nodes: int, skew: float = 0.0) -> None:
        if num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {num_nodes!r}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew!r}")
        self.num_nodes = num_nodes
        self.skew = skew
        weights = np.array(
            [1.0 / (rank + 1.0) ** skew for rank in range(num_nodes)]
        )
        #: Per-client peer lists, raw weights, and cumulative weights.
        self._peers: List[np.ndarray] = []
        self._weights: List[np.ndarray] = []
        self._cumulative: List[np.ndarray] = []
        for client in range(num_nodes):
            peers = np.array(
                [node for node in range(num_nodes) if node != client]
            )
            peer_weights = weights[peers]
            self._peers.append(peers)
            self._weights.append(peer_weights)
            self._cumulative.append(
                np.cumsum(peer_weights / peer_weights.sum())
            )

    def peers_of(self, client: int) -> Sequence[int]:
        return self._peers[client]

    def cumulative_of(self, client: int) -> np.ndarray:
        """Cumulative popularity over ``peers_of(client)``, for batched draws.

        The vectorized fast path samples thousands of destinations with
        one ``searchsorted`` against this array instead of one scalar
        :meth:`sample` call per RPC.
        """
        return self._cumulative[client]

    def sample(
        self,
        client: int,
        rng: np.random.Generator,
        allowed: Optional[AbstractSet[int]] = None,
    ) -> int:
        """Draw one destination for ``client`` by popularity.

        With ``allowed`` (a restricted candidate set, e.g. suspected
        servers excluded), popularity renormalizes over the allowed
        peers. ``allowed=None`` keeps the exact historical draw
        sequence (one uniform variate against precomputed cumulative
        weights).
        """
        if allowed is None:
            cumulative = self._cumulative[client]
            index = int(np.searchsorted(cumulative, rng.random(), side="right"))
            return int(self._peers[client][min(index, len(cumulative) - 1)])
        peers = self._peers[client]
        keep = [i for i, node in enumerate(peers) if int(node) in allowed]
        if not keep:
            keep = list(range(len(peers)))
        weights = self._weights[client][keep]
        cumulative = np.cumsum(weights / weights.sum())
        index = int(np.searchsorted(cumulative, rng.random(), side="right"))
        return int(peers[keep[min(index, len(cumulative) - 1)]])

    def sample_distinct(
        self,
        client: int,
        count: int,
        rng: np.random.Generator,
        allowed: Optional[AbstractSet[int]] = None,
    ) -> List[int]:
        """Draw ``count`` distinct destinations by popularity.

        Rejection-samples (cheap for rack-sized fan-outs); falls back to
        the full candidate list when ``count`` exhausts it.
        """
        peers = self._peers[client]
        if allowed is not None:
            pool = [int(node) for node in peers if int(node) in allowed]
            if not pool:
                pool = [int(node) for node in peers]
        else:
            pool = [int(node) for node in peers]
        if count >= len(pool):
            return pool
        chosen: List[int] = []
        while len(chosen) < count:
            candidate = self.sample(client, rng, allowed)
            if candidate not in chosen:
                chosen.append(candidate)
        return chosen


class RackPolicy(abc.ABC):
    """Picks a destination server for one RPC issued by ``client``."""

    label: str = "policy"

    #: True when the policy reads the load signal (drives whether the
    #: router records staleness errors for its decisions).
    uses_load_signal: bool = False

    @abc.abstractmethod
    def choose(
        self,
        client: int,
        destinations: ZipfDestinations,
        estimates: Dict[int, float],
        capacities: Dict[int, float],
        rng: np.random.Generator,
    ) -> int:
        """Return the destination node id for one request.

        ``estimates``' key set is the *candidate set*: normally every
        peer of ``client``, but the router may exclude
        suspected-dead servers — policies must route within it. Values
        are the client's current belief about each candidate's
        outstanding load (see :mod:`repro.rack.signals`);
        ``capacities`` maps peers to relative service capacity
        (cores x speed, 1.0 for a homogeneous rack).
        """


def _restriction(
    client: int, destinations: "ZipfDestinations", estimates: Dict[int, float]
):
    """The allowed-set for sampling, or None for the full peer set.

    Returning None on the unrestricted (common) case keeps the
    historical RNG draw sequence bit-identical.
    """
    if len(estimates) == len(destinations.peers_of(client)):
        return None
    return estimates.keys()


class UniformRandomPolicy(RackPolicy):
    """Popularity-weighted random spray (uniform when skew is 0)."""

    label = "random"

    def choose(self, client, destinations, estimates, capacities, rng):
        return destinations.sample(
            client, rng, _restriction(client, destinations, estimates)
        )


class RoundRobinPolicy(RackPolicy):
    """Per-client cycle over its peers, offset by client id.

    Ignores both popularity and load: the "perfectly even but
    oblivious" baseline between random spray and load-aware routing.
    """

    label = "rr"

    def __init__(self) -> None:
        self._cursor: Dict[int, int] = {}

    def choose(self, client, destinations, estimates, capacities, rng):
        peers = destinations.peers_of(client)
        cursor = self._cursor.get(client, client % len(peers))
        if len(estimates) != len(peers):
            # Advance past excluded (suspected) peers; at most one full
            # cycle, falling back to the raw cursor if all are excluded.
            for _ in range(len(peers)):
                node = int(peers[cursor % len(peers)])
                cursor += 1
                if node in estimates:
                    self._cursor[client] = cursor
                    return node
        self._cursor[client] = cursor + 1
        return int(peers[cursor % len(peers)])


def _argmin_with_random_ties(
    candidates: Sequence[int],
    score: Dict[int, float],
    rng: np.random.Generator,
) -> int:
    best = min(score[node] for node in candidates)
    tied = [node for node in candidates if score[node] == best]
    if len(tied) == 1:
        return tied[0]
    return tied[int(rng.integers(0, len(tied)))]


class PowerOfD(RackPolicy):
    """JSQ(d): least estimated load among d popularity-drawn candidates."""

    uses_load_signal = True

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d!r}")
        self.d = d
        self.label = f"jsq{d}"

    def choose(self, client, destinations, estimates, capacities, rng):
        candidates = destinations.sample_distinct(
            client, self.d, rng, _restriction(client, destinations, estimates)
        )
        return _argmin_with_random_ties(candidates, estimates, rng)


class ShortestExpectedDelay(RackPolicy):
    """SED over all peers: minimize (estimate + 1) / capacity.

    The rule that remains sensible on an asymmetric rack: a node with
    twice the cores (or clock) absorbs twice the queue for the same
    expected delay.
    """

    label = "sed"
    uses_load_signal = True

    def choose(self, client, destinations, estimates, capacities, rng):
        # The candidate set is the estimates key set (insertion order
        # follows peers_of, so draws match the historical behaviour
        # when no peer is excluded).
        score = {
            node: (estimate + 1.0) / capacities[node]
            for node, estimate in estimates.items()
        }
        return _argmin_with_random_ties(list(score), score, rng)


def make_policy(spec: str) -> RackPolicy:
    """Build a policy from its sweep spec string."""
    spec = spec.strip().lower()
    if spec in ("random", "uniform"):
        return UniformRandomPolicy()
    if spec in ("rr", "round-robin", "roundrobin"):
        return RoundRobinPolicy()
    if spec.startswith("jsq"):
        suffix = spec[3:] or "2"
        try:
            d = int(suffix)
        except ValueError:
            raise ValueError(f"bad JSQ(d) spec {spec!r}") from None
        return PowerOfD(d)
    if spec == "sed":
        return ShortestExpectedDelay()
    raise ValueError(
        f"unknown rack policy {spec!r}; expected random|rr|jsqD|sed"
    )
