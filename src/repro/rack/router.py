"""RackRouter: the glue between rack policies, load signals, and the cluster.

One router serves a whole :class:`repro.cluster.Cluster`. Every node's
traffic generator asks it for a destination per RPC; the router asks
the policy, which reads the load-signal model's (possibly stale)
estimates. The router also owns the ground truth those estimates chase:
``outstanding[j]`` — RPCs routed to node *j* and not yet completed —
incremented at each routing decision, decremented when node *j* posts
the replenish.

Observability: per-destination decision counts and (for load-aware
policies) the absolute estimate error at each decision, both as plain
stats (always on, O(1) per decision) and as telemetry counters /
staleness-error histograms when the cluster runs instrumented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from .policies import RackPolicy, ZipfDestinations, make_policy
from .signals import LoadSignal, make_signal

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster

__all__ = ["RackRouter", "RouterStats"]


@dataclass
class RouterStats:
    """Routing behaviour of one cluster run."""

    policy: str
    signal: str
    skew: float
    #: RPCs routed to each node, node-id indexed.
    routed: List[int] = field(default_factory=list)
    decisions: int = 0
    #: Sum/count of |estimate - true load| at load-aware decisions.
    signal_error_sum: float = 0.0
    signal_error_count: int = 0
    #: Attempts the client abandoned (timeout) with outstanding corrected.
    abandoned: int = 0
    #: Failure-detector activity (robust runs with suspicion enabled).
    suspicions: int = 0
    readmissions: int = 0
    false_suspicions: int = 0

    @property
    def mean_signal_error(self) -> float:
        """Mean absolute staleness error, in outstanding RPCs."""
        if self.signal_error_count == 0:
            return 0.0
        return self.signal_error_sum / self.signal_error_count

    def routed_fractions(self) -> List[float]:
        total = sum(self.routed)
        if total == 0:
            return [0.0] * len(self.routed)
        return [count / total for count in self.routed]


class RackRouter:
    """Client-side inter-server scheduler for one cluster.

    Parameters
    ----------
    policy:
        A :class:`RackPolicy` instance or spec string (``"jsq2"``...).
    signal:
        A :class:`LoadSignal` instance or spec string (``"fresh"``,
        ``"piggyback"``, ``"broadcast:<ns>"``).
    skew:
        Zipf exponent of destination popularity (0 = uniform).
    suspect_after_ns:
        Enables the failure detector (robust clusters only): a server
        not heard from for this long is *suspected* and removed from
        the routing candidate set until a heartbeat readmits it.
    heartbeat_period_ns:
        Liveness heartbeat period; defaults to ``suspect_after_ns / 4``
        so a healthy server is never falsely suspected by timing alone.
    """

    def __init__(
        self,
        policy: "RackPolicy | str" = "random",
        signal: "LoadSignal | str" = "fresh",
        skew: float = 0.0,
        suspect_after_ns: Optional[float] = None,
        heartbeat_period_ns: Optional[float] = None,
    ) -> None:
        if suspect_after_ns is not None and suspect_after_ns <= 0:
            raise ValueError(
                f"suspect_after_ns must be positive, got {suspect_after_ns!r}"
            )
        if heartbeat_period_ns is not None and heartbeat_period_ns <= 0:
            raise ValueError(
                f"heartbeat_period_ns must be positive, got {heartbeat_period_ns!r}"
            )
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.signal = make_signal(signal) if isinstance(signal, str) else signal
        self.skew = skew
        self.suspect_after_ns = suspect_after_ns
        self.heartbeat_period_ns = heartbeat_period_ns
        self.cluster: Optional["Cluster"] = None
        self.num_nodes = 0
        #: Ground truth: RPCs routed to node j and not yet completed.
        self.outstanding: List[int] = []
        #: Servers the failure detector currently believes are dead.
        self.suspected: set = set()
        self.last_heard: List[float] = []
        self.destinations: Optional[ZipfDestinations] = None
        self.capacities: Dict[int, float] = {}
        self.stats = RouterStats(
            policy=self.policy.label, signal=self.signal.label, skew=skew
        )
        #: Telemetry hooks, installed by
        #: :func:`repro.telemetry.instrument_cluster` (None = disabled).
        self.decision_counters: Optional[List] = None
        self.staleness_hist = None
        self.detection_hist = None
        #: One-shot span-tracing hook: a traced client sets this to its
        #: :class:`repro.tracing.RpcTrace` just before :meth:`choose`;
        #: the decision detail is recorded on the trace and the hook
        #: cleared. None (the overwhelmingly common case) costs one
        #: ``is not None`` check per decision.
        self.trace_capture = None

    # -- wiring -----------------------------------------------------------

    def bind(self, cluster: "Cluster") -> None:
        """Attach to ``cluster`` (called by the cluster constructor)."""
        self.cluster = cluster
        self.num_nodes = cluster.num_nodes
        self.outstanding = [0] * self.num_nodes
        self.stats.routed = [0] * self.num_nodes
        self.suspected = set()
        self.last_heard = [0.0] * self.num_nodes
        self.destinations = ZipfDestinations(self.num_nodes, self.skew)
        self.capacities = {
            node: cluster.capacity_weight(node) for node in range(self.num_nodes)
        }
        self.signal.bind(self)

    def start(self) -> None:
        """Traffic is about to start (spawns broadcast processes)."""
        self.signal.start()
        cluster = self.cluster
        injector = getattr(cluster, "injector", None)
        if self.suspect_after_ns is not None and injector is not None:
            period = self.heartbeat_period_ns
            if period is None:
                period = self.suspect_after_ns / 4.0
            self._hb_period = period
            for server in range(self.num_nodes):
                cluster.env.process(
                    self._heartbeat(server), name=f"heartbeat-{server}"
                )
            cluster.env.process(self._detector(), name="fault-detector")

    # -- failure detection -------------------------------------------------

    def _heartbeat(self, server: int):
        """Server-side liveness beacon: one message per period.

        Suppressed while the server is down or the signal plane is
        blacked out; the message crosses the fault-injected fabric, so
        heartbeats can be dropped or delayed like any other traffic.
        """
        cluster = self.cluster
        env = cluster.env
        injector = cluster.injector
        fabric = cluster.fabric
        #: Delivered to the rack-wide detector after the server's
        #: worst-case one-way latency to any peer.
        delay = max(
            fabric.latency_ns(server, peer)
            for peer in range(self.num_nodes)
            if peer != server
        )
        while not cluster.traffic_drained():
            yield env.timeout(self._hb_period)
            if not injector.node_up(server) or injector.signals_dark():
                continue
            injector.transmit(delay, self._heartbeat_received, server)

    def _heartbeat_received(self, server: int) -> None:
        self.last_heard[server] = self.cluster.env.now
        if server in self.suspected:
            self.suspected.discard(server)
            self.stats.readmissions += 1
            self.cluster.injector.stats.readmissions += 1

    def _detector(self):
        """Rack-wide suspicion sweep, once per heartbeat period."""
        cluster = self.cluster
        env = cluster.env
        injector = cluster.injector
        threshold = self.suspect_after_ns
        while not cluster.traffic_drained():
            yield env.timeout(self._hb_period)
            now = env.now
            for server in range(self.num_nodes):
                if server in self.suspected:
                    continue
                if now - self.last_heard[server] <= threshold:
                    continue
                self.suspected.add(server)
                self.stats.suspicions += 1
                fault_stats = injector.stats
                fault_stats.suspicions += 1
                crashed_at = injector.crashed_at[server]
                if crashed_at is None:
                    self.stats.false_suspicions += 1
                    fault_stats.false_suspicions += 1
                else:
                    latency = now - crashed_at
                    fault_stats.detection_latency_ns.append(latency)
                    if self.detection_hist is not None:
                        self.detection_hist.record(latency)

    # -- the decision -----------------------------------------------------

    def choose(self, client: int, rng: np.random.Generator) -> int:
        """Route one RPC issued by ``client``; returns the server id.

        The candidate set is the key set of ``estimates``: all of the
        client's peers, minus currently-suspected servers (falling back
        to every peer when all are suspected — routing somewhere beats
        routing nowhere).
        """
        signal = self.signal
        peers = self.destinations.peers_of(client)
        suspected = self.suspected
        if suspected:
            candidates = [int(node) for node in peers if int(node) not in suspected]
            if not candidates:
                candidates = [int(node) for node in peers]
        else:
            candidates = [int(node) for node in peers]
        estimates = {node: signal.estimate(client, node) for node in candidates}
        dst = self.policy.choose(
            client, self.destinations, estimates, self.capacities, rng
        )
        capture = self.trace_capture
        if capture is not None:
            self.trace_capture = None
            capture.note_decision(
                policy=self.policy.label,
                signal=self.signal.label,
                dst=dst,
                estimate=float(estimates[dst]),
                outstanding=self.outstanding[dst],
                candidates=len(candidates),
                suspected=len(suspected),
            )
        if self.policy.uses_load_signal:
            error = abs(estimates[dst] - self.outstanding[dst])
            self.stats.signal_error_sum += error
            self.stats.signal_error_count += 1
            if self.staleness_hist is not None:
                self.staleness_hist.record(error)
        self.outstanding[dst] += 1
        self.stats.routed[dst] += 1
        self.stats.decisions += 1
        if self.decision_counters is not None:
            self.decision_counters[dst].inc()
        return dst

    # -- completion feedback ----------------------------------------------

    def on_complete(self, server: int) -> float:
        """Node ``server`` completed one RPC; returns its load *after*.

        The returned value is what a reply leaving now would report —
        the cluster delivers it to the issuing client via
        :meth:`deliver_report` after the fabric delay when the signal
        model wants reply piggybacking.
        """
        self.outstanding[server] -= 1
        return float(self.outstanding[server])

    def on_attempt_abandoned(self, server: int) -> None:
        """A client abandoned (timed out) an attempt routed to ``server``.

        Corrects the ground-truth outstanding count exactly once per
        routed attempt — the attempt record's ``open`` flag guarantees
        either this or :meth:`on_complete` fires, never both.
        """
        self.outstanding[server] -= 1
        self.stats.abandoned += 1

    @property
    def wants_reply_reports(self) -> bool:
        from .signals import PiggybackSignal

        return isinstance(self.signal, PiggybackSignal)

    def deliver_report(self, client: int, server: int, load: float) -> None:
        """A reply-piggybacked load report reached ``client``."""
        self.signal.on_reply(client, server, load)
