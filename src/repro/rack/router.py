"""RackRouter: the glue between rack policies, load signals, and the cluster.

One router serves a whole :class:`repro.cluster.Cluster`. Every node's
traffic generator asks it for a destination per RPC; the router asks
the policy, which reads the load-signal model's (possibly stale)
estimates. The router also owns the ground truth those estimates chase:
``outstanding[j]`` — RPCs routed to node *j* and not yet completed —
incremented at each routing decision, decremented when node *j* posts
the replenish.

Observability: per-destination decision counts and (for load-aware
policies) the absolute estimate error at each decision, both as plain
stats (always on, O(1) per decision) and as telemetry counters /
staleness-error histograms when the cluster runs instrumented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from .policies import RackPolicy, ZipfDestinations, make_policy
from .signals import LoadSignal, make_signal

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster

__all__ = ["RackRouter", "RouterStats"]


@dataclass
class RouterStats:
    """Routing behaviour of one cluster run."""

    policy: str
    signal: str
    skew: float
    #: RPCs routed to each node, node-id indexed.
    routed: List[int] = field(default_factory=list)
    decisions: int = 0
    #: Sum/count of |estimate - true load| at load-aware decisions.
    signal_error_sum: float = 0.0
    signal_error_count: int = 0

    @property
    def mean_signal_error(self) -> float:
        """Mean absolute staleness error, in outstanding RPCs."""
        if self.signal_error_count == 0:
            return 0.0
        return self.signal_error_sum / self.signal_error_count

    def routed_fractions(self) -> List[float]:
        total = sum(self.routed)
        if total == 0:
            return [0.0] * len(self.routed)
        return [count / total for count in self.routed]


class RackRouter:
    """Client-side inter-server scheduler for one cluster.

    Parameters
    ----------
    policy:
        A :class:`RackPolicy` instance or spec string (``"jsq2"``...).
    signal:
        A :class:`LoadSignal` instance or spec string (``"fresh"``,
        ``"piggyback"``, ``"broadcast:<ns>"``).
    skew:
        Zipf exponent of destination popularity (0 = uniform).
    """

    def __init__(
        self,
        policy: "RackPolicy | str" = "random",
        signal: "LoadSignal | str" = "fresh",
        skew: float = 0.0,
    ) -> None:
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.signal = make_signal(signal) if isinstance(signal, str) else signal
        self.skew = skew
        self.cluster: Optional["Cluster"] = None
        self.num_nodes = 0
        #: Ground truth: RPCs routed to node j and not yet completed.
        self.outstanding: List[int] = []
        self.destinations: Optional[ZipfDestinations] = None
        self.capacities: Dict[int, float] = {}
        self.stats = RouterStats(
            policy=self.policy.label, signal=self.signal.label, skew=skew
        )
        #: Telemetry hooks, installed by
        #: :func:`repro.telemetry.instrument_cluster` (None = disabled).
        self.decision_counters: Optional[List] = None
        self.staleness_hist = None

    # -- wiring -----------------------------------------------------------

    def bind(self, cluster: "Cluster") -> None:
        """Attach to ``cluster`` (called by the cluster constructor)."""
        self.cluster = cluster
        self.num_nodes = cluster.num_nodes
        self.outstanding = [0] * self.num_nodes
        self.stats.routed = [0] * self.num_nodes
        self.destinations = ZipfDestinations(self.num_nodes, self.skew)
        self.capacities = {
            node: cluster.capacity_weight(node) for node in range(self.num_nodes)
        }
        self.signal.bind(self)

    def start(self) -> None:
        """Traffic is about to start (spawns broadcast processes)."""
        self.signal.start()

    # -- the decision -----------------------------------------------------

    def choose(self, client: int, rng: np.random.Generator) -> int:
        """Route one RPC issued by ``client``; returns the server id."""
        signal = self.signal
        estimates = {
            int(node): signal.estimate(client, int(node))
            for node in self.destinations.peers_of(client)
        }
        dst = self.policy.choose(
            client, self.destinations, estimates, self.capacities, rng
        )
        if self.policy.uses_load_signal:
            error = abs(estimates[dst] - self.outstanding[dst])
            self.stats.signal_error_sum += error
            self.stats.signal_error_count += 1
            if self.staleness_hist is not None:
                self.staleness_hist.record(error)
        self.outstanding[dst] += 1
        self.stats.routed[dst] += 1
        self.stats.decisions += 1
        if self.decision_counters is not None:
            self.decision_counters[dst].inc()
        return dst

    # -- completion feedback ----------------------------------------------

    def on_complete(self, server: int) -> float:
        """Node ``server`` completed one RPC; returns its load *after*.

        The returned value is what a reply leaving now would report —
        the cluster delivers it to the issuing client via
        :meth:`deliver_report` after the fabric delay when the signal
        model wants reply piggybacking.
        """
        self.outstanding[server] -= 1
        return float(self.outstanding[server])

    @property
    def wants_reply_reports(self) -> bool:
        from .signals import PiggybackSignal

        return isinstance(self.signal, PiggybackSignal)

    def deliver_report(self, client: int, server: int, load: float) -> None:
        """A reply-piggybacked load report reached ``client``."""
        self.signal.on_reply(client, server, load)
