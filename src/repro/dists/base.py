"""Distribution protocol used by every service-time / workload model.

The paper's experiments are parameterized by *processing-time
distributions* (§5, Fig. 6). This module defines the small interface
all of them implement, plus generic transformations (shift/scale) used
to express the paper's "300ns base + 300ns-mean extra" construction.

All distributions sample via an explicitly passed
``numpy.random.Generator`` so that reproducibility is controlled by the
caller (see :class:`repro.sim.RngRegistry`).
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

__all__ = ["Distribution", "Shifted", "Scaled"]


class Distribution(abc.ABC):
    """A non-negative continuous distribution of times (unit-agnostic)."""

    #: Short human-readable identifier ("fixed", "gev", ...).
    name: str = "distribution"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values (vectorized where the subclass supports it)."""
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Variance; may be ``inf`` for heavy-tailed distributions."""

    @property
    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.variance)

    @property
    def cv2(self) -> float:
        """Squared coefficient of variation (variance / mean²).

        The paper's §2.2 observation — the 1×16 vs 16×1 gap grows with
        service-time variability — is naturally ordered by this value:
        fixed (0) < uniform < exponential (1) < GEV.
        """
        mu = self.mean
        if mu == 0:
            return 0.0
        return self.variance / (mu * mu)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density at ``x`` (used to regenerate Fig. 6).

        Subclasses without a closed form may raise
        ``NotImplementedError``.
        """
        raise NotImplementedError(f"{self.name} has no closed-form pdf")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} mean={self.mean:.4g}>"


class Shifted(Distribution):
    """``offset + X`` for an inner distribution ``X``.

    Used for the paper's synthetic processing times: a 300ns fixed base
    plus a variable extra part.
    """

    def __init__(self, inner: Distribution, offset: float, name: Optional[str] = None) -> None:
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset!r}")
        self.inner = inner
        self.offset = float(offset)
        self.name = name or f"{inner.name}+{offset:g}"

    def sample(self, rng: np.random.Generator) -> float:
        return self.offset + self.inner.sample(rng)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.offset + self.inner.sample_array(rng, n)

    @property
    def mean(self) -> float:
        return self.offset + self.inner.mean

    @property
    def variance(self) -> float:
        return self.inner.variance

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self.inner.pdf(np.asarray(x, dtype=float) - self.offset)


class Scaled(Distribution):
    """``factor * X`` for an inner distribution ``X``.

    Lets one distribution shape be reused at different time scales
    (e.g. normalizing a model to unit mean for the theoretical queueing
    experiments).
    """

    def __init__(self, inner: Distribution, factor: float, name: Optional[str] = None) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor!r}")
        self.inner = inner
        self.factor = float(factor)
        self.name = name or f"{inner.name}x{factor:g}"

    def sample(self, rng: np.random.Generator) -> float:
        return self.factor * self.inner.sample(rng)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.factor * self.inner.sample_array(rng, n)

    @property
    def mean(self) -> float:
        return self.factor * self.inner.mean

    @property
    def variance(self) -> float:
        return self.factor * self.factor * self.inner.variance

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return self.inner.pdf(x / self.factor) / self.factor
