"""Empirical CDFs from CSV: measured size/service distributions.

Published workload studies usually give a distribution as a handful of
CDF points, not raw samples — the web-search and data-mining flow-size
curves being the canonical examples. :class:`CdfDistribution` samples
from such a curve by inverse transform over the piecewise-linear CDF;
:func:`dist_from_file` loads one from a small CSV so downstream users
can drop in their own measurements without writing code.

CSV format (``#`` comments and blank lines ignored)::

    # value, cumulative probability
    1000,   0.15
    5300,   0.60
    20000,  1.00

Values must be non-negative and non-decreasing, probabilities strictly
increasing with the last row at 1.0. A first row with probability
``p0 > 0`` is a point mass of ``p0`` at that value (the usual shape of
published flow-size CDFs, which start at a minimum size).

Two curves ship as packaged data (``repro/dists/data/*.csv``):
:func:`websearch` and :func:`datamining`, shaped after the widely used
web-search and data-mining DC workload CDFs, rescaled to nanoseconds
of service time at µs scale.
"""

from __future__ import annotations

import pathlib
from typing import Sequence, Union

import numpy as np

from .base import Distribution

__all__ = ["CdfDistribution", "dist_from_file", "websearch", "datamining"]

#: Packaged CDF data directory.
DATA_DIR = pathlib.Path(__file__).parent / "data"

_PathLike = Union[str, pathlib.Path]


class CdfDistribution(Distribution):
    """Inverse-transform sampling from a piecewise-linear CDF.

    ``values``/``cum_probs`` are the published curve's points:
    ``P(X <= values[i]) = cum_probs[i]``. Between points the CDF is
    linear (uniform density); mass below the first point sits as a
    point mass at ``values[0]``.
    """

    name = "cdf"

    def __init__(
        self,
        values: Sequence[float],
        cum_probs: Sequence[float],
        name: str = "cdf",
    ) -> None:
        vals = np.asarray(list(values), dtype=float)
        probs = np.asarray(list(cum_probs), dtype=float)
        if vals.size == 0:
            raise ValueError(
                "CDF needs at least one (value, cum_prob) point"
            )
        if vals.size != probs.size:
            raise ValueError(
                f"{vals.size} values but {probs.size} probabilities"
            )
        if np.any(vals < 0):
            raise ValueError("CDF values must be non-negative times/sizes")
        if np.any(np.diff(vals) < 0):
            raise ValueError("CDF values must be non-decreasing")
        if np.any(probs <= 0) or np.any(np.diff(probs) <= 0):
            raise ValueError(
                "cumulative probabilities must be strictly increasing "
                "and positive"
            )
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError(
                f"last cumulative probability must be 1.0, got {probs[-1]!r} "
                "— is the curve truncated?"
            )
        probs[-1] = 1.0
        # Anchor the inverse CDF at (p=0, v=values[0]): any initial mass
        # p0 maps [0, p0] onto values[0] exactly (a point mass).
        self._xp = np.concatenate(([0.0], probs))
        self._fp = np.concatenate(([vals[0]], vals))
        self.name = name

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_array(rng, 1)[0])

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.interp(rng.uniform(size=n), self._xp, self._fp)

    def percentile(self, q: float) -> float:
        """Value at cumulative probability ``q`` (in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q!r}")
        return float(np.interp(q / 100.0, self._xp, self._fp))

    @property
    def mean(self) -> float:
        # Mixture of uniforms over the CDF segments (the first segment
        # is a point mass when it has zero width).
        dp = np.diff(self._xp)
        left = self._fp[:-1]
        right = self._fp[1:]
        return float(np.sum(dp * 0.5 * (left + right)))

    @property
    def variance(self) -> float:
        dp = np.diff(self._xp)
        left = self._fp[:-1]
        right = self._fp[1:]
        second = np.sum(dp * (left * left + left * right + right * right) / 3.0)
        return float(second - self.mean**2)


def dist_from_file(
    path: _PathLike, name: str = "", scale: float = 1.0
) -> CdfDistribution:
    """Load a :class:`CdfDistribution` from a ``value,cum_prob`` CSV.

    ``scale`` multiplies every value on load (unit conversion — e.g.
    bytes → ns at a modeled line rate). Empty or malformed files raise
    ``ValueError`` naming the offending line.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale!r}")
    path = pathlib.Path(path)
    values = []
    probs = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = [part.strip() for part in line.replace("\t", ",").split(",")]
        parts = [part for part in parts if part]
        if len(parts) != 2:
            raise ValueError(
                f"{path}:{lineno}: expected 'value,cum_prob', got {raw!r}"
            )
        try:
            value, prob = float(parts[0]), float(parts[1])
        except ValueError:
            raise ValueError(
                f"{path}:{lineno}: non-numeric CDF row {raw!r}"
            ) from None
        values.append(value * scale)
        probs.append(prob)
    if not values:
        raise ValueError(
            f"CDF file {path} is empty — expected 'value,cum_prob' rows "
            "(one per CDF point, '#' comments allowed)"
        )
    return CdfDistribution(values, probs, name=name or path.stem)


def websearch() -> CdfDistribution:
    """Web-search service-time CDF (packaged data, ns).

    Shaped after the widely published web-search flow-size curve:
    mostly short requests with a heavy tail of large responses,
    rescaled to µs-scale service times.
    """
    return dist_from_file(DATA_DIR / "websearch.csv", name="websearch")


def datamining() -> CdfDistribution:
    """Data-mining service-time CDF (packaged data, ns).

    Shaped after the data-mining (VL2-style) curve: the majority of
    requests are tiny, while a sliver of huge scans carries most of
    the total work — far heavier-tailed than :func:`websearch`.
    """
    return dist_from_file(DATA_DIR / "datamining.csv", name="datamining")
