"""Paper-preset distribution constructors (§5, Fig. 6).

Each function returns the processing-time distribution ``D`` used in one
of the paper's experiments, in nanoseconds:

* :func:`synthetic` — 300ns base + 300ns-mean extra (Fig. 6a)
* :func:`herd` — HERD KV-store processing, mean 330ns (Fig. 6b)
* :func:`masstree_get` — Masstree get, mean 1.25µs (Fig. 6c)
* :func:`masstree` — the full 99% gets / 1% scans (60–120µs) mixture
"""

from __future__ import annotations

from .base import Distribution, Shifted
from .mixture import Mixture
from .parametric import Gamma
from .synthetic import GEV, Exponential, Fixed, Uniform

__all__ = [
    "SYNTHETIC_KINDS",
    "SYNTHETIC_BASE_NS",
    "SYNTHETIC_EXTRA_MEAN_NS",
    "GEV_PARAMS_NS",
    "HERD_MEAN_NS",
    "MASSTREE_GET_MEAN_NS",
    "MASSTREE_SCAN_RANGE_NS",
    "MASSTREE_SCAN_FRACTION",
    "synthetic",
    "herd",
    "masstree_get",
    "masstree_scan",
    "masstree",
]

#: The four synthetic service-time shapes evaluated throughout the paper.
SYNTHETIC_KINDS = ("fixed", "uniform", "exponential", "gev")

#: §5: "we use 300ns as a base latency".
SYNTHETIC_BASE_NS = 300.0

#: §5: "... and add an extra 300ns on average".
SYNTHETIC_EXTRA_MEAN_NS = 300.0

#: §5's GEV parameters (363, 100, 0.65) are in 2GHz cycles; here in ns.
GEV_PARAMS_NS = (181.5, 50.0, 0.65)

#: Fig. 6b: measured HERD processing times "have a mean of 330ns".
HERD_MEAN_NS = 330.0

#: Fig. 6c: Masstree gets have "an average of 1.25µs".
MASSTREE_GET_MEAN_NS = 1250.0

#: §5: "long-running scans ... runtime of scans is 60–120µs".
MASSTREE_SCAN_RANGE_NS = (60_000.0, 120_000.0)

#: §5: "99% single-key gets, interleaved with 1% long-running scans".
MASSTREE_SCAN_FRACTION = 0.01


def synthetic(kind: str) -> Distribution:
    """One of the paper's four synthetic processing-time distributions.

    All four have mean 600ns = 300ns fixed base + 300ns-mean extra:

    * ``fixed`` — exactly 600ns;
    * ``uniform`` — base + Uniform(0, 600ns);
    * ``exponential`` — base + Exp(mean 300ns);
    * ``gev`` — base + GEV(181.5ns, 50ns, 0.65).
    """
    if kind == "fixed":
        return Fixed(SYNTHETIC_BASE_NS + SYNTHETIC_EXTRA_MEAN_NS)
    if kind == "uniform":
        extra = Uniform(0.0, 2.0 * SYNTHETIC_EXTRA_MEAN_NS)
        return Shifted(extra, SYNTHETIC_BASE_NS, name="uniform")
    if kind == "exponential":
        extra = Exponential(SYNTHETIC_EXTRA_MEAN_NS)
        return Shifted(extra, SYNTHETIC_BASE_NS, name="exponential")
    if kind == "gev":
        location, scale, shape = GEV_PARAMS_NS
        extra = GEV(location, scale, shape)
        return Shifted(extra, SYNTHETIC_BASE_NS, name="gev")
    raise ValueError(f"unknown synthetic kind {kind!r}; expected one of {SYNTHETIC_KINDS}")


def herd(mean_ns: float = HERD_MEAN_NS) -> Distribution:
    """HERD-like processing times (substitute for Fig. 6b's histogram).

    A Gamma with cv² = 0.25 (shape 4): unimodal with the mode below the
    mean and a mild right tail, matching the shape of the published
    histogram. See DESIGN.md §2 for the substitution rationale.
    """
    dist = Gamma.from_mean_cv2(mean_ns, cv2=0.25)
    dist.name = "herd"
    return dist


def masstree_get(mean_ns: float = MASSTREE_GET_MEAN_NS) -> Distribution:
    """Masstree-like ``get`` processing times (Fig. 6c substitute).

    A Gamma with cv² = 1/3 (shape 3): the published histogram spreads
    from a few hundred ns to ~4µs around a 1.25µs mean.
    """
    dist = Gamma.from_mean_cv2(mean_ns, cv2=1.0 / 3.0)
    dist.name = "masstree_get"
    return dist


def masstree_scan() -> Distribution:
    """Masstree scan runtimes: Uniform(60µs, 120µs) per §5."""
    low, high = MASSTREE_SCAN_RANGE_NS
    dist = Uniform(low, high)
    dist.name = "masstree_scan"
    return dist


def masstree(scan_fraction: float = MASSTREE_SCAN_FRACTION) -> Mixture:
    """The full Masstree request mix: gets + ``scan_fraction`` scans.

    Component 0 is gets, component 1 is scans; experiments use the
    component index to compute the gets-only tail latency (the paper
    does "not consider the scan operations latency critical").
    """
    if not 0 < scan_fraction < 1:
        raise ValueError(f"scan_fraction must be in (0, 1), got {scan_fraction!r}")
    return Mixture(
        [
            (1.0 - scan_fraction, masstree_get()),
            (scan_fraction, masstree_scan()),
        ],
        name="masstree",
    )
