"""Empirical distributions: replay of measured samples or histograms.

The paper collects HERD and Masstree processing-time histograms on real
hardware and replays them in the microbenchmark. We do not have the raw
measurements, so :mod:`repro.dists.catalog` builds parametric stand-ins
— but downstream users who *do* have measured samples can plug them in
here and run every experiment unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Distribution

__all__ = ["Empirical", "HistogramDistribution"]


class Empirical(Distribution):
    """Resamples (with replacement) from a fixed set of observations."""

    name = "empirical"

    def __init__(self, samples: Sequence[float], name: str = "empirical") -> None:
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("need at least one sample")
        if np.any(data < 0):
            raise ValueError("samples must be non-negative times")
        self._data = data
        self.name = name

    @property
    def observations(self) -> np.ndarray:
        """Copy of the underlying observations."""
        return self._data.copy()

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._data[rng.integers(0, self._data.size)])

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self._data[rng.integers(0, self._data.size, size=n)]

    @property
    def mean(self) -> float:
        return float(self._data.mean())

    @property
    def variance(self) -> float:
        return float(self._data.var())

    def percentile(self, q: float) -> float:
        """Percentile of the observed data (q in [0, 100])."""
        return float(np.percentile(self._data, q))


class HistogramDistribution(Distribution):
    """Samples from a binned histogram (uniform within each bin).

    Accepts the ``(counts, bin_edges)`` pair produced by
    ``numpy.histogram``, which is the natural format for published
    figures like the paper's Fig. 6b.
    """

    name = "histogram"

    def __init__(
        self,
        counts: Sequence[float],
        bin_edges: Sequence[float],
        name: str = "histogram",
    ) -> None:
        counts_arr = np.asarray(list(counts), dtype=float)
        edges = np.asarray(list(bin_edges), dtype=float)
        if edges.size != counts_arr.size + 1:
            raise ValueError(
                f"need len(bin_edges) == len(counts)+1, got {edges.size} and {counts_arr.size}"
            )
        if np.any(np.diff(edges) <= 0):
            raise ValueError("bin_edges must be strictly increasing")
        if np.any(counts_arr < 0) or counts_arr.sum() <= 0:
            raise ValueError("counts must be non-negative with positive total")
        self._edges = edges
        self._probs = counts_arr / counts_arr.sum()
        self.name = name

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_array(rng, 1)[0])

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        bins = rng.choice(self._probs.size, size=n, p=self._probs)
        left = self._edges[bins]
        right = self._edges[bins + 1]
        return rng.uniform(left, right)

    @property
    def mean(self) -> float:
        centers = 0.5 * (self._edges[:-1] + self._edges[1:])
        return float(np.dot(self._probs, centers))

    @property
    def variance(self) -> float:
        centers = 0.5 * (self._edges[:-1] + self._edges[1:])
        widths = np.diff(self._edges)
        # Within-bin uniform variance + between-bin variance.
        second_moment = np.dot(
            self._probs, centers**2 + widths**2 / 12.0
        )
        return float(second_moment - self.mean**2)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        densities = self._probs / np.diff(self._edges)
        result = np.zeros_like(x)
        bin_index = np.searchsorted(self._edges, x, side="right") - 1
        inside = (bin_index >= 0) & (bin_index < densities.size) & (
            x <= self._edges[-1]
        )
        result[inside] = densities[bin_index[inside]]
        return result
