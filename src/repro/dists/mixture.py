"""Finite mixtures of distributions.

The Masstree workload (Fig. 6c + Fig. 7b) is a two-class mixture: 99%
short ``get`` operations and 1% long ``scan`` operations. The mixture
distribution both samples values and reports which component produced
each sample (the experiments need to compute the gets-only p99).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .base import Distribution

__all__ = ["Mixture"]


class Mixture(Distribution):
    """Mixture of ``(weight, distribution)`` components.

    Weights must be positive; they are normalized to sum to 1.
    """

    name = "mixture"

    def __init__(
        self,
        components: Sequence[Tuple[float, Distribution]],
        name: str = "mixture",
    ) -> None:
        if not components:
            raise ValueError("mixture needs at least one component")
        weights = np.array([w for w, _dist in components], dtype=float)
        if np.any(weights <= 0):
            raise ValueError(f"weights must be positive, got {weights.tolist()}")
        self.weights = weights / weights.sum()
        self.components: List[Distribution] = [dist for _w, dist in components]
        self.name = name

    def sample(self, rng: np.random.Generator) -> float:
        index = int(rng.choice(len(self.components), p=self.weights))
        return self.components[index].sample(rng)

    def sample_with_component(self, rng: np.random.Generator) -> Tuple[float, int]:
        """Sample a value and the index of the component that produced it."""
        index = int(rng.choice(len(self.components), p=self.weights))
        return self.components[index].sample(rng), index

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        values, _indices = self.sample_array_with_components(rng, n)
        return values

    def sample_array_with_components(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized sampling returning ``(values, component_indices)``."""
        indices = rng.choice(len(self.components), size=n, p=self.weights)
        values = np.empty(n, dtype=float)
        for component_index, dist in enumerate(self.components):
            mask = indices == component_index
            count = int(mask.sum())
            if count:
                values[mask] = dist.sample_array(rng, count)
        return values, indices

    @property
    def mean(self) -> float:
        return float(
            sum(w * d.mean for w, d in zip(self.weights, self.components))
        )

    @property
    def variance(self) -> float:
        # Law of total variance: E[Var] + Var[E].
        mean = self.mean
        expected_var = sum(
            w * d.variance for w, d in zip(self.weights, self.components)
        )
        var_of_means = sum(
            w * (d.mean - mean) ** 2
            for w, d in zip(self.weights, self.components)
        )
        return float(expected_var + var_of_means)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        total = np.zeros_like(x)
        for w, dist in zip(self.weights, self.components):
            total += w * dist.pdf(x)
        return total
