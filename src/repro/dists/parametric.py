"""Additional parametric families.

Gamma and LogNormal model the *measured* processing-time histograms of
HERD (Fig. 6b) and Masstree gets (Fig. 6c), for which the paper replays
empirical data we do not have; see DESIGN.md §2 for the substitution
argument. Weibull and Pareto are provided as extensions for users who
want to explore other variability regimes.
"""

from __future__ import annotations

import math

import numpy as np

from .base import Distribution

__all__ = ["Gamma", "LogNormal", "Weibull", "Pareto"]


class Gamma(Distribution):
    """Gamma distribution with ``shape`` k and ``scale`` θ (mean kθ)."""

    name = "gamma"

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError(f"shape and scale must be positive, got {shape!r}, {scale!r}")
        self.shape = float(shape)
        self.scale = float(scale)

    @classmethod
    def from_mean_cv2(cls, mean: float, cv2: float) -> "Gamma":
        """Construct from a mean and squared coefficient of variation.

        ``cv2 = 1/shape`` for a Gamma, which makes this the natural way
        to dial variability while pinning the mean.
        """
        if mean <= 0 or cv2 <= 0:
            raise ValueError("mean and cv2 must be positive")
        shape = 1.0 / cv2
        return cls(shape=shape, scale=mean / shape)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.gamma(self.shape, self.scale)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.shape, self.scale, size=n)

    @property
    def mean(self) -> float:
        return self.shape * self.scale

    @property
    def variance(self) -> float:
        return self.shape * self.scale * self.scale

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        k, theta = self.shape, self.scale
        coef = 1.0 / (math.gamma(k) * theta**k)
        with np.errstate(invalid="ignore", divide="ignore"):
            density = np.where(
                x > 0, coef * x ** (k - 1.0) * np.exp(-x / theta), 0.0
            )
        return np.nan_to_num(density, nan=0.0)


class LogNormal(Distribution):
    """Log-normal with underlying normal parameters ``mu``/``sigma``."""

    name = "lognormal"

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma!r}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mean_std(cls, mean: float, std: float) -> "LogNormal":
        """Construct from the distribution's own mean and std."""
        if mean <= 0 or std <= 0:
            raise ValueError("mean and std must be positive")
        variance_ratio = 1.0 + (std / mean) ** 2
        sigma = math.sqrt(math.log(variance_ratio))
        mu = math.log(mean) - 0.5 * sigma * sigma
        return cls(mu=mu, sigma=sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.lognormal(self.mu, self.sigma)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma**2)

    @property
    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        with np.errstate(invalid="ignore", divide="ignore"):
            logx = np.log(np.where(x > 0, x, 1.0))
            density = np.where(
                x > 0,
                np.exp(-((logx - self.mu) ** 2) / (2 * self.sigma**2))
                / (x * self.sigma * math.sqrt(2 * math.pi)),
                0.0,
            )
        return np.nan_to_num(density, nan=0.0)


class Weibull(Distribution):
    """Weibull with ``shape`` k and ``scale`` λ."""

    name = "weibull"

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError(f"shape and scale must be positive, got {shape!r}, {scale!r}")
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng: np.random.Generator) -> float:
        return self.scale * rng.weibull(self.shape)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1 * g1)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        k, lam = self.shape, self.scale
        with np.errstate(invalid="ignore", divide="ignore"):
            z = np.where(x > 0, x / lam, 0.0)
            density = np.where(
                x > 0, (k / lam) * z ** (k - 1.0) * np.exp(-(z**k)), 0.0
            )
        return np.nan_to_num(density, nan=0.0)


class Pareto(Distribution):
    """Pareto (type I) with ``alpha`` tail index and minimum ``xmin``."""

    name = "pareto"

    def __init__(self, alpha: float, xmin: float) -> None:
        if alpha <= 0 or xmin <= 0:
            raise ValueError(f"alpha and xmin must be positive, got {alpha!r}, {xmin!r}")
        self.alpha = float(alpha)
        self.xmin = float(xmin)

    def sample(self, rng: np.random.Generator) -> float:
        return self.xmin * (1.0 + rng.pareto(self.alpha))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.xmin * (1.0 + rng.pareto(self.alpha, size=n))

    @property
    def mean(self) -> float:
        if self.alpha <= 1:
            return math.inf
        return self.alpha * self.xmin / (self.alpha - 1.0)

    @property
    def variance(self) -> float:
        if self.alpha <= 2:
            return math.inf
        a = self.alpha
        return self.xmin**2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        a, m = self.alpha, self.xmin
        with np.errstate(invalid="ignore", divide="ignore"):
            density = np.where(x >= m, a * m**a / x ** (a + 1.0), 0.0)
        return np.nan_to_num(density, nan=0.0)
