"""The paper's four synthetic distributions: fixed, uniform, exponential, GEV.

§5 of the paper: processing times are "300ns as a base latency and
[...] an extra 300ns on average, following one of the four
distributions", with GEV parameters (location, scale, shape) =
(363, 100, 0.65) *in cycles at 2GHz*, i.e. (181.5, 50, 0.65) in ns,
whose mean is 600 cycles = 300ns. The paper-accurate constructors
combining base + extra live in :mod:`repro.dists.catalog`.
"""

from __future__ import annotations

import math

import numpy as np

from .base import Distribution

__all__ = ["Fixed", "Uniform", "Exponential", "GEV"]


class Fixed(Distribution):
    """A degenerate distribution: every sample equals ``value``."""

    name = "fixed"

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value!r}")
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0


class Uniform(Distribution):
    """Continuous uniform on ``[low, high]``."""

    name = "uniform"

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low!r}, {high!r}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.uniform(self.low, self.high)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        width = self.high - self.low
        return width * width / 12.0

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if self.high == self.low:
            raise NotImplementedError("degenerate uniform has no density")
        inside = (x >= self.low) & (x <= self.high)
        return np.where(inside, 1.0 / (self.high - self.low), 0.0)


class Exponential(Distribution):
    """Exponential distribution with the given ``mean`` (= 1/rate)."""

    name = "exponential"

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.exponential(self._mean)

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean * self._mean

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        rate = 1.0 / self._mean
        return np.where(x >= 0, rate * np.exp(-rate * np.maximum(x, 0.0)), 0.0)


class GEV(Distribution):
    """Generalized extreme value distribution (Fréchet-type for shape>0).

    Parameterized as in the paper: location µ, scale σ, shape ξ. The
    paper uses (µ, σ, ξ) = (363, 100, 0.65) in 2GHz cycles, giving a
    mean of 600 cycles (300ns) and an infinite-variance-free but very
    heavy right tail (variance exists only for ξ < 1/2, so for the
    paper's ξ=0.65 the variance is infinite — exactly the "infrequent
    long tails" §5 wants).

    Sampling uses the inverse CDF: for U ~ Uniform(0,1),
    ``x = µ + σ·((−ln U)^(−ξ) − 1)/ξ``.
    """

    name = "gev"

    def __init__(self, location: float, scale: float, shape: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale!r}")
        if shape <= 0:
            # The paper's distribution is Fréchet-type; supporting the
            # Gumbel/Weibull branches would complicate the support
            # checks for no reproduction benefit.
            raise ValueError(f"shape must be positive, got {shape!r}")
        self.location = float(location)
        self.scale = float(scale)
        self.shape = float(shape)

    def _quantile(self, u: np.ndarray) -> np.ndarray:
        xi = self.shape
        return self.location + self.scale * ((-np.log(u)) ** (-xi) - 1.0) / xi

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._quantile(rng.uniform(0.0, 1.0)))

    def sample_array(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self._quantile(rng.uniform(0.0, 1.0, size=n))

    @property
    def support_min(self) -> float:
        """Lower endpoint of the support (finite for shape > 0)."""
        return self.location - self.scale / self.shape

    @property
    def mean(self) -> float:
        xi = self.shape
        if xi >= 1:
            return math.inf
        g1 = math.gamma(1.0 - xi)
        return self.location + self.scale * (g1 - 1.0) / xi

    @property
    def variance(self) -> float:
        xi = self.shape
        if xi >= 0.5:
            return math.inf
        g1 = math.gamma(1.0 - xi)
        g2 = math.gamma(1.0 - 2.0 * xi)
        return self.scale * self.scale * (g2 - g1 * g1) / (xi * xi)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        xi, mu, sigma = self.shape, self.location, self.scale
        z = 1.0 + xi * (x - mu) / sigma
        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            t = np.where(z > 0, z ** (-1.0 / xi), np.nan)
            density = np.where(
                z > 0, (1.0 / sigma) * t ** (xi + 1.0) * np.exp(-t), 0.0
            )
        return np.nan_to_num(density, nan=0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """CDF, used in tests against the quantile function."""
        x = np.asarray(x, dtype=float)
        xi, mu, sigma = self.shape, self.location, self.scale
        z = 1.0 + xi * (x - mu) / sigma
        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            cdf = np.where(z > 0, np.exp(-(z ** (-1.0 / xi))), 0.0)
        return cdf
