"""Service-time and workload distributions (paper §5, Fig. 6)."""

from .base import Distribution, Scaled, Shifted
from .catalog import (
    GEV_PARAMS_NS,
    HERD_MEAN_NS,
    MASSTREE_GET_MEAN_NS,
    MASSTREE_SCAN_FRACTION,
    MASSTREE_SCAN_RANGE_NS,
    SYNTHETIC_BASE_NS,
    SYNTHETIC_EXTRA_MEAN_NS,
    SYNTHETIC_KINDS,
    herd,
    masstree,
    masstree_get,
    masstree_scan,
    synthetic,
)
from .cdf import CdfDistribution, datamining, dist_from_file, websearch
from .empirical import Empirical, HistogramDistribution
from .mixture import Mixture
from .parametric import Gamma, LogNormal, Pareto, Weibull
from .synthetic import GEV, Exponential, Fixed, Uniform

__all__ = [
    "Distribution",
    "Shifted",
    "Scaled",
    "Fixed",
    "Uniform",
    "Exponential",
    "GEV",
    "Gamma",
    "LogNormal",
    "Weibull",
    "Pareto",
    "Mixture",
    "Empirical",
    "HistogramDistribution",
    "CdfDistribution",
    "dist_from_file",
    "websearch",
    "datamining",
    "synthetic",
    "herd",
    "masstree",
    "masstree_get",
    "masstree_scan",
    "SYNTHETIC_KINDS",
    "SYNTHETIC_BASE_NS",
    "SYNTHETIC_EXTRA_MEAN_NS",
    "GEV_PARAMS_NS",
    "HERD_MEAN_NS",
    "MASSTREE_GET_MEAN_NS",
    "MASSTREE_SCAN_RANGE_NS",
    "MASSTREE_SCAN_FRACTION",
]
