"""Bimodal RPC workloads.

The µs-RPC literature that followed RPCValet (Shinjuku, and the paper's
own Masstree experiment) leans on bimodal service times: a mass of
short requests plus a minority of long ones. This workload makes the
two modes explicit and labelled, so experiments can set per-class SLOs
and study how dispatch policy, preemption, and partitioning interact
with mode separation — the dimension Fig. 7b explores with real
Masstree scans.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..dists import Distribution, Exponential, Fixed
from .base import RpcWorkload

__all__ = ["BimodalWorkload"]


class BimodalWorkload(RpcWorkload):
    """``long_fraction`` long RPCs mixed into short ones.

    Modes may be fixed or exponential around their means
    (``variability="fixed" | "exponential"``). The SLO class is the
    short mode (matching Fig. 7b's gets-only SLO convention).
    """

    name = "bimodal"
    slo_label = "short"

    def __init__(
        self,
        short_ns: float = 500.0,
        long_ns: float = 5_000.0,
        long_fraction: float = 0.1,
        variability: str = "fixed",
    ) -> None:
        if short_ns <= 0 or long_ns <= 0:
            raise ValueError("mode means must be positive")
        if short_ns >= long_ns:
            raise ValueError(
                f"short mode ({short_ns!r}) must be below long mode ({long_ns!r})"
            )
        if not 0 < long_fraction < 1:
            raise ValueError(f"long_fraction must be in (0,1), got {long_fraction!r}")
        if variability not in ("fixed", "exponential"):
            raise ValueError(
                f"variability must be 'fixed' or 'exponential', got {variability!r}"
            )
        self.short_ns = short_ns
        self.long_ns = long_ns
        self.long_fraction = long_fraction
        self.variability = variability
        maker = Fixed if variability == "fixed" else Exponential
        self._short: Distribution = maker(short_ns)
        self._long: Distribution = maker(long_ns)
        self.name = f"bimodal-{short_ns:g}/{long_ns:g}"

    def sample(self, rng: np.random.Generator) -> Tuple[float, str]:
        if rng.uniform() < self.long_fraction:
            return self._long.sample(rng), "long"
        return self._short.sample(rng), "short"

    @property
    def mean_processing_ns(self) -> float:
        return (
            (1.0 - self.long_fraction) * self.short_ns
            + self.long_fraction * self.long_ns
        )

    @property
    def slo_mean_processing_ns(self) -> float:
        return self.short_ns

    @property
    def mode_separation(self) -> float:
        """long/short mean ratio — the knob that stresses 16×1."""
        return self.long_ns / self.short_ns
