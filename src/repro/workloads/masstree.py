"""Masstree-like ordered-store workload (§5, Fig. 6c / Fig. 7b).

99% single-key ``get`` operations (mean 1.25µs) interleaved with 1%
long-running ``scan`` operations returning 100 consecutive keys
(60–120µs). The SLO covers only gets: the paper does "not consider the
scan operations latency critical", but scans occupying cores for many
µs are precisely what makes 16×1 violate the get SLO.

Two modes:

* distribution-driven (default) — processing times from the Fig. 6c
  parametric substitute;
* execution-driven — processing times derived from operations on a
  real skip-list store (:mod:`repro.store`) through a cost model, for
  users who want the service process coupled to actual data structure
  work.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..dists import MASSTREE_SCAN_FRACTION, masstree_get, masstree_scan
from .base import RpcWorkload

__all__ = ["MasstreeWorkload"]


class MasstreeWorkload(RpcWorkload):
    """99% gets + 1% scans over an ordered key-value store."""

    name = "masstree"
    slo_label = "get"
    request_size_bytes = 128
    reply_size_bytes = 512

    def __init__(
        self,
        scan_fraction: float = MASSTREE_SCAN_FRACTION,
        store: Optional[object] = None,
        scan_length: int = 100,
    ) -> None:
        if not 0 <= scan_fraction < 1:
            raise ValueError(f"scan_fraction must be in [0,1), got {scan_fraction!r}")
        self.scan_fraction = scan_fraction
        self.scan_length = scan_length
        self._get_dist = masstree_get()
        self._scan_dist = masstree_scan()
        #: Optional execution-driven backing store: an object with
        #: ``timed_get(key, rng) -> ns`` and ``timed_scan(key, n, rng) -> ns``
        #: (see repro.store.TimedKVStore).
        self.store = store

    def sample(self, rng: np.random.Generator) -> Tuple[float, str]:
        is_scan = rng.uniform() < self.scan_fraction
        if self.store is not None:
            if is_scan:
                return self.store.timed_scan(self.scan_length, rng), "scan"
            return self.store.timed_get(rng), "get"
        if is_scan:
            return self._scan_dist.sample(rng), "scan"
        return self._get_dist.sample(rng), "get"

    def sample_batch(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[np.ndarray, List[str]]:
        """Vectorized draw: 3 Generator calls instead of 2 per request.

        Execution-driven mode (``store`` set) runs real data-structure
        operations per request and falls back to the scalar path.
        """
        if self.store is not None:
            return super().sample_batch(rng, n)
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        is_scan = rng.uniform(size=n) < self.scan_fraction
        gets = self._get_dist.sample_array(rng, n)
        scans = self._scan_dist.sample_array(rng, n)
        times = np.where(is_scan, scans, gets)
        labels = ["scan" if scan else "get" for scan in is_scan]
        return times, labels

    @property
    def mean_processing_ns(self) -> float:
        if self.store is not None:
            get_mean = self.store.expected_get_ns
            scan_mean = self.store.expected_scan_ns(self.scan_length)
        else:
            get_mean = self._get_dist.mean
            scan_mean = self._scan_dist.mean
        return (
            (1.0 - self.scan_fraction) * get_mean
            + self.scan_fraction * scan_mean
        )

    @property
    def slo_mean_processing_ns(self) -> float:
        """Mean *get* processing time — the SLO's reference (12.5µs=10×)."""
        if self.store is not None:
            return self.store.expected_get_ns
        return self._get_dist.mean
