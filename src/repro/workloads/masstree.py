"""Masstree-like ordered-store workload (§5, Fig. 6c / Fig. 7b).

99% single-key ``get`` operations (mean 1.25µs) interleaved with 1%
long-running ``scan`` operations returning 100 consecutive keys
(60–120µs). The SLO covers only gets: the paper does "not consider the
scan operations latency critical", but scans occupying cores for many
µs are precisely what makes 16×1 violate the get SLO.

Two modes:

* distribution-driven (default) — processing times from the Fig. 6c
  parametric substitute;
* execution-driven — processing times derived from operations on a
  real skip-list store (:mod:`repro.store`) through a cost model, for
  users who want the service process coupled to actual data structure
  work.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dists import MASSTREE_SCAN_FRACTION, masstree_get, masstree_scan
from .base import RpcWorkload

__all__ = ["MasstreeWorkload"]


class MasstreeWorkload(RpcWorkload):
    """99% gets + 1% scans over an ordered key-value store."""

    name = "masstree"
    slo_label = "get"
    request_size_bytes = 128
    reply_size_bytes = 512

    def __init__(
        self,
        scan_fraction: float = MASSTREE_SCAN_FRACTION,
        store: Optional[object] = None,
        scan_length: int = 100,
    ) -> None:
        if not 0 <= scan_fraction < 1:
            raise ValueError(f"scan_fraction must be in [0,1), got {scan_fraction!r}")
        self.scan_fraction = scan_fraction
        self.scan_length = scan_length
        self._get_dist = masstree_get()
        self._scan_dist = masstree_scan()
        #: Optional execution-driven backing store: an object with
        #: ``timed_get(key, rng) -> ns`` and ``timed_scan(key, n, rng) -> ns``
        #: (see repro.store.TimedKVStore).
        self.store = store

    def sample(self, rng: np.random.Generator) -> Tuple[float, str]:
        is_scan = rng.uniform() < self.scan_fraction
        if self.store is not None:
            if is_scan:
                return self.store.timed_scan(self.scan_length, rng), "scan"
            return self.store.timed_get(rng), "get"
        if is_scan:
            return self._scan_dist.sample(rng), "scan"
        return self._get_dist.sample(rng), "get"

    @property
    def mean_processing_ns(self) -> float:
        if self.store is not None:
            get_mean = self.store.expected_get_ns
            scan_mean = self.store.expected_scan_ns(self.scan_length)
        else:
            get_mean = self._get_dist.mean
            scan_mean = self._scan_dist.mean
        return (
            (1.0 - self.scan_fraction) * get_mean
            + self.scan_fraction * scan_mean
        )

    @property
    def slo_mean_processing_ns(self) -> float:
        """Mean *get* processing time — the SLO's reference (12.5µs=10×)."""
        if self.store is not None:
            return self.store.expected_get_ns
        return self._get_dist.mean
