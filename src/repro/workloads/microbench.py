"""The paper's microbenchmark loop as a :class:`CoreProgram` (§5).

Each thread: (i) spins on its CQ; (ii) runs the emulated RPC processing
time; (iii) sends a 512B reply; (iv) posts a replenish. The overall
service time S̄ — the total time a core is occupied — is the sum of
(ii)–(iv) plus the poll/read costs.

The per-step costs are explicit parameters because the paper reports
*measured* S̄ per experiment (≈550ns for HERD's 330ns-mean processing;
≈1.2µs inferred from Fig. 7c's ~13 MRPS saturation for the 600ns-mean
synthetic distributions) rather than a cost breakdown. The two presets
reproduce those S̄ values; EXPERIMENTS.md records the S̄ each run
actually measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.cpu import CoreProgram
from ..arch.packets import SendMessage

__all__ = ["MicrobenchCosts", "MicrobenchProgram"]


@dataclass(frozen=True)
class MicrobenchCosts:
    """Per-request fixed costs of the microbenchmark loop (ns)."""

    #: Poll-loop iteration granularity: CQE write → core notices it.
    poll_detect_ns: float = 20.0
    #: Reading the request payload out of the receive-buffer slot.
    read_request_ns: float = 50.0
    #: Building the 512B reply and posting its send WQE.
    send_issue_ns: float = 100.0
    #: Posting the replenish WQE.
    replenish_issue_ns: float = 50.0

    def __post_init__(self) -> None:
        for name in (
            "poll_detect_ns",
            "read_request_ns",
            "send_issue_ns",
            "replenish_issue_ns",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def pre_ns(self) -> float:
        """Costs before RPC processing starts."""
        return self.poll_detect_ns + self.read_request_ns

    @property
    def post_ns(self) -> float:
        """Costs after processing, through the replenish post."""
        return self.send_issue_ns + self.replenish_issue_ns

    @property
    def total_ns(self) -> float:
        """Total per-request overhead (S̄ − D̄)."""
        return self.pre_ns + self.post_ns

    @classmethod
    def lean(cls) -> "MicrobenchCosts":
        """≈220ns total — matches HERD's measured S̄ ≈ 550ns (Fig. 7a)."""
        return cls(
            poll_detect_ns=20.0,
            read_request_ns=50.0,
            send_issue_ns=100.0,
            replenish_issue_ns=50.0,
        )

    @classmethod
    def paper_synthetic(cls) -> "MicrobenchCosts":
        """≈600ns total — matches Fig. 7c's ≈13 MRPS saturation.

        The synthetic microbenchmark's measured S̄ (≈1.2µs for a 600ns
        mean emulated processing time) implies a heavier event loop
        than the HERD replay; see DESIGN.md §5 (calibration notes).
        """
        return cls(
            poll_detect_ns=50.0,
            read_request_ns=100.0,
            send_issue_ns=300.0,
            replenish_issue_ns=150.0,
        )


class MicrobenchProgram(CoreProgram):
    """CoreProgram with fixed per-step costs plus the workload's D."""

    def __init__(self, costs: MicrobenchCosts, reply_size_bytes: int = 512) -> None:
        if reply_size_bytes <= 0:
            raise ValueError(f"reply_size_bytes must be positive, got {reply_size_bytes!r}")
        self.costs = costs
        self._reply_size = reply_size_bytes

    def pre_ns(self, msg: SendMessage) -> float:
        return self.costs.pre_ns

    def post_ns(self, msg: SendMessage) -> float:
        return self.costs.post_ns

    def reply_size_bytes(self, msg: SendMessage) -> int:
        return self._reply_size
