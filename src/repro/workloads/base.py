"""Workload protocol: what an RPC stream looks like to the simulator.

A workload answers two questions per request: how long will the RPC's
processing take on a core, and what class is it (for per-class SLOs,
like Masstree's gets-only tail). It also declares request/reply sizes,
which drive packetization at the NI.
"""

from __future__ import annotations

import abc
from typing import List, Tuple

import numpy as np

from ..dists import Distribution

__all__ = ["RpcWorkload", "DistributionWorkload"]


class RpcWorkload(abc.ABC):
    """A stream of RPC requests."""

    name = "workload"

    #: Payload of the incoming request message (paper: small KV ops).
    request_size_bytes: int = 128

    #: Payload of the reply (§5: "a send operation with a 512B payload").
    reply_size_bytes: int = 512

    #: The label whose tail latency the experiment's SLO constrains.
    slo_label: str = "rpc"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Tuple[float, str]:
        """Draw one request: ``(processing_time_ns, label)``."""

    def sample_batch(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[np.ndarray, List[str]]:
        """Draw ``n`` requests at once: ``(times_ns, labels)``.

        The traffic generator pre-draws every request through this hook
        so hot workloads pay one vectorized Generator call instead of
        one per request. The default falls back to ``n`` scalar
        :meth:`sample` calls (identical stream consumption); vectorized
        overrides may consume the stream differently but stay
        deterministic for a fixed seed.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        times = np.empty(n)
        labels: List[str] = []
        for index in range(n):
            times[index], label = self.sample(rng)
            labels.append(label)
        return times, labels

    @property
    @abc.abstractmethod
    def mean_processing_ns(self) -> float:
        """Mean processing time D̄ across all request classes."""

    @property
    def slo_mean_processing_ns(self) -> float:
        """Mean processing time of the SLO-relevant class.

        Defaults to the overall mean; mixtures override (Masstree's SLO
        is 10× the *get* service time).
        """
        return self.mean_processing_ns


class DistributionWorkload(RpcWorkload):
    """Single-class workload drawing from one distribution."""

    def __init__(
        self,
        distribution: Distribution,
        name: str = "",
        request_size_bytes: int = 128,
        reply_size_bytes: int = 512,
    ) -> None:
        if request_size_bytes <= 0 or reply_size_bytes <= 0:
            raise ValueError("message sizes must be positive")
        self.distribution = distribution
        self.name = name or distribution.name
        self.request_size_bytes = request_size_bytes
        self.reply_size_bytes = reply_size_bytes

    def sample(self, rng: np.random.Generator) -> Tuple[float, str]:
        return self.distribution.sample(rng), "rpc"

    def sample_batch(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[np.ndarray, List[str]]:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        return self.distribution.sample_array(rng, n), ["rpc"] * n

    @property
    def mean_processing_ns(self) -> float:
        return self.distribution.mean
