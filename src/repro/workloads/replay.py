"""Replay of measured service-time traces.

The paper's own methodology is replay: it collects HERD/Masstree
processing-time distributions on real hardware and feeds them to the
microbenchmark. Users with measured traces can do exactly that here —
load a CSV of per-request service times (+ optional class labels) and
drive any experiment with it, instead of our parametric stand-ins.

Arrivals remain Poisson (the paper's §5 open-loop methodology);
only the service process is replayed.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import IO, List, Optional, Sequence, Tuple, Union

import numpy as np

from .base import RpcWorkload

__all__ = ["TraceWorkload", "load_service_trace"]


def load_service_trace(
    source: Union[str, Path, IO[str]],
    service_column: str = "service_ns",
    label_column: Optional[str] = "label",
) -> Tuple[List[float], Optional[List[str]]]:
    """Load ``(services, labels)`` from a CSV trace.

    The file needs a ``service_ns`` column; a ``label`` column is
    optional (absent → all requests share one class). Returns labels as
    None when the column is missing.
    """
    if hasattr(source, "read"):
        handle = source
        close = False
    else:
        handle = open(source, "r", encoding="utf-8", newline="")
        close = True
    try:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or service_column not in reader.fieldnames:
            raise ValueError(
                f"trace needs a {service_column!r} column, got {reader.fieldnames}"
            )
        has_labels = (
            label_column is not None and label_column in reader.fieldnames
        )
        services: List[float] = []
        labels: List[str] = []
        for line_number, row in enumerate(reader, start=2):
            try:
                value = float(row[service_column])
            except (TypeError, ValueError):
                raise ValueError(
                    f"line {line_number}: bad service time {row[service_column]!r}"
                ) from None
            if value < 0:
                raise ValueError(f"line {line_number}: negative service time")
            services.append(value)
            if has_labels:
                labels.append(row[label_column])
        if not services:
            raise ValueError("trace is empty")
        return services, (labels if has_labels else None)
    finally:
        if close:
            handle.close()


class TraceWorkload(RpcWorkload):
    """Replays a fixed sequence of measured service times.

    ``mode``:

    * ``"sequential"`` — preserve the trace's order (autocorrelation
      and phase behaviour survive); wraps around when exhausted;
    * ``"shuffle"`` — i.i.d. resampling with replacement (matches the
      paper's distribution-replay methodology).
    """

    name = "trace"

    def __init__(
        self,
        services: Sequence[float],
        labels: Optional[Sequence[str]] = None,
        mode: str = "sequential",
        slo_label: Optional[str] = None,
    ) -> None:
        values = np.asarray(list(services), dtype=float)
        if values.size == 0:
            raise ValueError("trace must contain at least one request")
        if np.any(values < 0):
            raise ValueError("service times must be non-negative")
        if labels is not None and len(labels) != values.size:
            raise ValueError(
                f"labels ({len(labels)}) and services ({values.size}) differ"
            )
        if mode not in ("sequential", "shuffle"):
            raise ValueError(f"mode must be 'sequential' or 'shuffle', got {mode!r}")
        self._services = values
        self._labels = list(labels) if labels is not None else None
        self.mode = mode
        self._cursor = 0
        self.wraps = 0
        if slo_label is not None:
            self.slo_label = slo_label
        elif self._labels:
            # Default SLO class: the most common label (short requests
            # dominate real traces, matching Fig. 7b's convention).
            counts = {}
            for item in self._labels:
                counts[item] = counts.get(item, 0) + 1
            self.slo_label = max(counts, key=counts.get)
        else:
            self.slo_label = "rpc"

    @classmethod
    def from_csv(cls, source, mode: str = "sequential") -> "TraceWorkload":
        """Build directly from a CSV trace (see :func:`load_service_trace`)."""
        services, labels = load_service_trace(source)
        return cls(services, labels, mode=mode)

    def __len__(self) -> int:
        return int(self._services.size)

    def sample(self, rng: np.random.Generator):
        if self.mode == "shuffle":
            index = int(rng.integers(0, self._services.size))
        else:
            index = self._cursor
            self._cursor += 1
            if self._cursor >= self._services.size:
                self._cursor = 0
                self.wraps += 1
        label = self._labels[index] if self._labels else "rpc"
        return float(self._services[index]), label

    @property
    def mean_processing_ns(self) -> float:
        return float(self._services.mean())

    @property
    def slo_mean_processing_ns(self) -> float:
        if not self._labels:
            return self.mean_processing_ns
        mask = np.array([label == self.slo_label for label in self._labels])
        return float(self._services[mask].mean())
