"""HERD-like key-value-store workload (§5, Fig. 6b / Fig. 7a).

The paper measures HERD [Kalia et al., SIGCOMM'14] with a 95/5%
read/write mix, uniform key popularity, and a 4GB dataset, and replays
the resulting processing-time histogram (mean 330ns). We model that
histogram parametrically (see :func:`repro.dists.herd`); reads and
writes are labelled so a user can inspect per-class latencies, but —
like the paper — the SLO covers all requests.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..dists import herd
from .base import RpcWorkload

__all__ = ["HerdWorkload"]


class HerdWorkload(RpcWorkload):
    """95% GET / 5% PUT key-value RPCs with mean 330ns processing."""

    name = "herd"
    slo_label = "rpc"

    #: §5's HERD setup sends small keys/values; the vast majority of
    #: objects in Memcached-like stores are <500B [Atikoglu et al.].
    request_size_bytes = 128
    reply_size_bytes = 512

    def __init__(
        self,
        write_fraction: float = 0.05,
        key_popularity: str = "uniform",
        hot_fraction: float = 0.1,
        store=None,
    ) -> None:
        if not 0 <= write_fraction <= 1:
            raise ValueError(f"write_fraction must be in [0,1], got {write_fraction!r}")
        if key_popularity not in ("uniform", "zipf"):
            raise ValueError(
                f"key_popularity must be 'uniform' or 'zipf', got {key_popularity!r}"
            )
        if not 0 < hot_fraction < 1:
            raise ValueError(f"hot_fraction must be in (0,1), got {hot_fraction!r}")
        self.write_fraction = write_fraction
        #: §5 uses uniform key popularity; "zipf" is an extension that
        #: models skewed access: the hot set stays cache-resident
        #: (faster lookups), the cold tail misses (slower), preserving
        #: the overall mean.
        self.key_popularity = key_popularity
        self.hot_fraction = hot_fraction
        #: Optional execution-driven backing store (an object with
        #: ``timed_get(rng)``/``timed_put(rng)``/``expected_get_ns``,
        #: e.g. repro.store.TimedHashKV). When set, every sampled RPC
        #: runs a real hash-table operation; key_popularity scaling is
        #: then skipped (the store's chain lengths provide variability).
        self.store = store
        self._dist = herd()
        #: Writes touch slightly more state (log append + index update):
        #: +20% processing on the same distribution shape.
        self._write_scale = 1.2
        # Zipf(~1.0) sends roughly ~70% of traffic to the hot set for
        # hot_fraction=0.1; solve the two scale factors so the mean is
        # unchanged: p_hot*hot_scale + (1-p_hot)*cold_scale = 1.
        self._hot_probability = 0.7
        self._hot_scale = 0.6
        self._cold_scale = (
            1.0 - self._hot_probability * self._hot_scale
        ) / (1.0 - self._hot_probability)

    def sample(self, rng: np.random.Generator) -> Tuple[float, str]:
        if self.store is not None:
            if rng.uniform() < self.write_fraction:
                return self.store.timed_put(rng), "rpc"
            return self.store.timed_get(rng), "rpc"
        base = self._dist.sample(rng)
        if self.key_popularity == "zipf":
            if rng.uniform() < self._hot_probability:
                base *= self._hot_scale
            else:
                base *= self._cold_scale
        if rng.uniform() < self.write_fraction:
            return base * self._write_scale, "rpc"
        return base, "rpc"

    def sample_batch(
        self, rng: np.random.Generator, n: int
    ) -> Tuple[np.ndarray, List[str]]:
        """Vectorized draw: 2-3 Generator calls instead of 2-3 per request.

        Execution-driven mode (``store`` set) runs real data-structure
        operations per request and falls back to the scalar path.
        """
        if self.store is not None:
            return super().sample_batch(rng, n)
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        times = self._dist.sample_array(rng, n)
        if self.key_popularity == "zipf":
            hot = rng.uniform(size=n) < self._hot_probability
            times = times * np.where(hot, self._hot_scale, self._cold_scale)
        writes = rng.uniform(size=n) < self.write_fraction
        times = times * np.where(writes, self._write_scale, 1.0)
        return times, ["rpc"] * n

    @property
    def mean_processing_ns(self) -> float:
        if self.store is not None:
            return self.store.expected_get_ns
        # The zipf hot/cold scales are mean-preserving by construction.
        return self._dist.mean * (
            1.0 + self.write_fraction * (self._write_scale - 1.0)
        )
