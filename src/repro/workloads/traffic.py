"""The remote-cluster traffic generator (§5, "System organization").

"The modeled chip is part of a 200-node cluster, with remote nodes
emulated by a traffic generator which creates synthetic send requests
following Poisson arrival rates, from randomly selected nodes of the
cluster."

The generator enforces the messaging domain's sender-side flow control.
Two provisioning policies are supported:

* ``static`` (the paper's §4.2 design): each remote node owns S send
  slots toward the modeled chip; a node with no free slot holds its
  request until a replenish returns. Footprint: N×S receive slots.
* ``dynamic`` (the paper's §4.2 future-work extension): all senders
  share one pool of ``pool_size`` slots handed out on demand — the
  same in-flight capacity at a fraction of the memory.

Stalls are counted in both modes — they only occur past saturation (or
with deliberately tiny provisioning).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..arch.buffers import DynamicSlotAllocator
from ..arch.chip import Chip
from ..arch.packets import SendMessage
from ..popload.arrivals import ArrivalProcess
from ..popload.skew import zipf_weights
from ..sim import RngRegistry
from .base import RpcWorkload

__all__ = ["TrafficGenerator", "ClosedLoopClients"]

#: A queued request waiting for a free send slot.
_Pending = Tuple[int, int, float, str]  # (msg_id, src, service_ns, label)


class ClosedLoopClients:
    """Closed-loop request generation: N clients, one outstanding each.

    The paper's evaluation is open-loop (Poisson arrivals regardless of
    completions). Many real benchmarking setups are *closed*: each
    client issues its next request only after receiving the previous
    reply (plus think time). Closed loops cannot overload the server —
    they self-throttle — so tails look very different near capacity;
    this class lets users study both regimes.

    Latency accounting is the same server-side window (§5); the client
    think/round-trip time only shapes the arrival process.
    """

    def __init__(
        self,
        chip: Chip,
        workload: RpcWorkload,
        num_clients: int,
        requests_per_client: int,
        rngs: RngRegistry,
        think_time_ns: float = 0.0,
    ) -> None:
        if num_clients <= 0:
            raise ValueError(f"num_clients must be positive, got {num_clients!r}")
        if requests_per_client <= 0:
            raise ValueError(
                f"requests_per_client must be positive, got {requests_per_client!r}"
            )
        if think_time_ns < 0:
            raise ValueError(f"think_time_ns must be non-negative, got {think_time_ns!r}")
        slots = chip.config.send_slots_per_node
        nodes = chip.config.num_remote_nodes
        if num_clients > nodes * slots:
            raise ValueError(
                f"{num_clients} clients exceed the domain's {nodes * slots} send slots"
            )
        self.chip = chip
        self.workload = workload
        self.num_clients = num_clients
        self.requests_per_client = requests_per_client
        self.think_time_ns = think_time_ns
        self._rngs = rngs
        self._service_rng = rngs.stream("service")
        self._think_rng = rngs.stream("think")
        self.generated = 0
        #: Open-loop compatibility: closed loops never stall.
        self.stalled = 0
        self._remaining = {}
        self._next_msg_id = 0
        chip.on_slot_replenished = self._reply_received
        # Client i owns slot (i % slots) at node (i // slots): disjoint
        # (node, slot) pairs, so flow control can never interleave two
        # clients on one slot.
        for client in range(num_clients):
            self._remaining[(client // slots, client % slots)] = (
                requests_per_client
            )
            self._issue(client // slots, client % slots)

    @property
    def stall_fraction(self) -> float:
        return 0.0

    def _issue(self, src: int, slot: int) -> None:
        service_ns, label = self.workload.sample(self._service_rng)
        msg = self.chip.make_send(
            msg_id=self._next_msg_id,
            src_node=src,
            slot=slot,
            size_bytes=self.workload.request_size_bytes,
            service_ns=service_ns,
            label=label,
        )
        self._next_msg_id += 1
        self.generated += 1
        self._remaining[(src, slot)] -= 1
        self.chip.submit_message(msg)

    def _reply_received(self, msg: SendMessage) -> None:
        key = (msg.src_node, msg.slot)
        if self._remaining[key] <= 0:
            return
        if self.think_time_ns > 0:
            from ..sim import delayed_call

            delay = self._think_rng.exponential(self.think_time_ns)
            delayed_call(self.chip.env, delay, self._issue, msg.src_node, msg.slot)
        else:
            self._issue(msg.src_node, msg.slot)


class TrafficGenerator:
    """Open-loop Poisson RPC source over the remote cluster nodes."""

    def __init__(
        self,
        chip: Chip,
        workload: RpcWorkload,
        arrival_rate_rps: float,
        num_requests: int,
        rngs: RngRegistry,
        slot_policy: str = "static",
        pool_size: Optional[int] = None,
        source_skew: float = 0.0,
        arrival_process: Optional[ArrivalProcess] = None,
    ) -> None:
        if arrival_rate_rps <= 0:
            raise ValueError(f"arrival rate must be positive, got {arrival_rate_rps!r}")
        if num_requests <= 0:
            raise ValueError(f"num_requests must be positive, got {num_requests!r}")
        if slot_policy not in ("static", "dynamic"):
            raise ValueError(f"slot_policy must be 'static' or 'dynamic', got {slot_policy!r}")
        if source_skew < 0:
            raise ValueError(f"source_skew must be non-negative, got {source_skew!r}")
        if arrival_process is not None and not isinstance(
            arrival_process, ArrivalProcess
        ):
            raise TypeError(
                "arrival_process must be a repro.popload ArrivalProcess, "
                f"got {type(arrival_process).__name__}"
            )
        self.chip = chip
        self.workload = workload
        self.arrival_rate_rps = arrival_rate_rps
        self.num_requests = num_requests
        self.slot_policy = slot_policy
        #: Optional population-driven arrival stream (repro.popload).
        #: None keeps the paper's stationary Poisson at
        #: ``arrival_rate_rps``, byte-identical to the historical path;
        #: a StationaryPoisson at the same rate reproduces it exactly.
        self.arrival_process = arrival_process
        #: Zipf-like exponent over sender ranks: 0 = the paper's
        #: uniformly random sources; >0 makes low-ranked nodes send a
        #: disproportionate share (skewed flow rates, where static
        #: per-source RSS hashing concentrates load).
        self.source_skew = source_skew
        self._arrival_rng = rngs.stream("arrivals")
        self._source_rng = rngs.stream("sources")
        self._service_rng = rngs.stream("service")
        num_remote = chip.config.num_remote_nodes
        if source_skew > 0:
            self._source_probs = zipf_weights(num_remote, source_skew)
        else:
            self._source_probs = None

        config = chip.config
        if slot_policy == "static":
            slots = config.send_slots_per_node
            #: Free send-slot indices per remote node.
            self._free_slots: List[List[int]] = [
                list(range(slots)) for _ in range(config.num_remote_nodes)
            ]
            #: Requests waiting for a slot at their source node.
            self._pending: Dict[int, Deque[_Pending]] = {}
            self.pool = None
        else:
            if pool_size is None:
                pool_size = config.send_slots_per_node * 4
            total_slots = chip.domain.total_slots
            if pool_size > total_slots:
                raise ValueError(
                    f"pool_size {pool_size} exceeds the receive buffer's "
                    f"{total_slots} slots"
                )
            self.pool = DynamicSlotAllocator(pool_size, config.max_msg_bytes)
            self._pool_pending: Deque[_Pending] = deque()

        #: Number of arrivals that found no free slot.
        self.stalled = 0
        self.generated = 0

        chip.on_slot_replenished = self._on_slot_replenished
        chip.env.process(self._run(), name="traffic")

    # -- arrival loop --------------------------------------------------------

    def _run(self):
        env = self.chip.env
        mean_gap_ns = 1e9 / self.arrival_rate_rps
        num_remote = self.chip.config.num_remote_nodes
        n = self.num_requests
        # Pre-draw every request in one vectorized call per stream
        # instead of 3+ scalar Generator calls per request — the
        # arch-simulator hot path. Arrivals, sources, and services are
        # separate named streams, so batching each stream consumes its
        # bitstream exactly like the former per-request scalar draws.
        # An arrival process (repro.popload) replaces only the gap
        # batch; StationaryPoisson makes the identical vectorized call.
        if self.arrival_process is not None:
            gaps = self.arrival_process.sample_gaps(self._arrival_rng, n)
        else:
            gaps = self._arrival_rng.exponential(mean_gap_ns, size=n)
        if self._source_probs is not None:
            sources = self._source_rng.choice(
                num_remote, size=n, p=self._source_probs
            )
        else:
            sources = self._source_rng.integers(0, num_remote, size=n)
        services, labels = self.workload.sample_batch(self._service_rng, n)
        timeout = env.timeout
        static = self.slot_policy == "static"
        for msg_id in range(n):
            yield timeout(float(gaps[msg_id]))
            src = int(sources[msg_id])
            service_ns = float(services[msg_id])
            label = labels[msg_id]
            self.generated += 1
            if static:
                free = self._free_slots[src]
                if free:
                    self._send_static(msg_id, src, free.pop(), service_ns, label)
                else:
                    self.stalled += 1
                    self._pending.setdefault(src, deque()).append(
                        (msg_id, src, service_ns, label)
                    )
            else:
                index = self.pool.allocate()
                if index is not None:
                    self._send_dynamic(msg_id, src, index, service_ns, label)
                else:
                    self.stalled += 1
                    self._pool_pending.append((msg_id, src, service_ns, label))

    def _send_static(
        self, msg_id: int, src: int, slot: int, service_ns: float, label: str
    ) -> None:
        msg = self.chip.make_send(
            msg_id=msg_id,
            src_node=src,
            slot=slot,
            size_bytes=self.workload.request_size_bytes,
            service_ns=service_ns,
            label=label,
        )
        self.chip.submit_message(msg)

    def _send_dynamic(
        self, msg_id: int, src: int, index: int, service_ns: float, label: str
    ) -> None:
        msg = self.chip.make_send(
            msg_id=msg_id,
            src_node=src,
            slot=0,  # slot field unused under pooled provisioning
            size_bytes=self.workload.request_size_bytes,
            service_ns=service_ns,
            label=label,
        )
        msg.receive_slot = index
        self.chip.submit_message(msg)

    # -- flow control ----------------------------------------------------------

    def _on_slot_replenished(self, msg: SendMessage) -> None:
        """A replenish arrived back at the source: reuse or free the slot."""
        if self.slot_policy == "static":
            pending = self._pending.get(msg.src_node)
            if pending:
                msg_id, src, service_ns, label = pending.popleft()
                self._send_static(msg_id, src, msg.slot, service_ns, label)
            else:
                self._free_slots[msg.src_node].append(msg.slot)
        else:
            if self._pool_pending:
                msg_id, src, service_ns, label = self._pool_pending.popleft()
                self._send_dynamic(
                    msg_id, src, msg.receive_slot, service_ns, label
                )
            else:
                self.pool.release(msg.receive_slot)

    @property
    def stall_fraction(self) -> float:
        """Fraction of arrivals that hit sender-side flow control."""
        if self.generated == 0:
            return 0.0
        return self.stalled / self.generated

    def offered_rate_rps(self, t_ns: Optional[float] = None) -> float:
        """Intended offered rate at ``t_ns`` (defaults to sim-now).

        The telemetry offered-rate track samples this: profile-backed
        arrival processes report λ(t); the legacy stationary path
        reports the constant ``arrival_rate_rps``.
        """
        if self.arrival_process is None:
            return self.arrival_rate_rps
        if t_ns is None:
            t_ns = self.chip.env.now
        return self.arrival_process.rate_at(t_ns)
