"""Silo/TPC-C-like transaction workload (§3.1's second motivating tier).

§3.1: "Even software with functionality richer than simple data
retrieval can exhibit µs-scale service times: the average TPC-C query
service time on the Silo in-memory database is only 33µs."

This workload models TPC-C's five transaction types with the standard
mix (45% NewOrder, 43% Payment, 4% each OrderStatus / Delivery /
StockLevel) and per-type processing-time scales chosen so the overall
mean lands at the cited 33µs. Each type is Gamma-distributed (database
transactions have moderate per-type variability); labels expose the
type so experiments can set per-transaction SLOs.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..dists import Gamma
from .base import RpcWorkload

__all__ = ["SiloTpccWorkload", "TPCC_MIX"]

#: The standard TPC-C transaction mix (fractions sum to 1).
TPCC_MIX: Dict[str, float] = {
    "new_order": 0.45,
    "payment": 0.43,
    "order_status": 0.04,
    "delivery": 0.04,
    "stock_level": 0.04,
}

#: Relative per-type costs: NewOrder and Delivery touch many rows;
#: Payment is light; StockLevel scans district stock.
_RELATIVE_COST = {
    "new_order": 1.4,
    "payment": 0.45,
    "order_status": 0.5,
    "delivery": 2.6,
    "stock_level": 2.0,
}

#: §3.1's cited mean query service time on Silo.
SILO_MEAN_NS = 33_000.0


class SiloTpccWorkload(RpcWorkload):
    """TPC-C transactions on a Silo-like in-memory database."""

    name = "silo-tpcc"
    #: NewOrder is the throughput-defining, SLO-relevant transaction.
    slo_label = "new_order"
    request_size_bytes = 256
    reply_size_bytes = 512

    def __init__(self, mean_ns: float = SILO_MEAN_NS, cv2: float = 0.5) -> None:
        if mean_ns <= 0:
            raise ValueError(f"mean_ns must be positive, got {mean_ns!r}")
        if cv2 <= 0:
            raise ValueError(f"cv2 must be positive, got {cv2!r}")
        self.mean_ns = mean_ns
        # Normalize relative costs so the mix-weighted mean is mean_ns.
        weighted = sum(
            TPCC_MIX[txn] * _RELATIVE_COST[txn] for txn in TPCC_MIX
        )
        scale = mean_ns / weighted
        self._types = list(TPCC_MIX)
        self._weights = np.array([TPCC_MIX[txn] for txn in self._types])
        self._dists: Dict[str, Gamma] = {
            txn: Gamma.from_mean_cv2(_RELATIVE_COST[txn] * scale, cv2)
            for txn in self._types
        }

    def sample(self, rng: np.random.Generator) -> Tuple[float, str]:
        index = int(rng.choice(len(self._types), p=self._weights))
        txn = self._types[index]
        return self._dists[txn].sample(rng), txn

    @property
    def mean_processing_ns(self) -> float:
        return self.mean_ns

    @property
    def slo_mean_processing_ns(self) -> float:
        return self._dists["new_order"].mean

    def type_mean_ns(self, txn: str) -> float:
        """Mean processing time of one transaction type."""
        try:
            return self._dists[txn].mean
        except KeyError:
            raise ValueError(
                f"unknown transaction {txn!r}; expected one of {sorted(TPCC_MIX)}"
            ) from None
