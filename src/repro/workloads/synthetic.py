"""Synthetic microbenchmark workloads (§5, Fig. 6a / Fig. 7c / Fig. 8)."""

from __future__ import annotations

from ..dists import SYNTHETIC_KINDS, synthetic
from .base import DistributionWorkload

__all__ = ["SyntheticWorkload"]


class SyntheticWorkload(DistributionWorkload):
    """300ns base + 300ns-mean extra, per the paper's four shapes.

    ``kind`` ∈ {"fixed", "uniform", "exponential", "gev"}.
    """

    def __init__(self, kind: str) -> None:
        if kind not in SYNTHETIC_KINDS:
            raise ValueError(
                f"unknown kind {kind!r}; expected one of {SYNTHETIC_KINDS}"
            )
        super().__init__(synthetic(kind), name=f"synthetic-{kind}")
        self.kind = kind
