"""RPC workloads and traffic generation (paper §5)."""

from .base import DistributionWorkload, RpcWorkload
from .bimodal import BimodalWorkload
from .herd import HerdWorkload
from .masstree import MasstreeWorkload
from .microbench import MicrobenchCosts, MicrobenchProgram
from .replay import TraceWorkload, load_service_trace
from .silo import SiloTpccWorkload, TPCC_MIX
from .synthetic import SyntheticWorkload
from .traffic import ClosedLoopClients, TrafficGenerator

__all__ = [
    "RpcWorkload",
    "DistributionWorkload",
    "BimodalWorkload",
    "SyntheticWorkload",
    "HerdWorkload",
    "MasstreeWorkload",
    "MicrobenchCosts",
    "MicrobenchProgram",
    "TrafficGenerator",
    "ClosedLoopClients",
    "TraceWorkload",
    "load_service_trace",
    "SiloTpccWorkload",
    "TPCC_MIX",
]
