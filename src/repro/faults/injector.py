"""FaultInjector: drives a FaultPlan against a running cluster.

The injector is the single authority on fault state during a run:

* **liveness** — which nodes are up, when each went down
  (:meth:`node_up`, ``crashed_at``);
* **speed** — the current slowdown multiplier per node
  (:meth:`speed_multiplier`), composed with the cluster's static
  ``speed_factors`` at request-launch time;
* **fabric health** — every request/reply traversal funnels through
  :meth:`transmit`, which applies the plan's steady-state drop /
  duplication / delay-spike probabilities plus any active
  :class:`~repro.faults.plan.FabricDegradation` window;
* **signal visibility** — :meth:`signals_dark` gates load broadcasts,
  reply piggybacks, and liveness heartbeats during a
  :class:`~repro.faults.plan.SignalBlackout`.

All fault events are ordinary DES callbacks scheduled up front from
:meth:`FaultPlan.materialize`, and all probabilistic draws come from
dedicated named streams of the cluster's :class:`~repro.sim.RngRegistry`
— so a faulted run is bit-identical for a given (plan, seed) at any
worker count, and a trivial plan draws nothing at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from .plan import (
    FabricDegradation,
    FaultPlan,
    FaultStats,
    NodeCrash,
    NodeSlowdown,
    SignalBlackout,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cluster import Cluster

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes one :class:`FaultPlan` against one cluster run."""

    def __init__(self, plan: FaultPlan, cluster: "Cluster") -> None:
        self.plan = plan
        self.cluster = cluster
        self.stats = FaultStats()
        num_nodes = cluster.num_nodes
        self._up: List[bool] = [True] * num_nodes
        self._speed: List[float] = [1.0] * num_nodes
        #: Ground-truth crash time of each currently-down node (the
        #: failure detector measures its latency against this).
        self.crashed_at: List[Optional[float]] = [None] * num_nodes
        #: Cumulative downtime per node, finalized by :meth:`availability`.
        self._down_ns: List[float] = [0.0] * num_nodes
        self._active_degradations: List[FabricDegradation] = []
        self._blackouts = 0
        #: Listeners called with the node id on ground-truth recovery
        #: (the cluster reclaims leaked send slots here).
        self.on_recovery: List[Callable[[int], None]] = []
        #: Span tracer (``repro.tracing.Tracer``) recording the fault
        #: timeline, installed by the cluster when tracing is enabled.
        #: None = disabled; handlers pay one ``is not None`` check.
        self.tracer = None
        self._fabric_rng = (
            cluster.rngs.stream("faults.fabric")
            if plan.has_fabric_noise or any(
                isinstance(event, FabricDegradation) for event in plan.events
            )
            else None
        )

    # -- scheduling ---------------------------------------------------------

    def start(self, horizon_ns: float) -> None:
        """Materialize the plan and schedule every fault as a DES event."""
        env = self.cluster.env
        events = self.plan.materialize(
            self.cluster.num_nodes, horizon_ns, self.cluster.seed
        )
        now = env.now
        for event in events:
            delay = max(event.at_ns - now, 0.0)
            if isinstance(event, NodeCrash):
                if event.node >= self.cluster.num_nodes:
                    raise ValueError(
                        f"crash targets node {event.node} of a "
                        f"{self.cluster.num_nodes}-node cluster"
                    )
                env.schedule_call(delay, self._crash, event.node)
                if event.outage_ns is not None:
                    env.schedule_call(
                        delay + event.outage_ns, self._recover, event.node
                    )
            elif isinstance(event, NodeSlowdown):
                if event.node >= self.cluster.num_nodes:
                    raise ValueError(
                        f"slowdown targets node {event.node} of a "
                        f"{self.cluster.num_nodes}-node cluster"
                    )
                env.schedule_call(delay, self._slow, event.node, event.factor)
                env.schedule_call(
                    delay + event.duration_ns, self._unslow, event.node
                )
            elif isinstance(event, FabricDegradation):
                env.schedule_call(delay, self._degrade_start, event)
                env.schedule_call(delay + event.duration_ns, self._degrade_end, event)
            elif isinstance(event, SignalBlackout):
                env.schedule_call(delay, self._blackout_start)
                env.schedule_call(delay + event.duration_ns, self._blackout_end)
            else:  # pragma: no cover - plan validation forbids this
                raise TypeError(f"unknown fault event {event!r}")

    # -- fault-event handlers ------------------------------------------------

    def _crash(self, node: int) -> None:
        if not self._up[node]:
            return  # overlapping explicit crash windows collapse
        self._up[node] = False
        self.crashed_at[node] = self.cluster.env.now
        self.stats.crashes += 1
        if self.tracer is not None:
            self.tracer.record_fault("crash", node, self.cluster.env.now)

    def _recover(self, node: int) -> None:
        if self._up[node]:
            return
        self._up[node] = True
        went_down = self.crashed_at[node]
        if went_down is not None:
            self._down_ns[node] += self.cluster.env.now - went_down
        self.crashed_at[node] = None
        self.stats.recoveries += 1
        if self.tracer is not None:
            self.tracer.record_fault("recover", node, self.cluster.env.now)
        for listener in self.on_recovery:
            listener(node)

    def _slow(self, node: int, factor: float) -> None:
        # Overlapping windows compound (two 0.5x windows -> 0.25x).
        self._speed[node] *= factor
        self.stats.slowdowns += 1
        if self.tracer is not None:
            self.tracer.record_fault("slowdown", node, self.cluster.env.now)

    def _unslow(self, node: int) -> None:
        self._speed[node] = 1.0
        if self.tracer is not None:
            self.tracer.record_fault("slowdown_end", node, self.cluster.env.now)

    def _degrade_start(self, window: FabricDegradation) -> None:
        self._active_degradations.append(window)
        if self.tracer is not None:
            self.tracer.record_fault("degradation", -1, self.cluster.env.now)

    def _degrade_end(self, window: FabricDegradation) -> None:
        self._active_degradations.remove(window)
        if self.tracer is not None:
            self.tracer.record_fault(
                "degradation_end", -1, self.cluster.env.now
            )

    def _blackout_start(self) -> None:
        self._blackouts += 1
        if self.tracer is not None:
            self.tracer.record_fault("blackout", -1, self.cluster.env.now)

    def _blackout_end(self) -> None:
        self._blackouts -= 1
        if self.tracer is not None:
            self.tracer.record_fault("blackout_end", -1, self.cluster.env.now)

    # -- state queries -------------------------------------------------------

    def node_up(self, node: int) -> bool:
        return self._up[node]

    def speed_multiplier(self, node: int) -> float:
        return self._speed[node]

    def signals_dark(self) -> bool:
        """True while a load-signal blackout is active."""
        return self._blackouts > 0

    def nodes_down(self) -> int:
        return self._up.count(False)

    def availability(self, elapsed_ns: float) -> List[float]:
        """Per-node fraction of the run spent up, at ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return [1.0] * len(self._up)
        fractions = []
        for node, down_ns in enumerate(self._down_ns):
            if not self._up[node] and self.crashed_at[node] is not None:
                down_ns += elapsed_ns - self.crashed_at[node]
            fractions.append(max(0.0, 1.0 - down_ns / elapsed_ns))
        return fractions

    # -- the fabric path -----------------------------------------------------

    def _effective_probs(self):
        plan = self.plan
        drop, dup, spike, spike_ns = (
            plan.drop_prob,
            plan.dup_prob,
            plan.spike_prob,
            plan.spike_ns,
        )
        for window in self._active_degradations:
            drop = min(drop + window.drop_prob, 1.0)
            dup = min(dup + window.dup_prob, 1.0)
            spike = min(spike + window.spike_prob, 1.0)
            spike_ns = max(spike_ns, window.spike_ns)
        return drop, dup, spike, spike_ns

    def transmit(self, delay: float, fn, *args) -> str:
        """Send one message across the fabric, applying fabric faults.

        Returns the fate: ``"ok"`` (delivered once), ``"dup"``
        (delivered twice — the receiver dedups or reconciles), or
        ``"drop"`` (never delivered). Draws from the fabric stream only
        when fabric faults are configured, so fault-free plans leave
        every other stream's sequence untouched.
        """
        if self._fabric_rng is None or (
            not self._active_degradations and not self.plan.has_fabric_noise
        ):
            self.cluster.env.schedule_call(delay, fn, *args)
            return "ok"
        drop, dup, spike, spike_ns = self._effective_probs()
        rng = self._fabric_rng
        roll = rng.random()
        if roll < drop:
            self.stats.msg_drops += 1
            return "drop"
        if spike > 0 and rng.random() < spike:
            self.stats.delay_spikes += 1
            delay += spike_ns
        env = self.cluster.env
        env.schedule_call(delay, fn, *args)
        if dup > 0 and rng.random() < dup:
            self.stats.msg_dups += 1
            env.schedule_call(delay, fn, *args)
            return "dup"
        return "ok"
