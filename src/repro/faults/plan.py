"""Fault models and the deterministic plan that schedules them.

A :class:`FaultPlan` describes *what goes wrong* in a cluster run,
independently of the cluster that runs it. It combines:

* an **explicit timeline** — a tuple of fault events (crashes,
  slowdowns, fabric-degradation windows, load-signal blackouts) pinned
  to absolute simulated times, and
* **rate-based generation** — per-node Poisson crash/slowdown rates
  materialized into a concrete timeline at bind time from a
  :class:`numpy.random.SeedSequence` spawned off ``(seed, "faults")``,
  so the same (plan, seed) pair always yields the same timeline, at any
  worker count, and
* **steady-state fabric noise** — per-traversal drop / duplication /
  delay-spike probabilities applied to every message crossing the
  fabric for the whole run.

Every field is a plain value (no callables, no RNG state), so a plan
pickles into pool workers and fingerprints into the result cache: two
sweeps differing only in fault configuration never share a cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "FabricDegradation",
    "FaultEvent",
    "FaultPlan",
    "NodeCrash",
    "NodeSlowdown",
    "RetryConfig",
    "SignalBlackout",
]


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` fails at ``at_ns`` and recovers ``outage_ns`` later.

    While down the node drops every arriving request and suppresses
    every outgoing reply and load-signal/heartbeat message. Requests
    already inside its pipeline keep draining (their replies are
    suppressed until recovery) — the fail-stop point is the NI, not the
    cores. ``outage_ns=None`` means the node never comes back.
    """

    node: int
    at_ns: float
    outage_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node!r}")
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns!r}")
        if self.outage_ns is not None and self.outage_ns <= 0:
            raise ValueError(f"outage_ns must be positive, got {self.outage_ns!r}")


@dataclass(frozen=True)
class NodeSlowdown:
    """Node ``node`` runs at ``factor`` of full speed for a window.

    Models thermal throttling / noisy neighbours: RPCs *launched at*
    the degraded node during the window take ``1 / factor`` times as
    long (the degradation applies at request-injection time — a request
    straddling the window boundary keeps the speed it started with).
    """

    node: int
    at_ns: float
    duration_ns: float
    factor: float = 0.5

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node!r}")
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns!r}")
        if self.duration_ns <= 0:
            raise ValueError(f"duration_ns must be positive, got {self.duration_ns!r}")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {self.factor!r}")


@dataclass(frozen=True)
class FabricDegradation:
    """A window during which the fabric misbehaves on every traversal.

    Adds to (not replaces) the plan's steady-state fabric noise while
    active. Each message crossing the fabric during the window is
    independently dropped with ``drop_prob``, duplicated with
    ``dup_prob``, or delayed by an extra ``spike_ns`` with
    ``spike_prob``.
    """

    at_ns: float
    duration_ns: float
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    spike_prob: float = 0.0
    spike_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns!r}")
        if self.duration_ns <= 0:
            raise ValueError(f"duration_ns must be positive, got {self.duration_ns!r}")
        for name in ("drop_prob", "dup_prob", "spike_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.spike_ns < 0:
            raise ValueError(f"spike_ns must be >= 0, got {self.spike_ns!r}")


@dataclass(frozen=True)
class SignalBlackout:
    """Load signals and heartbeats go dark for a window.

    Broadcast ticks, reply-piggybacked load reports, and liveness
    heartbeats are all suppressed while active — the stale-signal /
    false-suspicion regime RackSched warns about, on demand.
    """

    at_ns: float
    duration_ns: float

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns!r}")
        if self.duration_ns <= 0:
            raise ValueError(f"duration_ns must be positive, got {self.duration_ns!r}")


FaultEvent = Union[NodeCrash, NodeSlowdown, FabricDegradation, SignalBlackout]


def _fault_stream_key() -> int:
    """Stable entropy word separating fault draws from everything else."""
    import hashlib

    digest = hashlib.sha256(b"repro.faults.plan").digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class FaultPlan:
    """One run's fault schedule: explicit events + rates + fabric noise."""

    #: Explicit fault timeline (any mix of the event types above).
    events: Tuple[FaultEvent, ...] = ()
    #: Poisson crash arrivals per node, in crashes per *second* of
    #: simulated time (µs-scale runs want large numbers, e.g. 2e3 ~
    #: one crash per node every 500µs).
    crash_rate_hz: float = 0.0
    mean_outage_ns: float = 20_000.0
    #: Poisson slowdown-window arrivals per node, per second.
    slowdown_rate_hz: float = 0.0
    mean_slowdown_ns: float = 20_000.0
    slowdown_factor: float = 0.5
    #: Steady-state per-traversal fabric noise, whole run.
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    spike_prob: float = 0.0
    spike_ns: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for name in ("crash_rate_hz", "slowdown_rate_hz"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("mean_outage_ns", "mean_slowdown_ns", "spike_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 < self.slowdown_factor <= 1.0:
            raise ValueError(
                f"slowdown_factor must be in (0, 1], got {self.slowdown_factor!r}"
            )
        for name in ("drop_prob", "dup_prob", "spike_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")

    @property
    def has_fabric_noise(self) -> bool:
        """True when steady-state traversal faults can occur."""
        return self.drop_prob > 0 or self.dup_prob > 0 or self.spike_prob > 0

    @property
    def is_trivial(self) -> bool:
        """True when the plan can never produce a fault."""
        return (
            not self.events
            and self.crash_rate_hz == 0
            and self.slowdown_rate_hz == 0
            and not self.has_fabric_noise
        )

    def materialize(
        self, num_nodes: int, horizon_ns: float, seed: int
    ) -> List[FaultEvent]:
        """The concrete, time-sorted event list for one cluster run.

        Explicit events pass through (those at or beyond ``horizon_ns``
        are kept — a late recovery must still fire); rate-based crashes
        and slowdowns are drawn per node over ``[0, horizon_ns)`` from a
        :class:`numpy.random.SeedSequence` keyed on ``(seed, plan
        stream)``, so the timeline is a pure function of (plan,
        num_nodes, horizon, seed) — never of worker count or scheduling
        order.
        """
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes!r}")
        if horizon_ns < 0:
            raise ValueError(f"horizon_ns must be >= 0, got {horizon_ns!r}")
        events: List[FaultEvent] = list(self.events)
        if (self.crash_rate_hz > 0 or self.slowdown_rate_hz > 0) and horizon_ns > 0:
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=(int(seed), _fault_stream_key()))
            )
            for node in range(num_nodes):
                events.extend(self._draw_node_events(node, horizon_ns, rng))
        events.sort(key=lambda event: (event.at_ns, type(event).__name__))
        return events

    def _draw_node_events(
        self, node: int, horizon_ns: float, rng: np.random.Generator
    ) -> List[FaultEvent]:
        drawn: List[FaultEvent] = []
        if self.crash_rate_hz > 0:
            mean_gap_ns = 1e9 / self.crash_rate_hz
            at = rng.exponential(mean_gap_ns)
            while at < horizon_ns:
                outage = max(rng.exponential(self.mean_outage_ns), 1.0)
                drawn.append(NodeCrash(node=node, at_ns=at, outage_ns=outage))
                # Next crash cannot land inside the outage.
                at += outage + rng.exponential(mean_gap_ns)
        if self.slowdown_rate_hz > 0:
            mean_gap_ns = 1e9 / self.slowdown_rate_hz
            at = rng.exponential(mean_gap_ns)
            while at < horizon_ns:
                duration = max(rng.exponential(self.mean_slowdown_ns), 1.0)
                drawn.append(
                    NodeSlowdown(
                        node=node,
                        at_ns=at,
                        duration_ns=duration,
                        factor=self.slowdown_factor,
                    )
                )
                at += duration + rng.exponential(mean_gap_ns)
        return drawn


@dataclass(frozen=True)
class RetryConfig:
    """Client-side robustness knobs: timeout, retry budget, hedging.

    * Every RPC attempt gets a ``timeout_ns`` deadline from launch; a
      timed-out attempt is abandoned (its completion, if it ever
      arrives, is reconciled as a late/duplicate completion).
    * Up to ``max_retries`` re-launches follow, spaced by exponential
      backoff ``backoff_ns * backoff_factor**k``; ``max_retries=None``
      retries forever — the retry-storm configuration, deliberately
      representable. With the budget exhausted the RPC counts as lost.
    * With ``hedge_ns`` set, a duplicate attempt launches after that
      delay (pick it near the no-fault p95) unless the original already
      completed; first completion wins, the loser is reconciled away.
    """

    timeout_ns: float = 15_000.0
    max_retries: Optional[int] = 3
    backoff_ns: float = 2_000.0
    backoff_factor: float = 2.0
    max_backoff_ns: float = 200_000.0
    hedge_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout_ns <= 0:
            raise ValueError(f"timeout_ns must be positive, got {self.timeout_ns!r}")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.backoff_ns < 0:
            raise ValueError(f"backoff_ns must be >= 0, got {self.backoff_ns!r}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.max_backoff_ns < self.backoff_ns:
            raise ValueError("max_backoff_ns must be >= backoff_ns")
        if self.hedge_ns is not None and self.hedge_ns <= 0:
            raise ValueError(f"hedge_ns must be positive, got {self.hedge_ns!r}")

    @property
    def retry_budget(self) -> float:
        """Effective retry cap (``inf`` for the unbounded storm config)."""
        return float("inf") if self.max_retries is None else float(self.max_retries)

    def backoff_for(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based), capped."""
        return min(
            self.backoff_ns * self.backoff_factor**retry_index,
            self.max_backoff_ns,
        )


@dataclass
class FaultStats:
    """Fault-layer accounting of one cluster run (client + injector)."""

    #: Logical RPCs generated / completed (deduplicated) / lost.
    offered: int = 0
    completed: int = 0
    lost: int = 0
    #: Client robustness activity.
    timeouts: int = 0
    retries: int = 0
    hedges: int = 0
    duplicate_completions: int = 0
    late_completions: int = 0
    reclaimed_slots: int = 0
    #: Fabric-level message faults.
    msg_drops: int = 0
    msg_dups: int = 0
    delay_spikes: int = 0
    #: Messages dropped because the destination node was down.
    crash_drops: int = 0
    #: Replies suppressed because the server was down at completion.
    reply_suppressed: int = 0
    #: Injector timeline activity.
    crashes: int = 0
    recoveries: int = 0
    slowdowns: int = 0
    #: Failure-detector activity (router runs only).
    suspicions: int = 0
    readmissions: int = 0
    false_suspicions: int = 0
    #: Suspicion delay after a real crash, per detection, in ns.
    detection_latency_ns: List[float] = field(default_factory=list)

    @property
    def loss_fraction(self) -> float:
        """Offered RPCs that exhausted their retry budget."""
        return self.lost / self.offered if self.offered else 0.0

    @property
    def mean_detection_ns(self) -> float:
        if not self.detection_latency_ns:
            return float("nan")
        return sum(self.detection_latency_ns) / len(self.detection_latency_ns)
