"""Deterministic fault injection for cluster runs.

``repro.faults`` turns the fault tolerance question — what do µs-scale
RPC tails look like when nodes crash, links degrade, and load signals
go dark? — into a first-class, seed-reproducible experiment axis:

* :class:`FaultPlan` declares *what goes wrong*: an explicit timeline
  of :class:`NodeCrash` / :class:`NodeSlowdown` /
  :class:`FabricDegradation` / :class:`SignalBlackout` events, plus
  rate-based crash/slowdown generation and steady-state fabric noise,
  all materialized deterministically from the run seed.
* :class:`FaultInjector` executes a plan against a
  :class:`repro.cluster.Cluster` as ordinary DES events.
* :class:`RetryConfig` declares the client-side response: per-attempt
  timeouts, bounded (or deliberately unbounded) retries with
  exponential backoff, and optional hedged requests.
* :class:`FaultStats` accounts for everything that went wrong and every
  recovery action, per run, mergeable into sweep results.

The ``ext-faults`` experiment sweeps fault rate x routing policy x
retry/hedge configuration through this package.
"""

from .injector import FaultInjector
from .plan import (
    FabricDegradation,
    FaultEvent,
    FaultPlan,
    FaultStats,
    NodeCrash,
    NodeSlowdown,
    RetryConfig,
    SignalBlackout,
)

__all__ = [
    "FabricDegradation",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "NodeCrash",
    "NodeSlowdown",
    "RetryConfig",
    "SignalBlackout",
]
