"""Load-balancing schemes: RPCValet, grouped, partitioned, software."""

from .base import BalancingScheme, Dispatcher
from .hardware import DEFAULT_OUTSTANDING_LIMIT, Grouped, Partitioned, SingleQueue
from .policies import (
    LeastOutstanding,
    RandomAvailable,
    RoundRobinAvailable,
    SelectionPolicy,
    make_policy,
)
from .software import (
    DEFAULT_CRITICAL_NS,
    DEFAULT_HANDOFF_NS,
    SoftwareSingleQueue,
)

__all__ = [
    "BalancingScheme",
    "Dispatcher",
    "SingleQueue",
    "Grouped",
    "Partitioned",
    "SoftwareSingleQueue",
    "DEFAULT_OUTSTANDING_LIMIT",
    "DEFAULT_HANDOFF_NS",
    "DEFAULT_CRITICAL_NS",
    "SelectionPolicy",
    "LeastOutstanding",
    "RoundRobinAvailable",
    "RandomAvailable",
    "make_policy",
]
