"""Dispatcher core: the NI Dispatch pipeline stage (§4.3/§4.4).

A :class:`Dispatcher` owns a shared completion queue (the "shared CQ")
over a group of cores, tracks each core's outstanding-request count,
and assigns the queue's head entry to an available core. The three
configurations the paper evaluates are all instances:

* 1×16 — one dispatcher over all cores, threshold 2 (RPCValet);
* 4×4  — four dispatchers, one per backend/row, threshold 2;
* 16×1 — one "dispatcher" per core with no threshold (push-on-arrival),
  i.e. RSS-style partitioned dataplanes.

Schemes (:mod:`repro.balancing.hardware`, ``.software``) build the
dispatchers and define the latency/serialization model of dispatch.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

import numpy as np

from ..sim import delayed_call
from .policies import SelectionPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..arch.chip import Chip
    from ..arch.packets import SendMessage

__all__ = ["Dispatcher", "BalancingScheme"]


class Dispatcher:
    """Balances one group of cores from a single FIFO (the shared CQ)."""

    def __init__(
        self,
        chip: "Chip",
        group_id: int,
        core_ids: List[int],
        outstanding_limit: Optional[int],
        policy: SelectionPolicy,
        home_backend_id: Optional[int],
        serialize_ns: float,
        rng: np.random.Generator,
    ) -> None:
        if not core_ids:
            raise ValueError("dispatcher needs at least one core")
        if outstanding_limit is not None and outstanding_limit < 1:
            raise ValueError(f"outstanding_limit must be >= 1, got {outstanding_limit!r}")
        self.chip = chip
        self.group_id = group_id
        self.core_ids = list(core_ids)
        self.outstanding_limit = outstanding_limit
        self.policy = policy
        #: Backend hosting this dispatcher; None for the software queue
        #: (which lives in memory, not at a backend).
        self.home_backend_id = home_backend_id
        #: Serialized occupancy per dispatch decision. The hardware
        #: Dispatch stage uses the (tiny) pipeline cost; the software
        #: scheme uses the MCS hand-off + critical-section cost.
        self.serialize_ns = serialize_ns
        self._rng = rng
        self.shared_cq: Deque["SendMessage"] = deque()
        self.outstanding: Dict[int, int] = {core: 0 for core in self.core_ids}
        #: Time of each core's most recent dispatch (tie-break input).
        self.last_dispatch: Dict[int, float] = {core: 0.0 for core in self.core_ids}
        self._busy_until = 0.0
        #: Observability.
        self.dispatched = 0
        self.max_shared_cq_depth = 0
        #: Telemetry hooks, installed by
        #: :func:`repro.telemetry.instrument_chip` (None = disabled).
        self.cq_depth_hist = None
        self.decision_hist = None
        self.dispatch_counter = None

    # -- latency model hooks (overridden by schemes) ----------------------------

    def completion_forward_delay_ns(self, backend_id: int) -> float:
        """Mesh latency: receiving backend → this dispatcher (§4.3)."""
        if self.home_backend_id is None:
            return 0.0
        return self.chip.mesh.backend_to_backend_ns(
            backend_id, self.home_backend_id
        )

    def replenish_delay_ns(self, core_id: int) -> float:
        """Mesh latency: core's frontend → this dispatcher."""
        if self.home_backend_id is None:
            return 0.0
        return self.chip.mesh.core_to_backend_ns(core_id, self.home_backend_id)

    def delivery_delay_ns(self, core_id: int) -> float:
        """Latency: dispatch decision → CQE visible in the core's CQ."""
        config = self.chip.config
        if self.home_backend_id is None:
            # Software: the core reads the queue entry out of the LLC.
            return config.llc_latency_ns
        return (
            self.chip.mesh.backend_to_core_ns(self.home_backend_id, core_id)
            + config.cqe_write_ns
        )

    # -- event entry points --------------------------------------------------------

    def on_message_ready(self, msg: "SendMessage") -> None:
        """A fully reassembled message's completion packet arrived.

        With a threshold (RPCValet mode), an arriving message may be
        dispatched immediately only to an *idle* core; if every core is
        already working, it waits in the shared CQ for a replenish —
        §4.3: the dispatcher "dispatches messages to cores in FIFO
        order as soon as it receives a replenish operation". Unbounded
        dispatchers (16×1 partitioning) push unconditionally.
        """
        self.shared_cq.append(msg)
        depth = len(self.shared_cq)
        if depth > self.max_shared_cq_depth:
            self.max_shared_cq_depth = depth
        hist = self.cq_depth_hist
        if hist is not None:
            hist.record(depth)
        if self.outstanding_limit is None:
            self._drain(idle_only=False)
        else:
            self._drain(idle_only=True)

    def on_replenish(self, core_id: int, msg: "SendMessage") -> None:
        """A core finished a request previously dispatched by us.

        The replenishing core just dropped below the threshold: refill
        it from the shared CQ head (this is what keeps its prefetch
        slot full and the core bubble-free), then hand anything left
        to idle cores.
        """
        count = self.outstanding[core_id]
        if count <= 0:
            raise RuntimeError(
                f"replenish from core {core_id} with no outstanding requests"
            )
        self.outstanding[core_id] = count - 1
        if self.shared_cq and (
            self.outstanding_limit is None
            or self.outstanding[core_id] < self.outstanding_limit
        ):
            self._dispatch_to(self.shared_cq.popleft(), core_id)
        self._drain(idle_only=self.outstanding_limit is not None)

    # -- the dispatch loop ------------------------------------------------------------

    def _drain(self, idle_only: bool) -> None:
        """Dispatch shared-CQ entries in FIFO order to eligible cores.

        ``idle_only`` restricts eligibility to cores with zero
        outstanding requests — committing a request behind an
        in-flight RPC of unknown remaining time is exactly the
        multi-queue mistake RPCValet exists to avoid, so prefetch
        slots fill only at replenish time (see :meth:`on_replenish`).
        """
        limit = 1 if idle_only else self.outstanding_limit
        while self.shared_cq:
            core_id = self.policy.select(
                self.core_ids,
                self.outstanding,
                limit,
                self._rng,
                self.last_dispatch,
            )
            if core_id is None:
                return
            self._dispatch_to(self.shared_cq.popleft(), core_id)

    def _dispatch_to(self, msg: "SendMessage", core_id: int) -> None:
        hist = self.decision_hist
        if hist is not None:
            # The chosen core's load *before* this dispatch: 0 = the
            # idle-core fast path, >0 = a prefetch-slot refill.
            hist.record(self.outstanding[core_id])
            self.dispatch_counter.inc()
        self.outstanding[core_id] += 1
        self.last_dispatch[core_id] = self.chip.env.now
        self.dispatched += 1
        self._deliver(msg, core_id)

    def _deliver(self, msg: "SendMessage", core_id: int) -> None:
        """Schedule CQE delivery, honoring dispatch serialization."""
        env = self.chip.env
        now = env.now
        start = self._busy_until if self._busy_until > now else now
        decision_done = start + self.serialize_ns
        self._busy_until = decision_done
        msg.t_dispatch = decision_done
        delay = (decision_done - now) + self.delivery_delay_ns(core_id)
        frontend = self.chip.frontends[core_id]
        if delay > 0:
            delayed_call(env, delay, frontend.deliver, msg)
        else:
            frontend.deliver(msg)


class BalancingScheme(abc.ABC):
    """Factory installing dispatchers onto a chip."""

    label: str = "scheme"

    @abc.abstractmethod
    def install(self, chip: "Chip", rng: np.random.Generator) -> None:
        """Create dispatchers and register them with the chip."""
