"""Core-selection policies for the NI Dispatch pipeline stage (§4.3).

The paper implements a "simple greedy dispatch": a core is available
when its outstanding count is below the threshold (two), and the
dispatcher assigns the shared CQ's head entry to an available core.
The exact choice among several available cores is unspecified; these
policies make it explicit and are compared in the ablation benchmarks.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "SelectionPolicy",
    "LeastOutstanding",
    "RoundRobinAvailable",
    "RandomAvailable",
    "make_policy",
]


class SelectionPolicy(abc.ABC):
    """Chooses which available core receives the next RPC."""

    name = "policy"

    @abc.abstractmethod
    def select(
        self,
        core_ids: List[int],
        outstanding: Dict[int, int],
        limit: Optional[int],
        rng: np.random.Generator,
        last_dispatch: Optional[Dict[int, float]] = None,
    ) -> Optional[int]:
        """Return an available core id, or ``None`` if none is available.

        ``limit`` is the outstanding-per-core threshold; ``None`` means
        unbounded (the 16×1 partitioned mode pushes unconditionally).
        ``last_dispatch`` maps each core to the time of its most recent
        dispatch — state the NI dispatcher trivially has, used to break
        ties toward the core expected to free up first.
        """

    @staticmethod
    def _available(
        core_ids: List[int], outstanding: Dict[int, int], limit: Optional[int]
    ) -> List[int]:
        if limit is None:
            return list(core_ids)
        return [core for core in core_ids if outstanding[core] < limit]


class LeastOutstanding(SelectionPolicy):
    """The paper's greedy policy: prefer the least-loaded available core.

    Ties among equally loaded cores break toward the core whose last
    dispatch is oldest — for busy cores that is the one expected to
    free up first, which keeps the eager threshold-2 prefetch close to
    true single-queue (FIFO-completion) order. The NI dispatcher has
    this information for free: it issued the dispatches.
    """

    name = "least_outstanding"

    def select(self, core_ids, outstanding, limit, rng, last_dispatch=None):
        available = self._available(core_ids, outstanding, limit)
        if not available:
            return None
        best = None
        best_key = None
        for core in available:
            count = outstanding[core]
            age = last_dispatch[core] if last_dispatch is not None else 0.0
            key = (count, age, core)
            if best_key is None or key < best_key:
                best, best_key = core, key
        return best


class RoundRobinAvailable(SelectionPolicy):
    """Cycle through cores, skipping unavailable ones."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, core_ids, outstanding, limit, rng, last_dispatch=None):
        count = len(core_ids)
        for offset in range(count):
            core = core_ids[(self._next + offset) % count]
            if limit is None or outstanding[core] < limit:
                self._next = (self._next + offset + 1) % count
                return core
        return None


class RandomAvailable(SelectionPolicy):
    """Uniformly random among available cores."""

    name = "random"

    def select(self, core_ids, outstanding, limit, rng, last_dispatch=None):
        available = self._available(core_ids, outstanding, limit)
        if not available:
            return None
        return int(available[rng.integers(0, len(available))])


_POLICIES = {
    "least_outstanding": LeastOutstanding,
    "round_robin": RoundRobinAvailable,
    "random": RandomAvailable,
}


def make_policy(name: str) -> SelectionPolicy:
    """Instantiate a policy by name (fresh state per dispatcher)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
