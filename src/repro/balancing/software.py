"""Software single-queue balancing: the MCS-lock pull model (§5, §6.2).

The paper's software baseline implements the same 1×16 queuing system
in software: NIs enqueue incoming sends into a single completion queue
"from which all 16 threads pull requests in FIFO order", protected by
an MCS queue-based lock [Mellor-Crummey & Scott].

Model
-----
Under load, an MCS lock serializes dequeues: each hand-off costs a
cache-to-cache transfer of the lock cacheline plus the critical section
(the dequeue itself). We model this as a dispatcher whose per-decision
serialized occupancy is ``handoff_ns + critical_ns`` (default 200ns —
a dequeue ceiling of 5 M/s against RPCValet's ~29 M/s hardware
dispatch) and whose cores run with ``outstanding_limit=1`` (a thread
pulls its next request only after finishing the previous one — pull
semantics have no lookahead slot). The core additionally spends
``critical_ns`` of CPU time per request executing the dequeue.

DESIGN.md §2 documents why this serialization model reproduces the
paper's 2.3–2.7× hardware-over-software gap.
"""

from __future__ import annotations

import numpy as np

from .base import BalancingScheme, Dispatcher
from .policies import make_policy

__all__ = ["SoftwareSingleQueue", "DEFAULT_HANDOFF_NS", "DEFAULT_CRITICAL_NS"]

#: Contended lock-cacheline hand-off between cores (~2 LLC transfers).
DEFAULT_HANDOFF_NS = 150.0

#: Critical section: dequeue from the shared CQ under the lock.
DEFAULT_CRITICAL_NS = 50.0


class SoftwareSingleQueue(BalancingScheme):
    """1×16 implemented with a software MCS-locked shared queue."""

    label = "sw-1xN"

    def __init__(
        self,
        handoff_ns: float = DEFAULT_HANDOFF_NS,
        critical_ns: float = DEFAULT_CRITICAL_NS,
    ) -> None:
        if handoff_ns < 0 or critical_ns < 0:
            raise ValueError("lock costs must be non-negative")
        self.handoff_ns = handoff_ns
        self.critical_ns = critical_ns

    @property
    def serialized_cost_ns(self) -> float:
        """Serialized cost per dequeue — the software throughput ceiling."""
        return self.handoff_ns + self.critical_ns

    def install(self, chip, rng: np.random.Generator) -> None:
        dispatcher = Dispatcher(
            chip=chip,
            group_id=0,
            core_ids=list(range(chip.config.num_cores)),
            # Pull semantics: a thread holds exactly one request.
            outstanding_limit=1,
            # FIFO hand-off to whichever thread reached the lock first;
            # round-robin among idle threads approximates the MCS queue
            # order without modeling each waiter.
            policy=make_policy("round_robin"),
            home_backend_id=None,  # the queue lives in memory, not an NI
            serialize_ns=self.serialized_cost_ns,
            rng=rng,
        )
        chip.install_dispatchers(
            [dispatcher], core_overhead_ns=self.critical_ns
        )
